//! Tuning parameters and parameter groups.
//!
//! The general form of an ATF tuning parameter (paper, Section II) is
//! `tp(name, range, constraint)`. Parameters are declared in order; a
//! parameter's constraint may reference any parameter declared *before* it.
//!
//! Section V introduces the *grouping function* `G(...)`: the user groups
//! interdependent parameters explicitly; groups are independent of each
//! other, so each group's sub-space can be generated in parallel and the
//! full space is the cross product of the group spaces.

use crate::constraint::Constraint;
use crate::range::Range;
use std::fmt;
use std::sync::Arc;

/// A single tuning parameter: name, range, optional constraint.
#[derive(Clone)]
pub struct Param {
    name: Arc<str>,
    range: Range,
    constraint: Option<Constraint>,
}

impl Param {
    /// Creates an unconstrained tuning parameter.
    pub fn new(name: impl Into<Arc<str>>, range: Range) -> Self {
        Param {
            name: name.into(),
            range,
            constraint: None,
        }
    }

    /// Attaches a constraint, consuming and returning the parameter
    /// (builder style).
    pub fn with_constraint(mut self, constraint: Constraint) -> Self {
        self.constraint = Some(constraint);
        self
    }

    /// The parameter's unique identifier.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter's name as a shareable `Arc<str>`.
    pub fn name_arc(&self) -> Arc<str> {
        self.name.clone()
    }

    /// The parameter's (unconstrained) range.
    pub fn range(&self) -> &Range {
        &self.range
    }

    /// The parameter's constraint, if any.
    pub fn constraint(&self) -> Option<&Constraint> {
        self.constraint.as_ref()
    }
}

impl fmt::Debug for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tp({:?}, {:?}", self.name, self.range)?;
        if let Some(c) = &self.constraint {
            write!(f, ", {c:?}")?;
        }
        write!(f, ")")
    }
}

/// `tp(name, range)` — the paper's parameter-declaration function, without a
/// constraint.
pub fn tp(name: impl Into<Arc<str>>, range: Range) -> Param {
    Param::new(name, range)
}

/// `tp(name, range, constraint)` — the paper's parameter-declaration
/// function, with a constraint.
pub fn tp_c(name: impl Into<Arc<str>>, range: Range, constraint: Constraint) -> Param {
    Param::new(name, range).with_constraint(constraint)
}

/// A group of interdependent tuning parameters — the paper's `G(...)`.
///
/// Constraints inside a group may only reference parameters of the *same*
/// group (declared earlier); the generator enforces declaration-order
/// visibility by construction, and cross-group references simply evaluate
/// against a configuration that lacks the other group's parameters (the
/// constraint then rejects every value, which surfaces the error in tests
/// immediately).
#[derive(Clone, Debug)]
pub struct ParamGroup {
    params: Vec<Param>,
}

impl ParamGroup {
    /// Creates a group from interdependent parameters.
    ///
    /// # Panics
    /// Panics if `params` is empty or contains duplicate names.
    pub fn new(params: Vec<Param>) -> Self {
        assert!(!params.is_empty(), "parameter group must not be empty");
        for (i, p) in params.iter().enumerate() {
            for q in &params[..i] {
                assert!(
                    p.name() != q.name(),
                    "duplicate parameter name `{}` in group",
                    p.name()
                );
            }
        }
        ParamGroup { params }
    }

    /// The parameters of the group in declaration order.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Number of parameters in the group.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// `true` if the group holds no parameters (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// The product of the *unconstrained* range sizes — the size of the
    /// space a cross-product-then-filter generator (CLTune) would have to
    /// enumerate for this group.
    pub fn unconstrained_size(&self) -> u128 {
        self.params
            .iter()
            .map(|p| p.range().len() as u128)
            .product()
    }
}

/// The paper's grouping function `G(p1, p2, ...)`.
#[macro_export]
macro_rules! group {
    ($($p:expr),+ $(,)?) => {
        $crate::param::ParamGroup::new(vec![$($p),+])
    };
}

/// Convenience: wraps each parameter in its own single-parameter group —
/// what ATF does when the user supplies ungrouped parameters to the tuner
/// (no interdependencies assumed between them).
pub fn singleton_groups(params: Vec<Param>) -> Vec<ParamGroup> {
    params
        .into_iter()
        .map(|p| ParamGroup::new(vec![p]))
        .collect()
}

/// **Automatic dependency detection** — an extension beyond the paper,
/// which notes (Section V): "Currently, ATF cannot automatically determine
/// dependencies between parameters: the user has to group interdependent
/// parameters explicitly".
///
/// Constraints built from expression aliases know exactly which parameters
/// they read ([`crate::constraint::Constraint::references`]); opaque
/// predicates are conservatively treated as reading every previously
/// declared parameter. Union-find over these edges partitions the
/// parameters into independent groups, preserving declaration order within
/// each group (constraints may only reference earlier parameters, so order
/// is what makes the generation DFS sound).
///
/// # Panics
/// Panics if a constraint references a name that is not declared before the
/// constrained parameter — that constraint could never hold during
/// generation, which is almost certainly a bug in the parameter system.
pub fn auto_group(params: Vec<Param>) -> Vec<ParamGroup> {
    use crate::constraint::References;

    let n = params.len();
    let index_of = |name: &str, upto: usize| -> usize {
        params[..upto]
            .iter()
            .position(|p| p.name() == name)
            .unwrap_or_else(|| {
                panic!(
                    "constraint of `{}` references `{name}`, which is not declared before it",
                    params[upto].name()
                )
            })
    };

    // Union-find.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    let union = |parent: &mut Vec<usize>, a: usize, b: usize| {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            parent[ra] = rb;
        }
    };

    for (i, p) in params.iter().enumerate() {
        match p.constraint().map(|c| c.references().clone()) {
            None => {}
            Some(References::Exact(names)) => {
                for name in names {
                    let j = index_of(&name, i);
                    union(&mut parent, i, j);
                }
            }
            Some(References::Unknown) => {
                // Conservative: may read anything declared before.
                for j in 0..i {
                    union(&mut parent, i, j);
                }
            }
        }
    }

    // Emit groups in order of their first member, members in declaration
    // order.
    let mut roots: Vec<usize> = Vec::new();
    let mut members: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        let r = find(&mut parent, i);
        match roots.iter().position(|&x| x == r) {
            Some(g) => members[g].push(i),
            None => {
                roots.push(r);
                members.push(vec![i]);
            }
        }
    }
    let mut slots: Vec<Option<Param>> = params.into_iter().map(Some).collect();
    members
        .into_iter()
        .map(|idxs| {
            ParamGroup::new(
                idxs.into_iter()
                    .map(|i| slots[i].take().expect("each param used once"))
                    .collect(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::divides;
    use crate::expr::param as p;

    #[test]
    fn builder_and_accessors() {
        let t = tp_c("LS", Range::interval(1, 1024), divides(p("WPT")));
        assert_eq!(t.name(), "LS");
        assert_eq!(t.range().len(), 1024);
        assert!(t.constraint().is_some());
    }

    #[test]
    fn group_macro() {
        let g = group![
            tp("tp1", Range::set([1u64, 2])),
            tp_c("tp2", Range::set([1u64, 2]), divides(p("tp1"))),
        ];
        assert_eq!(g.len(), 2);
        assert_eq!(g.unconstrained_size(), 4);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_panic() {
        ParamGroup::new(vec![
            tp("A", Range::interval(1, 2)),
            tp("A", Range::interval(1, 2)),
        ]);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_group_panics() {
        ParamGroup::new(vec![]);
    }

    #[test]
    fn auto_group_splits_independent_chains() {
        // The paper's Fig. 1: tp2 depends on tp1, tp4 on tp3 → two groups.
        let groups = auto_group(vec![
            tp("tp1", Range::set([1u64, 2])),
            tp_c("tp2", Range::set([1u64, 2]), divides(p("tp1"))),
            tp("tp3", Range::set([1u64, 2])),
            tp_c("tp4", Range::set([1u64, 2]), divides(p("tp3"))),
        ]);
        assert_eq!(groups.len(), 2);
        assert_eq!(
            groups[0]
                .params()
                .iter()
                .map(|x| x.name())
                .collect::<Vec<_>>(),
            vec!["tp1", "tp2"]
        );
        assert_eq!(
            groups[1]
                .params()
                .iter()
                .map(|x| x.name())
                .collect::<Vec<_>>(),
            vec!["tp3", "tp4"]
        );
    }

    #[test]
    fn auto_group_chains_transitively() {
        // C depends on B which depends on A: one group, order preserved.
        let groups = auto_group(vec![
            tp("A", Range::interval(1, 4)),
            tp("X", Range::interval(1, 2)),
            tp_c("B", Range::interval(1, 4), divides(p("A"))),
            tp_c("C", Range::interval(1, 4), divides(p("B") * p("A"))),
        ]);
        assert_eq!(groups.len(), 2);
        assert_eq!(
            groups[0]
                .params()
                .iter()
                .map(|x| x.name())
                .collect::<Vec<_>>(),
            vec!["A", "B", "C"]
        );
        assert_eq!(groups[1].params()[0].name(), "X");
    }

    #[test]
    fn auto_group_opaque_predicate_is_conservative() {
        use crate::constraint::Constraint;
        // An opaque predicate links to everything declared before it.
        let groups = auto_group(vec![
            tp("A", Range::interval(1, 4)),
            tp("B", Range::interval(1, 4)),
            tp("C", Range::interval(1, 4)).with_constraint(Constraint::new("opaque", |_, _| true)),
        ]);
        assert_eq!(groups.len(), 1);
    }

    #[test]
    fn auto_group_declared_references_refine_opaque() {
        use crate::constraint::Constraint;
        let groups = auto_group(vec![
            tp("A", Range::interval(1, 4)),
            tp("B", Range::interval(1, 4)),
            tp("C", Range::interval(1, 4)).with_constraint(
                Constraint::new("c divides b", |v, cfg| {
                    v.as_u64()
                        .zip(cfg.get("B").and_then(|b| b.as_u64()))
                        .is_some_and(|(c, b)| c != 0 && b % c == 0)
                })
                .with_references(["B"]),
            ),
        ]);
        // A is independent; B and C form one group.
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[1].len(), 2);
    }

    #[test]
    #[should_panic(expected = "not declared before")]
    fn auto_group_rejects_forward_references() {
        auto_group(vec![
            tp_c("A", Range::interval(1, 4), divides(p("LATER"))),
            tp("LATER", Range::interval(1, 4)),
        ]);
    }

    #[test]
    fn singleton_groups_split() {
        let gs = singleton_groups(vec![
            tp("A", Range::interval(1, 4)),
            tp("B", Range::interval(1, 3)),
        ]);
        assert_eq!(gs.len(), 2);
        assert_eq!(gs[0].unconstrained_size(), 4);
        assert_eq!(gs[1].unconstrained_size(), 3);
    }
}
