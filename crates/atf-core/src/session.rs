//! A resumable tuning session: the exploration loop of [`crate::tuner`]
//! turned inside out, so the *cost measurement* can happen anywhere — in
//! another process, on another machine, or interleaved with other sessions.
//!
//! The paper's exploration loop (Section IV) is a pull/push cycle:
//! `get_next_config` hands a configuration to the measuring side,
//! `report_cost` feeds the measured cost back. [`TuningSession`] is that
//! cycle as a state machine, generalized to a bounded *window* of
//! simultaneously outstanding configurations: [`next_ticket`] hands out
//! `(ticket, config)` pairs and [`report_ticket`] accepts their outcomes in
//! any order. The serial form stays a thin special case (window 1):
//!
//! ```text
//! loop {
//!     let Some(config) = session.next_config() else { break };
//!     let cost = measure(config);            // anywhere, any time later
//!     session.report(cost)?;
//! }
//! let result = session.finish()?;
//! ```
//!
//! # Tickets and determinism
//!
//! Every handout carries a monotonically increasing [`Ticket`]. Reports may
//! arrive out of ticket order (several workers, several TCP clients); the
//! session journals them at arrival but buffers their *application* — the
//! search technique, status, best-so-far, and circuit breaker advance
//! strictly in ticket order. Combined with the per-technique
//! [`can_propose`](crate::search::SearchTechnique::can_propose) gate, the
//! entire search state is a pure function of the window size and the report
//! *values*, never of their arrival timing — which keeps seeded parallel
//! runs reproducible and journals replayable.
//!
//! A ticket is spent when handed out: asking again hands out a *new*
//! configuration under a new ticket (the old one stays pending). A
//! disconnected client therefore doesn't re-request its work item — the
//! serving side re-sends the recorded `(ticket, config)` pair, or forfeits
//! the ticket by reporting a failure on it.
//!
//! [`next_ticket`]: TuningSession::next_ticket
//! [`report_ticket`]: TuningSession::report_ticket

use crate::abort::{self, Abort, AbortCondition};
use crate::config::Config;
use crate::cost::{CostError, CostValue, FailureKind, JournalCost};
use crate::journal::{JournalEntry, JournalHeader, JournalWriter, LoadedJournal, JOURNAL_VERSION};
use crate::metrics::MetricsRegistry;
use crate::policy::EvalPolicy;
use crate::search::{Point, SearchTechnique, SpaceDims, PENALTY_COST};
use crate::space::SearchSpace;
use crate::status::TuningStatus;
use crate::trace::{NullSink, TraceEvent, TraceSink};
use crate::tuner::{EvalRecord, TuningError, TuningResult};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifier of one handed-out configuration. Tickets are handed out as
/// 1, 2, 3, … — the ticket of the `n`-th handout is `n`.
pub type Ticket = u64;

/// Result of asking the session for another configuration.
#[derive(Clone, Debug, PartialEq)]
pub enum Handout {
    /// A configuration to measure, identified by its ticket.
    Next(Ticket, Config),
    /// Nothing to hand out *right now*: the window is full or the technique
    /// needs outstanding reports before proposing again. Report a pending
    /// ticket, then ask again.
    Wait,
    /// Exploration is over (abort condition fired or technique exhausted);
    /// no further configuration will ever be handed out.
    Done,
}

/// One handed-out configuration awaiting application of its report.
struct PendingEval {
    ticket: Ticket,
    point: Point,
    config: Config,
    /// When the ticket was handed out; the handout-to-report latency of
    /// the `eval` trace event and the latency histogram.
    handed_at: Instant,
}

/// A reported outcome buffered until its in-ticket-order application,
/// together with the telemetry captured at arrival.
struct BufferedReport<C> {
    outcome: Result<C, CostError>,
    /// Run clock when the report arrived (journal stamp during replay) —
    /// the elapsed time an improvement from this report is recorded at.
    elapsed: Duration,
    /// Handout-to-report latency (`None` for replayed entries, whose
    /// original latency was not journaled).
    latency: Option<Duration>,
}

/// An attached run journal: the writer plus the cost encoder captured when
/// the journal was attached (which is the only place the `C: JournalCost`
/// bound is available).
struct JournalState<C> {
    writer: JournalWriter,
    encode: fn(&C) -> Vec<f64>,
}

/// The resumable exploration state machine. Generic over the cost value
/// type `C` (plain `f64` for out-of-process measurement, tuples or
/// [`crate::process::LexCosts`] for multi-objective in-process tuning).
pub struct TuningSession<C: CostValue = f64> {
    space: SearchSpace,
    technique: Box<dyn SearchTechnique>,
    abort: Abort,
    status: TuningStatus,
    best: Option<(Config, C)>,
    best_scalar: f64,
    record_history: bool,
    history: Vec<EvalRecord>,
    /// Handed-out configurations whose reports have not been *applied* yet,
    /// in ticket order (front = next to apply). A ticket stays here from
    /// handout until its report is applied; its reported outcome waits in
    /// `buffered` in between.
    pending: VecDeque<PendingEval>,
    /// Reported outcomes awaiting in-ticket-order application.
    buffered: BTreeMap<Ticket, BufferedReport<C>>,
    /// The ticket the next handout will carry.
    next_ticket_id: Ticket,
    /// Maximum number of simultaneously pending configurations (window).
    max_pending: usize,
    /// Reports that have arrived (1-based journal numbering, arrival order).
    arrivals: u64,
    /// Set once the technique is exhausted or the abort condition fired;
    /// `next_ticket` returns [`Handout::Done`] from then on.
    done: bool,
    /// Circuit breaker: abort after this many consecutive failures.
    max_consecutive_failures: Option<u32>,
    /// The failure kind that tripped the circuit breaker, once tripped.
    broken: Option<FailureKind>,
    /// Write-ahead journal of evaluation outcomes, when attached.
    journal: Option<JournalState<C>>,
    /// When `true`, a journal write failure fails the report (the pre-v4
    /// behaviour); when `false` (default) the session degrades to
    /// in-memory-only and keeps tuning.
    strict_journal: bool,
    /// Why the journal was dropped mid-run, once degraded.
    journal_degraded: Option<String>,
    /// Compact the journal into its checkpoint every this many entries.
    checkpoint_every: Option<usize>,
    /// Suppresses journal writes while replaying a journal into the
    /// session (the entries are already on disk).
    replaying: bool,
    /// The journal-recorded elapsed time of the entry currently being
    /// replayed, consumed by [`report_ticket`](Self::report_ticket) so
    /// replayed reports carry their original arrival stamps.
    replay_elapsed: Option<Duration>,
    /// Structured event stream ([`NullSink`] unless attached).
    trace: Arc<dyn TraceSink>,
    /// Lock-free run metrics, shareable with drivers and the service.
    metrics: Arc<MetricsRegistry>,
}

impl<C: CostValue> TuningSession<C> {
    /// Opens a session over `space` driven by `technique`, with the paper's
    /// default abort condition `evaluations(S)` and a pending window of 1
    /// (strictly serial handouts).
    ///
    /// Fails with [`TuningError::EmptySearchSpace`] when the space holds no
    /// valid configuration.
    pub fn new(
        space: SearchSpace,
        mut technique: Box<dyn SearchTechnique>,
    ) -> Result<Self, TuningError> {
        if space.is_empty() {
            return Err(TuningError::EmptySearchSpace);
        }
        technique.initialize(SpaceDims::new(space.dims()));
        let default_abort = abort::evaluations(u64::try_from(space.len()).unwrap_or(u64::MAX));
        let status = TuningStatus::new(space.len());
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.set_window_capacity(1);
        Ok(TuningSession {
            space,
            technique,
            abort: default_abort,
            status,
            best: None,
            best_scalar: f64::INFINITY,
            record_history: false,
            history: Vec::new(),
            pending: VecDeque::new(),
            buffered: BTreeMap::new(),
            next_ticket_id: 1,
            max_pending: 1,
            arrivals: 0,
            done: false,
            max_consecutive_failures: None,
            broken: None,
            journal: None,
            strict_journal: false,
            journal_degraded: None,
            checkpoint_every: None,
            replaying: false,
            replay_elapsed: None,
            trace: Arc::new(NullSink),
            metrics,
        })
    }

    /// Replaces the abort condition (builder-style, before driving).
    pub fn abort_condition(mut self, a: Abort) -> Self {
        self.abort = a;
        self
    }

    /// Sets the maximum number of simultaneously pending configurations
    /// (builder-style; clamped to ≥ 1). With `k > 1` the session hands out
    /// up to `k` tickets before requiring a report — the enabling half of
    /// parallel evaluation.
    pub fn max_pending(mut self, k: usize) -> Self {
        self.max_pending = k.max(1);
        self.metrics.set_window_capacity(self.max_pending);
        self
    }

    /// Attaches a structured trace sink (builder-style): every handout,
    /// report arrival, eval latency, breaker trip, and the final abort are
    /// emitted as [`TraceEvent`]s. Replayed journal entries are *not*
    /// re-emitted.
    pub fn trace_to(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = sink;
        self
    }

    /// The session's trace sink (the no-op [`NullSink`] unless attached).
    pub fn trace_sink(&self) -> Arc<dyn TraceSink> {
        Arc::clone(&self.trace)
    }

    /// Shares an externally created metrics registry (builder-style), e.g.
    /// one registry aggregating several sessions.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        metrics.set_window_capacity(self.max_pending);
        self.metrics = metrics;
        self
    }

    /// The session's metrics registry. Always present; clone the `Arc` to
    /// read a [`crate::metrics::MetricsSnapshot`] from another thread.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The session's pending window (maximum simultaneously outstanding
    /// configurations).
    pub fn window(&self) -> usize {
        self.max_pending
    }

    /// Enables per-evaluation history recording (builder-style).
    pub fn record_history(mut self, on: bool) -> Self {
        self.record_history = on;
        self
    }

    /// Arms the circuit breaker (builder-style): after `consecutive_failures`
    /// failed evaluations in a row the session stops handing out
    /// configurations and [`finish`](Self::finish) returns
    /// [`TuningError::CircuitBroken`]. Failures are counted in ticket order
    /// across all workers, so the breaker behaves identically under
    /// parallel evaluation.
    pub fn circuit_breaker(mut self, consecutive_failures: u32) -> Self {
        self.max_consecutive_failures = Some(consecutive_failures.max(1));
        self
    }

    /// Applies the session-relevant parts of an [`EvalPolicy`]
    /// (builder-style): currently the circuit-breaker threshold. The
    /// timeout and retries of the policy act on the cost-function side
    /// ([`crate::process::ProcessCostFunction`] and
    /// [`crate::policy::RetryCostFunction`]).
    pub fn eval_policy(mut self, policy: &EvalPolicy) -> Self {
        self.max_consecutive_failures = policy.max_consecutive_failures;
        self
    }

    /// Asks for the next configuration to measure.
    ///
    /// Returns [`Handout::Next`] with a fresh ticket while the window has
    /// room and the technique can propose; [`Handout::Wait`] when a report
    /// on an earlier ticket must land first; [`Handout::Done`] once
    /// exploration is over.
    pub fn next_ticket(&mut self) -> Handout {
        loop {
            if self.done {
                // No further proposals can happen: applying every
                // contiguous buffered report now is safe and keeps
                // status()/best() fresh for finish().
                self.drain_ready();
                return Handout::Done;
            }
            // Project in-flight handouts as already-spent evaluations, so a
            // budget abort admits exactly its budget of tickets. At the ask
            // for ticket t the projection is t-1, making the check
            // independent of report arrival timing.
            let projected = self.status.projecting(self.pending.len() as u64);
            if self.abort.should_stop(&projected) {
                self.done = true;
                self.emit_abort(&self.abort.describe());
                continue;
            }
            let outstanding = self.pending.len();
            if outstanding < self.max_pending && self.technique.can_propose(outstanding) {
                let Some(point) = self.technique.get_next_point() else {
                    self.done = true; // technique exhausted
                    self.emit_abort("technique exhausted");
                    continue;
                };
                let config = self.space.get_by_coords(&point);
                let ticket = self.next_ticket_id;
                self.next_ticket_id += 1;
                if !self.replaying {
                    self.trace.emit(&TraceEvent::handout(ticket, point.clone()));
                }
                self.pending.push_back(PendingEval {
                    ticket,
                    point,
                    config: config.clone(),
                    handed_at: Instant::now(),
                });
                self.metrics.set_window_occupancy(self.pending.len());
                return Handout::Next(ticket, config);
            }
            // Can't propose: apply one buffered report (in ticket order) if
            // available and retry, otherwise the caller must wait.
            if self.front_ready() {
                self.apply_front();
                continue;
            }
            return Handout::Wait;
        }
    }

    /// Hands out up to `k` configurations at once (stops early at
    /// [`Handout::Wait`]/[`Handout::Done`]). May return fewer than `k` —
    /// or none — when the window or the technique limits the batch.
    pub fn next_config_batch(&mut self, k: usize) -> Vec<(Ticket, Config)> {
        let mut out = Vec::new();
        for _ in 0..k {
            match self.next_ticket() {
                Handout::Next(t, c) => out.push((t, c)),
                Handout::Wait | Handout::Done => break,
            }
        }
        out
    }

    /// The next configuration to measure, or `None` when no handout is
    /// available (window full, technique waiting, or exploration over).
    ///
    /// Serial convenience over [`next_ticket`](Self::next_ticket): each call
    /// hands out a *new* ticket. With the default window of 1 this is the
    /// classic strict alternation with [`report`](Self::report).
    pub fn next_config(&mut self) -> Option<Config> {
        match self.next_ticket() {
            Handout::Next(_, config) => Some(config),
            Handout::Wait | Handout::Done => None,
        }
    }

    /// Reports the measured outcome of ticket `t`.
    ///
    /// Accepts reports in any order; each is journaled at arrival and
    /// applied to the search state in ticket order. Fails with
    /// [`TuningError::UnknownTicket`] when `t` was never handed out, was
    /// already reported, or was already applied.
    pub fn report_ticket(
        &mut self,
        ticket: Ticket,
        outcome: Result<C, CostError>,
    ) -> Result<(), TuningError> {
        let Some(pe) = self.pending.iter().find(|p| p.ticket == ticket) else {
            return Err(TuningError::UnknownTicket { ticket });
        };
        if self.buffered.contains_key(&ticket) {
            return Err(TuningError::UnknownTicket { ticket });
        }
        let point = pe.point.clone();
        // Handout-to-report latency; unknown for replayed entries (the
        // original latency was not journaled).
        let latency = (!self.replaying).then(|| pe.handed_at.elapsed());
        self.arrivals += 1;
        // The report's arrival stamp on the run clock. Replay restores the
        // journaled stamp; live reports truncate to the journal's
        // millisecond precision so a replayed run reconstructs *identical*
        // improvement timestamps.
        let elapsed = match self.replay_elapsed.take() {
            Some(e) if self.replaying => e,
            _ => Duration::from_millis(self.status.elapsed().as_millis() as u64),
        };
        let failure_label = outcome.as_ref().err().map(|e| e.kind().label().to_string());
        // Write-ahead at *arrival*: the outcome reaches the journal before
        // any session state advances, so a crash never loses an applied
        // evaluation. Entries are in arrival order; `ticket` identifies the
        // handout for replay.
        if !self.replaying {
            let mut degraded: Option<String> = None;
            if let Some(journal) = &mut self.journal {
                let entry = JournalEntry {
                    evaluation: self.arrivals,
                    ticket: Some(ticket),
                    point,
                    costs: outcome.as_ref().ok().map(|c| (journal.encode)(c)),
                    failure: failure_label.clone(),
                    elapsed_ms: Some(elapsed.as_millis() as u64),
                };
                if let Err(e) = journal.writer.append(&entry) {
                    if self.strict_journal {
                        return Err(TuningError::Journal(e.to_string()));
                    }
                    degraded = Some(e.to_string());
                }
            }
            if let Some(message) = degraded {
                // Degrade, don't die: the journal is gone (full disk, I/O
                // error) but the in-memory run is intact — drop the writer,
                // warn through trace + metrics, and keep tuning. The run
                // merely loses crash-resumability from here on.
                self.journal = None;
                self.metrics.journal_errors.inc();
                self.trace.emit(&TraceEvent::journal_degraded(&message));
                self.journal_degraded = Some(message);
            }
            self.trace.emit(&TraceEvent::report(
                ticket,
                self.arrivals,
                failure_label.as_deref(),
            ));
            if let Some(latency) = latency {
                self.trace.emit(&TraceEvent::eval(
                    ticket,
                    u64::try_from(latency.as_micros()).unwrap_or(u64::MAX),
                    failure_label.as_deref(),
                ));
            }
        }
        self.buffered.insert(
            ticket,
            BufferedReport {
                outcome,
                elapsed,
                latency,
            },
        );
        if self.done {
            self.drain_ready();
        } else {
            // Bounded eager application: catch up while at least a full
            // window is outstanding. This keeps `status()` fresh after
            // every serial report (window 1 applies immediately) without
            // making the technique's view depend on arrival timing — the
            // stopping point is a function of handout/apply counts only.
            while self.pending.len() >= self.max_pending && self.front_ready() {
                self.apply_front();
            }
        }
        Ok(())
    }

    /// Reports the measured cost (or measurement failure) of the *oldest
    /// unreported* ticket — the serial convenience over
    /// [`report_ticket`](Self::report_ticket).
    ///
    /// Fails with [`TuningError::NoPendingConfiguration`] when no
    /// configuration is awaiting a report.
    pub fn report(&mut self, outcome: Result<C, CostError>) -> Result<(), TuningError> {
        let ticket = self
            .oldest_in_flight()
            .ok_or(TuningError::NoPendingConfiguration)?;
        self.report_ticket(ticket, outcome)
    }

    /// Convenience for scalar reporting: `Some(cost)` for a successful
    /// measurement, `None` for a failed one.
    pub fn report_cost(&mut self, cost: Option<C>) -> Result<(), TuningError> {
        self.report(cost.ok_or(CostError::RunFailed("measurement failed".into())))
    }

    /// `true` when the front pending ticket's report has arrived.
    fn front_ready(&self) -> bool {
        self.pending
            .front()
            .is_some_and(|pe| self.buffered.contains_key(&pe.ticket))
    }

    /// Applies every contiguous buffered report (used once `done`: with no
    /// future proposals possible, application order constraints are moot).
    fn drain_ready(&mut self) {
        while self.front_ready() {
            self.apply_front();
        }
    }

    /// Applies the front pending ticket's buffered report to the technique,
    /// status, best-so-far, history, and circuit breaker.
    fn apply_front(&mut self) {
        let pe = self.pending.pop_front().expect("front pending");
        let report = self.buffered.remove(&pe.ticket).expect("front buffered");
        let BufferedReport {
            outcome,
            elapsed,
            latency,
        } = report;
        let valid = outcome.is_ok();
        let failure = outcome.as_ref().err().map(|e| e.kind());
        self.status.record_evaluation(valid);
        if let Some(kind) = failure {
            self.status.record_failure_kind(kind);
        }
        self.metrics.record_eval(latency, failure);
        self.metrics.set_window_occupancy(self.pending.len());
        let scalar = match &outcome {
            Ok(c) => c.as_scalar(),
            Err(_) => PENALTY_COST,
        };
        if self.record_history {
            self.history.push(EvalRecord {
                evaluation: self.status.evaluations(),
                point: pe.point,
                scalar_cost: scalar,
                valid,
                failure,
            });
        }
        if let Ok(c) = outcome {
            let improves = match &self.best {
                None => true,
                // Full multi-objective comparison for best-so-far.
                Some((_, bc)) => c.partial_cmp(bc).is_some_and(|o| o.is_lt()),
            };
            if improves {
                self.best = Some((pe.config, c));
                if scalar < self.best_scalar {
                    self.best_scalar = scalar;
                    // Stamped with the report's *arrival* time (which the
                    // journal preserves), not the application time — so a
                    // kill+resume reconstructs the same improvement
                    // timeline the uninterrupted run recorded.
                    self.status.record_improvement_at(scalar, elapsed);
                }
            }
        }
        self.technique.report_cost(scalar);
        if let (Some(limit), Some(kind)) = (self.max_consecutive_failures, failure) {
            if self.status.consecutive_failures() >= u64::from(limit.max(1)) {
                self.done = true;
                self.broken = Some(kind);
                self.metrics.breaker_trips.inc();
                if !self.replaying {
                    self.trace.emit(&TraceEvent::breaker(
                        self.status.consecutive_failures(),
                        kind.label(),
                    ));
                }
            }
        }
    }

    /// Emits the `abort` trace event (suppressed during replay — the
    /// resumed run's own stop will emit its own).
    fn emit_abort(&self, condition: &str) {
        if !self.replaying {
            self.trace.emit(&TraceEvent::abort(
                condition,
                self.status.evaluations(),
                self.status.elapsed().as_millis() as u64,
            ));
        }
    }

    /// `true` once exploration is over: no further handout will happen and
    /// no ticket is pending.
    pub fn is_done(&self) -> bool {
        self.done && self.pending.is_empty()
    }

    /// `true` while at least one handed-out configuration awaits its
    /// report's application.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Tickets handed out so far.
    pub fn tickets_issued(&self) -> u64 {
        self.next_ticket_id - 1
    }

    /// Tickets handed out whose reports have not been applied yet
    /// (reported-but-buffered tickets count as in flight).
    pub fn tickets_in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Tickets whose reports arrived but have not been applied yet.
    pub fn tickets_buffered(&self) -> usize {
        self.buffered.len()
    }

    /// Tickets handed out but not yet reported, oldest first. After a
    /// resume these can be nonempty before any new handout: the journal
    /// prefix proves the dead process held them, but their reports never
    /// arrived — whoever drives the session must evaluate them.
    pub fn unreported_tickets(&self) -> impl Iterator<Item = Ticket> + '_ {
        self.pending
            .iter()
            .map(|p| p.ticket)
            .filter(|t| !self.buffered.contains_key(t))
    }

    /// The oldest ticket that has not been reported yet, if any — the
    /// ticket the serial [`report`](Self::report) would target.
    pub fn oldest_in_flight(&self) -> Option<Ticket> {
        self.unreported_tickets().next()
    }

    /// The configuration of pending ticket `t`, if it is still pending.
    pub fn pending_config_for(&self, ticket: Ticket) -> Option<&Config> {
        self.pending
            .iter()
            .find(|p| p.ticket == ticket)
            .map(|p| &p.config)
    }

    /// The oldest unreported configuration, if any (serial convenience).
    pub fn pending_config(&self) -> Option<&Config> {
        let t = self.oldest_in_flight()?;
        self.pending_config_for(t)
    }

    /// Live progress bookkeeping (evaluations, improvements, elapsed).
    /// Counts *applied* reports; reported-but-buffered tickets are not yet
    /// included.
    pub fn status(&self) -> &TuningStatus {
        &self.status
    }

    /// The search space being explored.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Best configuration found so far, with its cost.
    pub fn best(&self) -> Option<(&Config, &C)> {
        self.best.as_ref().map(|(cfg, c)| (cfg, c))
    }

    /// Best scalar cost found so far (`None` before the first valid
    /// measurement).
    pub fn best_scalar_cost(&self) -> Option<f64> {
        self.best.as_ref().map(|_| self.best_scalar)
    }

    /// The failure kind that tripped the circuit breaker, once tripped.
    pub fn circuit_broken(&self) -> Option<FailureKind> {
        self.broken
    }

    /// The header a journal of this session carries.
    pub fn journal_header(&self) -> JournalHeader {
        JournalHeader {
            version: JOURNAL_VERSION,
            technique: self.technique.name().to_string(),
            space_size: self.space.len().to_string(),
            window: self.max_pending,
        }
    }

    /// Attaches a fresh write-ahead journal at `path` (builder-style):
    /// every reported outcome is appended before the session state
    /// advances, so the run can be resumed after a crash with
    /// [`resume_from_journal`](Self::resume_from_journal).
    pub fn journal_to(mut self, path: impl AsRef<Path>) -> Result<Self, TuningError>
    where
        C: JournalCost,
    {
        let header = self.journal_header();
        let mut writer = JournalWriter::create(path.as_ref(), &header)
            .map_err(|e| TuningError::Journal(e.to_string()))?;
        writer.set_checkpoint_every(self.checkpoint_every);
        self.journal = Some(JournalState {
            writer,
            encode: C::to_journal,
        });
        Ok(self)
    }

    /// Makes journal write failures fatal again (builder-style): a failed
    /// append fails the report with [`TuningError::Journal`] instead of
    /// degrading to in-memory-only tuning. The CLI's `--strict-journal`.
    pub fn strict_journal(mut self, strict: bool) -> Self {
        self.strict_journal = strict;
        self
    }

    /// Enables journal checkpoint compaction every `every` entries
    /// (builder-style): the journal is periodically folded into an
    /// atomically-replaced checkpoint file, bounding the live tail's size.
    /// Applies to a journal attached before or after this call.
    pub fn journal_checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = Some(every).filter(|n| *n > 0);
        if let Some(journal) = &mut self.journal {
            journal.writer.set_checkpoint_every(self.checkpoint_every);
        }
        self
    }

    /// Why journaling degraded mid-run, if it did: the session dropped its
    /// journal after a write failure and continued in-memory.
    pub fn journal_degraded(&self) -> Option<&str> {
        self.journal_degraded.as_deref()
    }

    /// Forces a journal checkpoint right now: the live tail is fsynced and
    /// compacted into the atomically-replaced checkpoint file, leaving the
    /// smallest resumable on-disk state. Used by the service's graceful
    /// drain so every in-flight session lands as a compact, durable
    /// journal before the process exits. Returns `true` when a journal was
    /// attached and checkpointed, `false` when the session has none.
    pub fn checkpoint_journal(&mut self) -> Result<bool, TuningError> {
        match &mut self.journal {
            Some(journal) => {
                journal
                    .writer
                    .compact()
                    .map_err(|e| TuningError::Journal(e.to_string()))?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Chaos hook: makes the next `n` journal appends fail as if the disk
    /// were full, exercising the degrade-don't-die (or, under
    /// [`strict_journal`](Self::strict_journal), fail-fast) path. No-op
    /// without an attached journal.
    pub fn inject_journal_failures(&mut self, n: u64) {
        if let Some(journal) = &mut self.journal {
            journal.writer.fail_next_appends(n);
        }
    }

    /// Replays journal `entries` into this freshly opened session: tickets
    /// are handed out in order until each entry's ticket is issued, the
    /// issued point must match the entry (same spec, technique, seed, and
    /// window), and the recorded outcome is reported back under its ticket.
    /// Entries may be in any arrival order — every report that influenced a
    /// handout appears earlier in the journal than that handout's entry, so
    /// in-order replay always has what it needs. Returns the number of
    /// entries replayed.
    ///
    /// Nothing is written to the attached journal during replay.
    pub fn resume_from(&mut self, entries: &[JournalEntry]) -> Result<u64, TuningError>
    where
        C: JournalCost,
    {
        self.replaying = true;
        let result = self.replay_entries(entries);
        self.replaying = false;
        self.replay_elapsed = None;
        // Restore the run clock: the resumed run continues from the last
        // journaled arrival stamp, so time-based abort conditions fire at
        // the same *total* wall-clock budget as an uninterrupted run.
        // Raised only after replay — time cannot end exploration
        // mid-replay, exactly as it could not retroactively unwrite the
        // original run's journal entries.
        if let Some(ms) = entries.iter().filter_map(|e| e.elapsed_ms).max() {
            self.status.raise_elapsed_offset(Duration::from_millis(ms));
        }
        result
    }

    fn replay_entries(&mut self, entries: &[JournalEntry]) -> Result<u64, TuningError>
    where
        C: JournalCost,
    {
        let mut replayed = 0u64;
        'entries: for entry in entries {
            // Version-1 journals were strictly serial: the ticket is the
            // evaluation number.
            let ticket = entry.ticket.unwrap_or(entry.evaluation);
            // Hand out tickets until the entry's ticket has been issued.
            while self.next_ticket_id <= ticket {
                match self.next_ticket() {
                    Handout::Next(..) => {}
                    // Abort condition or circuit breaker reproduced
                    // mid-replay: the journal's tail was written past the
                    // stopping point of an equivalent run, which cannot
                    // happen for our own journals — stop where the session
                    // stops.
                    Handout::Done => break 'entries,
                    // The session refuses to issue the ticket within its
                    // window: the journal was written with a different
                    // (larger) window.
                    Handout::Wait => {
                        return Err(TuningError::Journal(format!(
                            "journal entry {} reports ticket {ticket}, which does not fit \
                             the session's pending window of {}",
                            entry.evaluation, self.max_pending
                        )));
                    }
                }
            }
            let Some(pe) = self.pending.iter().find(|p| p.ticket == ticket) else {
                return Err(TuningError::JournalDiverged {
                    evaluation: entry.evaluation,
                });
            };
            if pe.point != entry.point {
                return Err(TuningError::JournalDiverged {
                    evaluation: entry.evaluation,
                });
            }
            self.replay_elapsed = entry.elapsed_ms.map(Duration::from_millis);
            let outcome = match (&entry.costs, entry.failure_kind()) {
                (Some(values), None) => Ok(C::from_journal(values).ok_or_else(|| {
                    TuningError::Journal(format!(
                        "undecodable cost vector at evaluation {}",
                        entry.evaluation
                    ))
                })?),
                (None, Some(kind)) => Err(CostError::from_kind(kind)),
                _ => {
                    return Err(TuningError::Journal(format!(
                        "entry {} records neither costs nor a known failure kind",
                        entry.evaluation
                    )))
                }
            };
            self.report_ticket(ticket, outcome)?;
            replayed += 1;
        }
        Ok(replayed)
    }

    /// Resumes this freshly opened session from the journal at `path`
    /// (checkpoint first, then the live tail): validates the header against
    /// the session's technique and space, adopts the journal's pending
    /// window (replay must hand out tickets exactly as the original run
    /// did), replays every intact entry, and re-attaches a writer appending
    /// subsequent outcomes to the same file. A torn tail is truncated to
    /// its intact prefix before appending (gluing a new entry onto a torn
    /// line would lose both on the next resume); a tail unusable past a
    /// valid checkpoint (kill mid-compaction) is recreated. Returns the
    /// number of entries replayed.
    pub fn resume_from_journal(&mut self, path: impl AsRef<Path>) -> Result<u64, TuningError>
    where
        C: JournalCost,
    {
        let loaded = LoadedJournal::load_with_checkpoint(path.as_ref())
            .map_err(|e| TuningError::Journal(e.to_string()))?;
        loaded
            .check_matches(self.technique.name(), self.space.len())
            .map_err(|e| TuningError::Journal(e.to_string()))?;
        self.max_pending = loaded.header.window.max(1);
        self.metrics.set_window_capacity(self.max_pending);
        let replayed = self.resume_from(&loaded.entries)?;
        let mut writer = match loaded.tail_intact_len {
            Some(intact) => JournalWriter::append_from(path.as_ref(), intact),
            None => JournalWriter::create_tail(path.as_ref(), &loaded.header),
        }
        .map_err(|e| TuningError::Journal(e.to_string()))?;
        writer.set_checkpoint_every(self.checkpoint_every);
        self.journal = Some(JournalState {
            writer,
            encode: C::to_journal,
        });
        Ok(replayed)
    }

    /// Finishes the session, consuming it.
    ///
    /// Fails with [`TuningError::NoValidConfiguration`] when nothing was
    /// measured successfully.
    pub fn finish(self) -> Result<TuningResult<C>, TuningError> {
        self.finish_parts().0
    }

    /// Like [`finish`](Self::finish), but also hands back the technique and
    /// abort condition so a reusable driver (the [`crate::tuner::Tuner`])
    /// can restore them for the next run.
    #[allow(clippy::type_complexity)]
    pub fn finish_parts(
        mut self,
    ) -> (
        Result<TuningResult<C>, TuningError>,
        Box<dyn SearchTechnique>,
        Abort,
    ) {
        // Apply the maximal contiguous prefix of buffered reports; tickets
        // behind an unreported gap were never measured and are dropped.
        self.drain_ready();
        self.technique.finalize();
        if let Some(journal) = &mut self.journal {
            let _ = journal.writer.sync();
        }
        self.trace.flush();
        if let Some(last_failure) = self.broken {
            return (
                Err(TuningError::CircuitBroken {
                    consecutive_failures: self.status.consecutive_failures(),
                    last_failure,
                }),
                self.technique,
                self.abort,
            );
        }
        let result = match self.best {
            Some((best_config, best_cost)) => Ok(TuningResult {
                best_config,
                best_cost,
                evaluations: self.status.evaluations(),
                valid_evaluations: self.status.valid_evaluations(),
                failed_evaluations: self.status.failed_evaluations(),
                space_size: self.status.space_size(),
                elapsed: self.status.elapsed(),
                improvements: self.status.improvements().to_vec(),
                history: self.history,
            }),
            None => Err(TuningError::NoValidConfiguration {
                evaluations: self.status.evaluations(),
            }),
        };
        (result, self.technique, self.abort)
    }
}

impl<C: CostValue> std::fmt::Debug for TuningSession<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TuningSession")
            .field("space_size", &self.space.len())
            .field("technique", &self.technique.name())
            .field("evaluations", &self.status.evaluations())
            .field("best_scalar", &self.best_scalar)
            .field("window", &self.max_pending)
            .field("pending", &self.pending.len())
            .field("done", &self.done)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::divides;
    use crate::expr::{cst, param};
    use crate::param::{tp_c, ParamGroup};
    use crate::range::Range;
    use crate::search::Exhaustive;

    fn saxpy_space(n: u64) -> SearchSpace {
        SearchSpace::generate(&[ParamGroup::new(vec![
            tp_c("WPT", Range::interval(1, n), divides(cst(n))),
            tp_c("LS", Range::interval(1, n), divides(cst(n) / param("WPT"))),
        ])])
    }

    #[test]
    fn step_driven_session_finds_optimum() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new())).unwrap();
        while let Some(config) = s.next_config() {
            let wpt = config.get_u64("WPT") as f64;
            let ls = config.get_u64("LS") as f64;
            s.report(Ok((wpt - 8.0).powi(2) + (ls - 4.0).powi(2)))
                .unwrap();
        }
        let r = s.finish().unwrap();
        assert_eq!(r.best_config.get_u64("WPT"), 8);
        assert_eq!(r.best_config.get_u64("LS"), 4);
        assert_eq!(r.evaluations as u128, r.space_size);
    }

    #[test]
    fn tickets_identify_each_handout() {
        // Each ask hands out a fresh ticket; with a window > 1 several
        // distinct configurations are pending at once, and reporting by
        // ticket retires exactly that handout.
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(8), Box::new(Exhaustive::new()))
                .unwrap()
                .max_pending(3);
        let Handout::Next(t1, c1) = s.next_ticket() else {
            panic!("first handout")
        };
        let Handout::Next(t2, c2) = s.next_ticket() else {
            panic!("second handout")
        };
        assert_eq!((t1, t2), (1, 2));
        assert_ne!(c1, c2, "each ticket carries a distinct configuration");
        assert_eq!(s.tickets_in_flight(), 2);
        assert_eq!(s.pending_config_for(t1), Some(&c1));
        assert_eq!(s.pending_config_for(t2), Some(&c2));
        // Out-of-order report: t2 first. It buffers (t1 not applied yet)…
        s.report_ticket(t2, Ok(2.0)).unwrap();
        assert_eq!(s.tickets_buffered(), 1);
        // …and re-reporting either spent ticket is rejected.
        assert_eq!(
            s.report_ticket(t2, Ok(9.0)).unwrap_err(),
            TuningError::UnknownTicket { ticket: t2 }
        );
        s.report_ticket(t1, Ok(1.0)).unwrap();
        assert_eq!(
            s.report_ticket(99, Ok(1.0)).unwrap_err(),
            TuningError::UnknownTicket { ticket: 99 }
        );
        // Application is deferred while the window has slack (it advances
        // only at points fixed by handout counts, never arrival timing), so
        // both reports are still buffered…
        assert_eq!(s.oldest_in_flight(), None);
        assert_eq!(s.tickets_buffered(), 2);
        assert_eq!(s.status().evaluations(), 0);
        // …until finish() drains them, in ticket order.
        let r = s.finish().unwrap();
        assert_eq!(r.evaluations, 2);
        assert_eq!(r.best_cost, 1.0);
    }

    #[test]
    fn window_bounds_simultaneous_handouts() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new()))
                .unwrap()
                .max_pending(4);
        let batch = s.next_config_batch(16);
        assert_eq!(batch.len(), 4, "window caps the batch");
        assert_eq!(s.next_ticket(), Handout::Wait);
        // Retiring one ticket frees one window slot.
        let (t, _) = batch[0].clone();
        s.report_ticket(t, Ok(1.0)).unwrap();
        assert!(matches!(s.next_ticket(), Handout::Next(..)));
    }

    #[test]
    fn serial_window_applies_reports_immediately() {
        // With the default window of 1 a report is applied before
        // `report` returns, so `status()` is fresh — the contract every
        // serial driver in this crate relies on.
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(8), Box::new(Exhaustive::new())).unwrap();
        let a = s.next_config().unwrap();
        assert!(s.has_pending());
        // A second ask while one ticket is pending must not hand out more
        // work within a window of 1.
        assert_eq!(s.next_ticket(), Handout::Wait);
        s.report(Ok(1.0)).unwrap();
        assert!(!s.has_pending());
        assert_eq!(s.status().evaluations(), 1);
        let c = s.next_config().unwrap();
        assert_ne!(a, c, "after a report, the next configuration advances");
    }

    #[test]
    fn out_of_order_reports_apply_in_ticket_order() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new()))
                .unwrap()
                .record_history(true)
                .max_pending(3);
        let batch = s.next_config_batch(3);
        let tickets: Vec<_> = batch.iter().map(|(t, _)| *t).collect();
        // Report newest-first; history must still be in ticket order.
        for (&t, cost) in tickets.iter().rev().zip([30.0, 20.0, 10.0]) {
            s.report_ticket(t, Ok(cost)).unwrap();
        }
        while s.next_config().is_some() {
            s.report(Ok(99.0)).unwrap();
        }
        let r = s.finish().unwrap();
        let first_three: Vec<f64> = r.history[..3].iter().map(|h| h.scalar_cost).collect();
        assert_eq!(first_three, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn report_without_pending_errors() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(8), Box::new(Exhaustive::new())).unwrap();
        assert_eq!(
            s.report(Ok(1.0)).unwrap_err(),
            TuningError::NoPendingConfiguration
        );
    }

    #[test]
    fn empty_space_rejected_at_open() {
        let space = SearchSpace::generate(&[]);
        let err = TuningSession::<f64>::new(space, Box::new(Exhaustive::new())).unwrap_err();
        assert_eq!(err, TuningError::EmptySearchSpace);
    }

    #[test]
    fn all_failures_surface_no_valid_configuration() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(4), Box::new(Exhaustive::new())).unwrap();
        while s.next_config().is_some() {
            s.report(Err(CostError::RunFailed("nope".into()))).unwrap();
        }
        let evals = s.status().evaluations();
        assert!(evals > 0);
        assert_eq!(
            s.finish().unwrap_err(),
            TuningError::NoValidConfiguration { evaluations: evals }
        );
    }

    #[test]
    fn abort_condition_limits_session() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(4096), Box::new(Exhaustive::new()))
                .unwrap()
                .abort_condition(abort::evaluations(5));
        let mut n = 0;
        while let Some(_cfg) = s.next_config() {
            s.report(Ok(1.0)).unwrap();
            n += 1;
        }
        assert_eq!(n, 5);
        assert!(s.is_done());
    }

    #[test]
    fn abort_budget_counts_in_flight_tickets() {
        // A budget of 5 with a window of 4 must hand out exactly 5 tickets,
        // not 5 + the window.
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(4096), Box::new(Exhaustive::new()))
                .unwrap()
                .abort_condition(abort::evaluations(5))
                .max_pending(4);
        let mut handed = Vec::new();
        loop {
            match s.next_ticket() {
                Handout::Next(t, _) => handed.push(t),
                Handout::Wait => {
                    let t = s.oldest_in_flight().unwrap();
                    s.report_ticket(t, Ok(1.0)).unwrap();
                }
                Handout::Done => break,
            }
        }
        // Drain the tail.
        while let Some(t) = s.oldest_in_flight() {
            s.report_ticket(t, Ok(1.0)).unwrap();
        }
        assert_eq!(handed.len(), 5);
        assert!(s.is_done());
        assert_eq!(s.status().evaluations(), 5);
    }

    #[test]
    fn circuit_breaker_trips_on_consecutive_failures() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(4096), Box::new(Exhaustive::new()))
                .unwrap()
                .circuit_breaker(3);
        // One success, then unbroken failures: the streak must reach 3.
        s.next_config().unwrap();
        s.report(Ok(1.0)).unwrap();
        let mut reported = 0;
        while s.next_config().is_some() {
            s.report(Err(CostError::Timeout {
                limit: std::time::Duration::from_secs(1),
            }))
            .unwrap();
            reported += 1;
        }
        assert_eq!(reported, 3, "breaker must stop the session at the limit");
        assert_eq!(s.circuit_broken(), Some(FailureKind::Timeout));
        assert_eq!(
            s.finish().unwrap_err(),
            TuningError::CircuitBroken {
                consecutive_failures: 3,
                last_failure: FailureKind::Timeout,
            }
        );
    }

    #[test]
    fn success_resets_the_breaker_streak() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new()))
                .unwrap()
                .circuit_breaker(3);
        for round in 0..10 {
            let Some(_cfg) = s.next_config() else {
                panic!("breaker must not trip on alternating outcomes")
            };
            if round % 2 == 0 {
                s.report(Err(CostError::Transient("flaky".into()))).unwrap();
            } else {
                s.report(Ok(round as f64)).unwrap();
            }
        }
        assert_eq!(s.circuit_broken(), None);
    }

    fn journal_path(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("atf-session-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join("run.ndjson")
    }

    /// Deterministic mixed-outcome measurement for journal tests.
    fn measure(cfg: &Config) -> Result<f64, CostError> {
        let wpt = cfg.get_u64("WPT");
        let ls = cfg.get_u64("LS");
        if (wpt + ls).is_multiple_of(5) {
            Err(CostError::Timeout {
                limit: std::time::Duration::from_secs(1),
            })
        } else {
            Ok((wpt as f64 - 8.0).abs() + (ls as f64 - 4.0).abs())
        }
    }

    #[test]
    fn journaled_run_resumes_to_identical_result() {
        let path = journal_path("resume");

        // Reference: one uninterrupted journaled run.
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new()))
                .unwrap()
                .journal_to(&path)
                .unwrap();
        while let Some(cfg) = s.next_config() {
            s.report(measure(&cfg)).unwrap();
        }
        let reference = s.finish().unwrap();

        // Truncate the journal to a prefix — a crash partway through.
        let loaded = LoadedJournal::load(&path).unwrap();
        let total = loaded.entries.len();
        let prefix = &loaded.entries[..total / 2];

        // Resume a fresh session from the prefix and drive it to the end.
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new())).unwrap();
        let replayed = s.resume_from(prefix).unwrap();
        assert_eq!(replayed as usize, total / 2);
        while let Some(cfg) = s.next_config() {
            s.report(measure(&cfg)).unwrap();
        }
        let resumed = s.finish().unwrap();

        assert_eq!(resumed.best_config, reference.best_config);
        assert_eq!(resumed.best_cost, reference.best_cost);
        assert_eq!(resumed.evaluations, reference.evaluations);
        assert_eq!(resumed.failed_evaluations, reference.failed_evaluations);
    }

    #[test]
    fn resume_from_journal_validates_and_appends() {
        let path = journal_path("validate");
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new()))
                .unwrap()
                .abort_condition(abort::evaluations(10))
                .journal_to(&path)
                .unwrap();
        for _ in 0..4 {
            let cfg = s.next_config().unwrap();
            s.report(measure(&cfg)).unwrap();
        }
        drop(s); // crash: session gone, journal survives

        // Wrong technique: header check must reject the journal.
        let mut wrong: TuningSession<f64> = TuningSession::new(
            saxpy_space(64),
            Box::new(crate::search::RandomSearch::with_seed(1)),
        )
        .unwrap();
        assert!(matches!(
            wrong.resume_from_journal(&path),
            Err(TuningError::Journal(_))
        ));

        // Matching session: replays 4 and appends the rest to the file.
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new()))
                .unwrap()
                .abort_condition(abort::evaluations(10));
        assert_eq!(s.resume_from_journal(&path).unwrap(), 4);
        while let Some(cfg) = s.next_config() {
            s.report(measure(&cfg)).unwrap();
        }
        assert_eq!(s.status().evaluations(), 10);
        drop(s);
        let loaded = LoadedJournal::load(&path).unwrap();
        assert_eq!(loaded.entries.len(), 10);
        assert_eq!(
            loaded
                .entries
                .iter()
                .map(|e| e.evaluation)
                .collect::<Vec<_>>(),
            (1..=10).collect::<Vec<_>>()
        );
        assert_eq!(
            loaded
                .entries
                .iter()
                .map(|e| e.ticket.unwrap())
                .collect::<Vec<_>>(),
            (1..=10).collect::<Vec<_>>(),
            "serial runs hand out tickets in evaluation order"
        );
    }

    #[test]
    fn multi_pending_journal_replays_out_of_order_arrivals() {
        let path = journal_path("ooo");
        let drive = |s: &mut TuningSession<f64>| {
            // Hand out in batches of 3 and report each batch newest-first,
            // so the journal's arrival order differs from ticket order.
            loop {
                let batch = s.next_config_batch(3);
                if batch.is_empty() {
                    break;
                }
                for (t, cfg) in batch.iter().rev() {
                    s.report_ticket(*t, measure(cfg)).unwrap();
                }
            }
        };
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new()))
                .unwrap()
                .max_pending(3)
                .abort_condition(abort::evaluations(12))
                .journal_to(&path)
                .unwrap();
        drive(&mut s);
        let reference = s.finish().unwrap();

        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new()))
                .unwrap()
                .abort_condition(abort::evaluations(12));
        let replayed = s.resume_from_journal(&path).unwrap();
        assert_eq!(replayed, 12);
        assert_eq!(s.window(), 3, "window adopted from the journal header");
        drive(&mut s);
        let resumed = s.finish().unwrap();
        assert_eq!(resumed.best_config, reference.best_config);
        assert_eq!(resumed.evaluations, reference.evaluations);
        assert_eq!(resumed.failed_evaluations, reference.failed_evaluations);
    }

    #[test]
    fn diverging_journal_is_rejected() {
        let path = journal_path("diverge");
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new()))
                .unwrap()
                .journal_to(&path)
                .unwrap();
        for _ in 0..3 {
            let cfg = s.next_config().unwrap();
            s.report(measure(&cfg)).unwrap();
        }
        drop(s);
        let mut loaded = LoadedJournal::load(&path).unwrap();
        // Corrupt the second entry's point: replay must detect divergence.
        loaded.entries[1].point = vec![9999, 9999];
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new())).unwrap();
        assert_eq!(
            s.resume_from(&loaded.entries).unwrap_err(),
            TuningError::JournalDiverged { evaluation: 2 }
        );
    }

    #[test]
    fn duration_budget_spans_resume() {
        // Regression: before elapsed offsets were journaled, a resumed
        // run's duration budget restarted from zero — kill at 50% and
        // resume, and the run would spend 150% of its wall-clock budget.
        let path = journal_path("duration-budget");
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new()))
                .unwrap()
                .abort_condition(abort::duration(Duration::from_secs(4)))
                .journal_to(&path)
                .unwrap();
        for half_seconds in 1..=4u64 {
            s.status
                .set_elapsed_for_test(Duration::from_millis(half_seconds * 500));
            let cfg = s.next_config().unwrap();
            s.report(measure(&cfg)).unwrap();
        }
        drop(s); // crash 2s into a 4s budget

        // Resume: the journal's cumulative clock is restored as an offset,
        // so the run continues 2s into its budget instead of starting over.
        let mut resumed: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new()))
                .unwrap()
                .abort_condition(abort::duration(Duration::from_secs(4)));
        assert_eq!(resumed.resume_from_journal(&path).unwrap(), 4);
        assert_eq!(resumed.status().elapsed_offset(), Duration::from_secs(2));
        assert!(resumed.status().elapsed() >= Duration::from_secs(2));
        assert!(
            matches!(resumed.next_ticket(), Handout::Next(..)),
            "2s of the 4s budget remain — the resumed run keeps exploring"
        );

        // A budget the original run had already exhausted ends the resumed
        // run before any fresh handout — but only AFTER the full replay:
        // every journaled evaluation is restored first.
        let mut spent: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new()))
                .unwrap()
                .abort_condition(abort::duration(Duration::from_secs(2)));
        assert_eq!(spent.resume_from_journal(&path).unwrap(), 4);
        assert_eq!(spent.status().evaluations(), 4);
        assert_eq!(spent.next_ticket(), Handout::Done, "budget already spent");
    }

    #[test]
    fn replay_reconstructs_improvement_timeline() {
        // Regression: replayed history entries used to be stamped with the
        // *replay* clock (microseconds after resume), so
        // `best_scalar_at_time` answered differently before and after a
        // kill + resume.
        let path = journal_path("timeline");
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new()))
                .unwrap()
                .abort_condition(abort::evaluations(6))
                .journal_to(&path)
                .unwrap();
        for i in 1..=6u64 {
            s.status.set_elapsed_for_test(Duration::from_secs(i));
            let cfg = s.next_config().unwrap();
            s.report(measure(&cfg)).unwrap();
        }
        let timeline = |status: &TuningStatus| -> Vec<(u64, u64, f64)> {
            status
                .improvements()
                .iter()
                .map(|i| (i.elapsed.as_millis() as u64, i.evaluation, i.scalar_cost))
                .collect()
        };
        let reference = timeline(s.status());
        let reference_best_at_3s = s.status().best_scalar_at_time(Duration::from_secs(3));
        assert!(reference.len() >= 2, "test needs several improvements");
        drop(s);

        let mut resumed: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new()))
                .unwrap()
                .abort_condition(abort::evaluations(6));
        assert_eq!(resumed.resume_from_journal(&path).unwrap(), 6);
        assert_eq!(
            timeline(resumed.status()),
            reference,
            "replay reconstructs the original improvement stamps"
        );
        assert_eq!(
            resumed.status().best_scalar_at_time(Duration::from_secs(3)),
            reference_best_at_3s
        );
    }

    #[test]
    fn history_recorded_when_enabled() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(8), Box::new(Exhaustive::new()))
                .unwrap()
                .record_history(true);
        while let Some(cfg) = s.next_config() {
            s.report(Ok(cfg.get_u64("WPT") as f64)).unwrap();
        }
        let r = s.finish().unwrap();
        assert_eq!(r.history.len() as u64, r.evaluations);
        assert_eq!(r.history[0].evaluation, 1);
    }
}
