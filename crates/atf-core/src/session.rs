//! A resumable tuning session: the exploration loop of [`crate::tuner`]
//! turned inside out, so the *cost measurement* can happen anywhere — in
//! another process, on another machine, or interleaved with other sessions.
//!
//! The paper's exploration loop (Section IV) is a pull/push cycle:
//! `get_next_config` hands a configuration to the measuring side,
//! `report_cost` feeds the measured cost back. [`TuningSession`] is exactly
//! that cycle as a state machine:
//!
//! ```text
//! loop {
//!     let Some(config) = session.next_config() else { break };
//!     let cost = measure(config);            // anywhere, any time later
//!     session.report(cost)?;
//! }
//! let result = session.finish()?;
//! ```
//!
//! [`Tuner::tune`](crate::tuner::Tuner::tune) is a thin in-process loop over
//! a session; driving a session step by step produces the identical
//! [`TuningResult`]. `next_config` is idempotent while a measurement is
//! outstanding: asking again returns the same pending configuration, so a
//! disconnected client can re-request its work item without corrupting the
//! search.

use crate::abort::{self, Abort, AbortCondition};
use crate::config::Config;
use crate::cost::{CostError, CostValue, FailureKind, JournalCost};
use crate::journal::{JournalEntry, JournalHeader, JournalWriter, LoadedJournal, JOURNAL_VERSION};
use crate::policy::EvalPolicy;
use crate::search::{SearchTechnique, SpaceDims, PENALTY_COST};
use crate::space::SearchSpace;
use crate::status::TuningStatus;
use crate::tuner::{EvalRecord, TuningError, TuningResult};
use std::path::Path;

/// An attached run journal: the writer plus the cost encoder captured when
/// the journal was attached (which is the only place the `C: JournalCost`
/// bound is available).
struct JournalState<C> {
    writer: JournalWriter,
    encode: fn(&C) -> Vec<f64>,
}

/// The resumable exploration state machine. Generic over the cost value
/// type `C` (plain `f64` for out-of-process measurement, tuples or
/// [`crate::process::LexCosts`] for multi-objective in-process tuning).
pub struct TuningSession<C: CostValue = f64> {
    space: SearchSpace,
    technique: Box<dyn SearchTechnique>,
    abort: Abort,
    status: TuningStatus,
    best: Option<(Config, C)>,
    best_scalar: f64,
    record_history: bool,
    history: Vec<EvalRecord>,
    /// The configuration handed out by `next_config` whose cost has not
    /// been reported yet (point coordinates + materialized config).
    pending: Option<(crate::search::Point, Config)>,
    /// Set once the technique is exhausted or the abort condition fired;
    /// `next_config` returns `None` from then on.
    done: bool,
    /// Circuit breaker: abort after this many consecutive failures.
    max_consecutive_failures: Option<u32>,
    /// The failure kind that tripped the circuit breaker, once tripped.
    broken: Option<FailureKind>,
    /// Write-ahead journal of evaluation outcomes, when attached.
    journal: Option<JournalState<C>>,
    /// Suppresses journal writes while replaying a journal into the
    /// session (the entries are already on disk).
    replaying: bool,
}

impl<C: CostValue> TuningSession<C> {
    /// Opens a session over `space` driven by `technique`, with the paper's
    /// default abort condition `evaluations(S)`.
    ///
    /// Fails with [`TuningError::EmptySearchSpace`] when the space holds no
    /// valid configuration.
    pub fn new(
        space: SearchSpace,
        mut technique: Box<dyn SearchTechnique>,
    ) -> Result<Self, TuningError> {
        if space.is_empty() {
            return Err(TuningError::EmptySearchSpace);
        }
        technique.initialize(SpaceDims::new(space.dims()));
        let default_abort = abort::evaluations(u64::try_from(space.len()).unwrap_or(u64::MAX));
        let status = TuningStatus::new(space.len());
        Ok(TuningSession {
            space,
            technique,
            abort: default_abort,
            status,
            best: None,
            best_scalar: f64::INFINITY,
            record_history: false,
            history: Vec::new(),
            pending: None,
            done: false,
            max_consecutive_failures: None,
            broken: None,
            journal: None,
            replaying: false,
        })
    }

    /// Replaces the abort condition (builder-style, before driving).
    pub fn abort_condition(mut self, a: Abort) -> Self {
        self.abort = a;
        self
    }

    /// Enables per-evaluation history recording (builder-style).
    pub fn record_history(mut self, on: bool) -> Self {
        self.record_history = on;
        self
    }

    /// Arms the circuit breaker (builder-style): after `consecutive_failures`
    /// failed evaluations in a row the session stops handing out
    /// configurations and [`finish`](Self::finish) returns
    /// [`TuningError::CircuitBroken`].
    pub fn circuit_breaker(mut self, consecutive_failures: u32) -> Self {
        self.max_consecutive_failures = Some(consecutive_failures.max(1));
        self
    }

    /// Applies the session-relevant parts of an [`EvalPolicy`]
    /// (builder-style): currently the circuit-breaker threshold. The
    /// timeout and retries of the policy act on the cost-function side
    /// ([`crate::process::ProcessCostFunction`] and
    /// [`crate::policy::RetryCostFunction`]).
    pub fn eval_policy(mut self, policy: &EvalPolicy) -> Self {
        self.max_consecutive_failures = policy.max_consecutive_failures;
        self
    }

    /// The next configuration to measure, or `None` when exploration is
    /// over (abort condition fired or the technique is exhausted).
    ///
    /// Idempotent while a measurement is outstanding: calling again before
    /// [`report`](Self::report) returns the same configuration.
    pub fn next_config(&mut self) -> Option<Config> {
        if let Some((_, config)) = &self.pending {
            return Some(config.clone());
        }
        if self.done {
            return None;
        }
        if self.abort.should_stop(&self.status) {
            self.done = true;
            return None;
        }
        let Some(point) = self.technique.get_next_point() else {
            self.done = true; // technique exhausted (e.g. exhaustive search done)
            return None;
        };
        let config = self.space.get_by_coords(&point);
        self.pending = Some((point, config.clone()));
        Some(config)
    }

    /// Reports the measured cost (or measurement failure) of the pending
    /// configuration.
    ///
    /// Fails with [`TuningError::NoPendingConfiguration`] when no
    /// configuration is awaiting a report.
    pub fn report(&mut self, outcome: Result<C, CostError>) -> Result<(), TuningError> {
        let (point, config) = self
            .pending
            .take()
            .ok_or(TuningError::NoPendingConfiguration)?;
        let valid = outcome.is_ok();
        let failure = outcome.as_ref().err().map(|e| e.kind());
        // Write-ahead: the outcome reaches the journal before the session
        // state advances, so a crash never loses an applied evaluation.
        if !self.replaying {
            if let Some(journal) = &mut self.journal {
                let entry = JournalEntry {
                    evaluation: self.status.evaluations() + 1,
                    point: point.clone(),
                    costs: outcome.as_ref().ok().map(|c| (journal.encode)(c)),
                    failure: failure.map(|k| k.label().to_string()),
                };
                journal
                    .writer
                    .append(&entry)
                    .map_err(|e| TuningError::Journal(e.to_string()))?;
            }
        }
        self.status.record_evaluation(valid);
        if let Some(kind) = failure {
            self.status.record_failure_kind(kind);
        }
        let scalar = match &outcome {
            Ok(c) => c.as_scalar(),
            Err(_) => PENALTY_COST,
        };
        if self.record_history {
            self.history.push(EvalRecord {
                evaluation: self.status.evaluations(),
                point,
                scalar_cost: scalar,
                valid,
                failure,
            });
        }
        if let Ok(c) = outcome {
            let improves = match &self.best {
                None => true,
                // Full multi-objective comparison for best-so-far.
                Some((_, bc)) => c.partial_cmp(bc).is_some_and(|o| o.is_lt()),
            };
            if improves {
                self.best = Some((config, c));
                if scalar < self.best_scalar {
                    self.best_scalar = scalar;
                    self.status.record_improvement(scalar);
                }
            }
        }
        self.technique.report_cost(scalar);
        if let (Some(limit), Some(kind)) = (self.max_consecutive_failures, failure) {
            if self.status.consecutive_failures() >= u64::from(limit.max(1)) {
                self.done = true;
                self.broken = Some(kind);
            }
        }
        Ok(())
    }

    /// Convenience for scalar reporting: `Some(cost)` for a successful
    /// measurement, `None` for a failed one.
    pub fn report_cost(&mut self, cost: Option<C>) -> Result<(), TuningError> {
        self.report(cost.ok_or(CostError::RunFailed("measurement failed".into())))
    }

    /// `true` once exploration is over ([`next_config`](Self::next_config)
    /// will return `None` and nothing is pending).
    pub fn is_done(&self) -> bool {
        self.done && self.pending.is_none()
    }

    /// `true` while a handed-out configuration awaits its cost report.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// The configuration currently awaiting a report, if any.
    pub fn pending_config(&self) -> Option<&Config> {
        self.pending.as_ref().map(|(_, c)| c)
    }

    /// Live progress bookkeeping (evaluations, improvements, elapsed).
    pub fn status(&self) -> &TuningStatus {
        &self.status
    }

    /// The search space being explored.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Best configuration found so far, with its cost.
    pub fn best(&self) -> Option<(&Config, &C)> {
        self.best.as_ref().map(|(cfg, c)| (cfg, c))
    }

    /// Best scalar cost found so far (`None` before the first valid
    /// measurement).
    pub fn best_scalar_cost(&self) -> Option<f64> {
        self.best.as_ref().map(|_| self.best_scalar)
    }

    /// The failure kind that tripped the circuit breaker, once tripped.
    pub fn circuit_broken(&self) -> Option<FailureKind> {
        self.broken
    }

    /// The header a journal of this session carries.
    pub fn journal_header(&self) -> JournalHeader {
        JournalHeader {
            version: JOURNAL_VERSION,
            technique: self.technique.name().to_string(),
            space_size: self.space.len().to_string(),
        }
    }

    /// Attaches a fresh write-ahead journal at `path` (builder-style):
    /// every reported outcome is appended before the session state
    /// advances, so the run can be resumed after a crash with
    /// [`resume_from_journal`](Self::resume_from_journal).
    pub fn journal_to(mut self, path: impl AsRef<Path>) -> Result<Self, TuningError>
    where
        C: JournalCost,
    {
        let header = self.journal_header();
        let writer = JournalWriter::create(path.as_ref(), &header)
            .map_err(|e| TuningError::Journal(e.to_string()))?;
        self.journal = Some(JournalState {
            writer,
            encode: C::to_journal,
        });
        Ok(self)
    }

    /// Replays journal `entries` into this freshly opened session: each
    /// entry's point must match what the technique hands out (same spec,
    /// technique, and seed), and its recorded outcome is reported back.
    /// Returns the number of evaluations replayed.
    ///
    /// Nothing is written to the attached journal during replay.
    pub fn resume_from(&mut self, entries: &[JournalEntry]) -> Result<u64, TuningError>
    where
        C: JournalCost,
    {
        self.replaying = true;
        let result = self.replay_entries(entries);
        self.replaying = false;
        result?;
        Ok(self.status.evaluations())
    }

    fn replay_entries(&mut self, entries: &[JournalEntry]) -> Result<(), TuningError>
    where
        C: JournalCost,
    {
        for entry in entries {
            if self.next_config().is_none() {
                // Abort condition or circuit breaker reproduced mid-replay:
                // the journal's tail was written past the stopping point of
                // an equivalent run, which cannot happen for our own
                // journals — stop where the session stops.
                break;
            }
            let matches = self
                .pending
                .as_ref()
                .is_some_and(|(point, _)| *point == entry.point);
            if !matches {
                return Err(TuningError::JournalDiverged {
                    evaluation: entry.evaluation,
                });
            }
            let outcome = match (&entry.costs, entry.failure_kind()) {
                (Some(values), None) => Ok(C::from_journal(values).ok_or_else(|| {
                    TuningError::Journal(format!(
                        "undecodable cost vector at evaluation {}",
                        entry.evaluation
                    ))
                })?),
                (None, Some(kind)) => Err(CostError::from_kind(kind)),
                _ => {
                    return Err(TuningError::Journal(format!(
                        "entry {} records neither costs nor a known failure kind",
                        entry.evaluation
                    )))
                }
            };
            self.report(outcome)?;
        }
        Ok(())
    }

    /// Resumes this freshly opened session from the journal at `path`:
    /// validates the header against the session's technique and space,
    /// replays every intact entry, and re-attaches a writer appending
    /// subsequent outcomes to the same file. Returns the number of
    /// evaluations replayed.
    pub fn resume_from_journal(&mut self, path: impl AsRef<Path>) -> Result<u64, TuningError>
    where
        C: JournalCost,
    {
        let loaded =
            LoadedJournal::load(path.as_ref()).map_err(|e| TuningError::Journal(e.to_string()))?;
        loaded
            .check_matches(self.technique.name(), self.space.len())
            .map_err(|e| TuningError::Journal(e.to_string()))?;
        let replayed = self.resume_from(&loaded.entries)?;
        let writer = JournalWriter::append_to(path.as_ref())
            .map_err(|e| TuningError::Journal(e.to_string()))?;
        self.journal = Some(JournalState {
            writer,
            encode: C::to_journal,
        });
        Ok(replayed)
    }

    /// Finishes the session, consuming it.
    ///
    /// Fails with [`TuningError::NoValidConfiguration`] when nothing was
    /// measured successfully.
    pub fn finish(self) -> Result<TuningResult<C>, TuningError> {
        self.finish_parts().0
    }

    /// Like [`finish`](Self::finish), but also hands back the technique and
    /// abort condition so a reusable driver (the [`crate::tuner::Tuner`])
    /// can restore them for the next run.
    #[allow(clippy::type_complexity)]
    pub fn finish_parts(
        mut self,
    ) -> (
        Result<TuningResult<C>, TuningError>,
        Box<dyn SearchTechnique>,
        Abort,
    ) {
        self.technique.finalize();
        if let Some(journal) = &mut self.journal {
            let _ = journal.writer.sync();
        }
        if let Some(last_failure) = self.broken {
            return (
                Err(TuningError::CircuitBroken {
                    consecutive_failures: self.status.consecutive_failures(),
                    last_failure,
                }),
                self.technique,
                self.abort,
            );
        }
        let result = match self.best {
            Some((best_config, best_cost)) => Ok(TuningResult {
                best_config,
                best_cost,
                evaluations: self.status.evaluations(),
                valid_evaluations: self.status.valid_evaluations(),
                failed_evaluations: self.status.failed_evaluations(),
                space_size: self.status.space_size(),
                elapsed: self.status.elapsed(),
                improvements: self.status.improvements().to_vec(),
                history: self.history,
            }),
            None => Err(TuningError::NoValidConfiguration {
                evaluations: self.status.evaluations(),
            }),
        };
        (result, self.technique, self.abort)
    }
}

impl<C: CostValue> std::fmt::Debug for TuningSession<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TuningSession")
            .field("space_size", &self.space.len())
            .field("technique", &self.technique.name())
            .field("evaluations", &self.status.evaluations())
            .field("best_scalar", &self.best_scalar)
            .field("pending", &self.pending.is_some())
            .field("done", &self.done)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::divides;
    use crate::expr::{cst, param};
    use crate::param::{tp_c, ParamGroup};
    use crate::range::Range;
    use crate::search::Exhaustive;

    fn saxpy_space(n: u64) -> SearchSpace {
        SearchSpace::generate(&[ParamGroup::new(vec![
            tp_c("WPT", Range::interval(1, n), divides(cst(n))),
            tp_c("LS", Range::interval(1, n), divides(cst(n) / param("WPT"))),
        ])])
    }

    #[test]
    fn step_driven_session_finds_optimum() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new())).unwrap();
        while let Some(config) = s.next_config() {
            let wpt = config.get_u64("WPT") as f64;
            let ls = config.get_u64("LS") as f64;
            s.report(Ok((wpt - 8.0).powi(2) + (ls - 4.0).powi(2)))
                .unwrap();
        }
        let r = s.finish().unwrap();
        assert_eq!(r.best_config.get_u64("WPT"), 8);
        assert_eq!(r.best_config.get_u64("LS"), 4);
        assert_eq!(r.evaluations as u128, r.space_size);
    }

    #[test]
    fn next_config_is_idempotent_while_pending() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(8), Box::new(Exhaustive::new())).unwrap();
        let a = s.next_config().unwrap();
        let b = s.next_config().unwrap();
        assert_eq!(a, b);
        assert!(s.has_pending());
        s.report(Ok(1.0)).unwrap();
        assert!(!s.has_pending());
        let c = s.next_config().unwrap();
        assert_ne!(a, c, "after a report, the next configuration advances");
    }

    #[test]
    fn report_without_pending_errors() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(8), Box::new(Exhaustive::new())).unwrap();
        assert_eq!(
            s.report(Ok(1.0)).unwrap_err(),
            TuningError::NoPendingConfiguration
        );
    }

    #[test]
    fn empty_space_rejected_at_open() {
        let space = SearchSpace::generate(&[]);
        let err = TuningSession::<f64>::new(space, Box::new(Exhaustive::new())).unwrap_err();
        assert_eq!(err, TuningError::EmptySearchSpace);
    }

    #[test]
    fn all_failures_surface_no_valid_configuration() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(4), Box::new(Exhaustive::new())).unwrap();
        while s.next_config().is_some() {
            s.report(Err(CostError::RunFailed("nope".into()))).unwrap();
        }
        let evals = s.status().evaluations();
        assert!(evals > 0);
        assert_eq!(
            s.finish().unwrap_err(),
            TuningError::NoValidConfiguration { evaluations: evals }
        );
    }

    #[test]
    fn abort_condition_limits_session() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(4096), Box::new(Exhaustive::new()))
                .unwrap()
                .abort_condition(abort::evaluations(5));
        let mut n = 0;
        while let Some(_cfg) = s.next_config() {
            s.report(Ok(1.0)).unwrap();
            n += 1;
        }
        assert_eq!(n, 5);
        assert!(s.is_done());
    }

    #[test]
    fn circuit_breaker_trips_on_consecutive_failures() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(4096), Box::new(Exhaustive::new()))
                .unwrap()
                .circuit_breaker(3);
        // One success, then unbroken failures: the streak must reach 3.
        s.next_config().unwrap();
        s.report(Ok(1.0)).unwrap();
        let mut reported = 0;
        while s.next_config().is_some() {
            s.report(Err(CostError::Timeout {
                limit: std::time::Duration::from_secs(1),
            }))
            .unwrap();
            reported += 1;
        }
        assert_eq!(reported, 3, "breaker must stop the session at the limit");
        assert_eq!(s.circuit_broken(), Some(FailureKind::Timeout));
        assert_eq!(
            s.finish().unwrap_err(),
            TuningError::CircuitBroken {
                consecutive_failures: 3,
                last_failure: FailureKind::Timeout,
            }
        );
    }

    #[test]
    fn success_resets_the_breaker_streak() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new()))
                .unwrap()
                .circuit_breaker(3);
        for round in 0..10 {
            let Some(_cfg) = s.next_config() else {
                panic!("breaker must not trip on alternating outcomes")
            };
            if round % 2 == 0 {
                s.report(Err(CostError::Transient("flaky".into()))).unwrap();
            } else {
                s.report(Ok(round as f64)).unwrap();
            }
        }
        assert_eq!(s.circuit_broken(), None);
    }

    fn journal_path(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("atf-session-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join("run.ndjson")
    }

    /// Deterministic mixed-outcome measurement for journal tests.
    fn measure(cfg: &Config) -> Result<f64, CostError> {
        let wpt = cfg.get_u64("WPT");
        let ls = cfg.get_u64("LS");
        if (wpt + ls).is_multiple_of(5) {
            Err(CostError::Timeout {
                limit: std::time::Duration::from_secs(1),
            })
        } else {
            Ok((wpt as f64 - 8.0).abs() + (ls as f64 - 4.0).abs())
        }
    }

    #[test]
    fn journaled_run_resumes_to_identical_result() {
        let path = journal_path("resume");

        // Reference: one uninterrupted journaled run.
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new()))
                .unwrap()
                .journal_to(&path)
                .unwrap();
        while let Some(cfg) = s.next_config() {
            s.report(measure(&cfg)).unwrap();
        }
        let reference = s.finish().unwrap();

        // Truncate the journal to a prefix — a crash partway through.
        let loaded = LoadedJournal::load(&path).unwrap();
        let total = loaded.entries.len();
        let prefix = &loaded.entries[..total / 2];

        // Resume a fresh session from the prefix and drive it to the end.
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new())).unwrap();
        let replayed = s.resume_from(prefix).unwrap();
        assert_eq!(replayed as usize, total / 2);
        while let Some(cfg) = s.next_config() {
            s.report(measure(&cfg)).unwrap();
        }
        let resumed = s.finish().unwrap();

        assert_eq!(resumed.best_config, reference.best_config);
        assert_eq!(resumed.best_cost, reference.best_cost);
        assert_eq!(resumed.evaluations, reference.evaluations);
        assert_eq!(resumed.failed_evaluations, reference.failed_evaluations);
    }

    #[test]
    fn resume_from_journal_validates_and_appends() {
        let path = journal_path("validate");
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new()))
                .unwrap()
                .abort_condition(abort::evaluations(10))
                .journal_to(&path)
                .unwrap();
        for _ in 0..4 {
            let cfg = s.next_config().unwrap();
            s.report(measure(&cfg)).unwrap();
        }
        drop(s); // crash: session gone, journal survives

        // Wrong technique: header check must reject the journal.
        let mut wrong: TuningSession<f64> = TuningSession::new(
            saxpy_space(64),
            Box::new(crate::search::RandomSearch::with_seed(1)),
        )
        .unwrap();
        assert!(matches!(
            wrong.resume_from_journal(&path),
            Err(TuningError::Journal(_))
        ));

        // Matching session: replays 4 and appends the rest to the file.
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new()))
                .unwrap()
                .abort_condition(abort::evaluations(10));
        assert_eq!(s.resume_from_journal(&path).unwrap(), 4);
        while let Some(cfg) = s.next_config() {
            s.report(measure(&cfg)).unwrap();
        }
        assert_eq!(s.status().evaluations(), 10);
        drop(s);
        let loaded = LoadedJournal::load(&path).unwrap();
        assert_eq!(loaded.entries.len(), 10);
        assert_eq!(
            loaded
                .entries
                .iter()
                .map(|e| e.evaluation)
                .collect::<Vec<_>>(),
            (1..=10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn diverging_journal_is_rejected() {
        let path = journal_path("diverge");
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new()))
                .unwrap()
                .journal_to(&path)
                .unwrap();
        for _ in 0..3 {
            let cfg = s.next_config().unwrap();
            s.report(measure(&cfg)).unwrap();
        }
        drop(s);
        let mut loaded = LoadedJournal::load(&path).unwrap();
        // Corrupt the second entry's point: replay must detect divergence.
        loaded.entries[1].point = vec![9999, 9999];
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new())).unwrap();
        assert_eq!(
            s.resume_from(&loaded.entries).unwrap_err(),
            TuningError::JournalDiverged { evaluation: 2 }
        );
    }

    #[test]
    fn history_recorded_when_enabled() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(8), Box::new(Exhaustive::new()))
                .unwrap()
                .record_history(true);
        while let Some(cfg) = s.next_config() {
            s.report(Ok(cfg.get_u64("WPT") as f64)).unwrap();
        }
        let r = s.finish().unwrap();
        assert_eq!(r.history.len() as u64, r.evaluations);
        assert_eq!(r.history[0].evaluation, 1);
    }
}
