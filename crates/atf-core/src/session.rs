//! A resumable tuning session: the exploration loop of [`crate::tuner`]
//! turned inside out, so the *cost measurement* can happen anywhere — in
//! another process, on another machine, or interleaved with other sessions.
//!
//! The paper's exploration loop (Section IV) is a pull/push cycle:
//! `get_next_config` hands a configuration to the measuring side,
//! `report_cost` feeds the measured cost back. [`TuningSession`] is exactly
//! that cycle as a state machine:
//!
//! ```text
//! loop {
//!     let Some(config) = session.next_config() else { break };
//!     let cost = measure(config);            // anywhere, any time later
//!     session.report(cost)?;
//! }
//! let result = session.finish()?;
//! ```
//!
//! [`Tuner::tune`](crate::tuner::Tuner::tune) is a thin in-process loop over
//! a session; driving a session step by step produces the identical
//! [`TuningResult`]. `next_config` is idempotent while a measurement is
//! outstanding: asking again returns the same pending configuration, so a
//! disconnected client can re-request its work item without corrupting the
//! search.

use crate::abort::{self, Abort, AbortCondition};
use crate::config::Config;
use crate::cost::{CostError, CostValue};
use crate::search::{SearchTechnique, SpaceDims, PENALTY_COST};
use crate::space::SearchSpace;
use crate::status::TuningStatus;
use crate::tuner::{EvalRecord, TuningError, TuningResult};

/// The resumable exploration state machine. Generic over the cost value
/// type `C` (plain `f64` for out-of-process measurement, tuples or
/// [`crate::process::LexCosts`] for multi-objective in-process tuning).
pub struct TuningSession<C: CostValue = f64> {
    space: SearchSpace,
    technique: Box<dyn SearchTechnique>,
    abort: Abort,
    status: TuningStatus,
    best: Option<(Config, C)>,
    best_scalar: f64,
    record_history: bool,
    history: Vec<EvalRecord>,
    /// The configuration handed out by `next_config` whose cost has not
    /// been reported yet (point coordinates + materialized config).
    pending: Option<(crate::search::Point, Config)>,
    /// Set once the technique is exhausted or the abort condition fired;
    /// `next_config` returns `None` from then on.
    done: bool,
}

impl<C: CostValue> TuningSession<C> {
    /// Opens a session over `space` driven by `technique`, with the paper's
    /// default abort condition `evaluations(S)`.
    ///
    /// Fails with [`TuningError::EmptySearchSpace`] when the space holds no
    /// valid configuration.
    pub fn new(
        space: SearchSpace,
        mut technique: Box<dyn SearchTechnique>,
    ) -> Result<Self, TuningError> {
        if space.is_empty() {
            return Err(TuningError::EmptySearchSpace);
        }
        technique.initialize(SpaceDims::new(space.dims()));
        let default_abort = abort::evaluations(u64::try_from(space.len()).unwrap_or(u64::MAX));
        let status = TuningStatus::new(space.len());
        Ok(TuningSession {
            space,
            technique,
            abort: default_abort,
            status,
            best: None,
            best_scalar: f64::INFINITY,
            record_history: false,
            history: Vec::new(),
            pending: None,
            done: false,
        })
    }

    /// Replaces the abort condition (builder-style, before driving).
    pub fn abort_condition(mut self, a: Abort) -> Self {
        self.abort = a;
        self
    }

    /// Enables per-evaluation history recording (builder-style).
    pub fn record_history(mut self, on: bool) -> Self {
        self.record_history = on;
        self
    }

    /// The next configuration to measure, or `None` when exploration is
    /// over (abort condition fired or the technique is exhausted).
    ///
    /// Idempotent while a measurement is outstanding: calling again before
    /// [`report`](Self::report) returns the same configuration.
    pub fn next_config(&mut self) -> Option<Config> {
        if let Some((_, config)) = &self.pending {
            return Some(config.clone());
        }
        if self.done {
            return None;
        }
        if self.abort.should_stop(&self.status) {
            self.done = true;
            return None;
        }
        let Some(point) = self.technique.get_next_point() else {
            self.done = true; // technique exhausted (e.g. exhaustive search done)
            return None;
        };
        let config = self.space.get_by_coords(&point);
        self.pending = Some((point, config.clone()));
        Some(config)
    }

    /// Reports the measured cost (or measurement failure) of the pending
    /// configuration.
    ///
    /// Fails with [`TuningError::NoPendingConfiguration`] when no
    /// configuration is awaiting a report.
    pub fn report(&mut self, outcome: Result<C, CostError>) -> Result<(), TuningError> {
        let (point, config) = self
            .pending
            .take()
            .ok_or(TuningError::NoPendingConfiguration)?;
        let valid = outcome.is_ok();
        self.status.record_evaluation(valid);
        let scalar = match &outcome {
            Ok(c) => c.as_scalar(),
            Err(_) => PENALTY_COST,
        };
        if self.record_history {
            self.history.push(EvalRecord {
                evaluation: self.status.evaluations(),
                point,
                scalar_cost: scalar,
                valid,
            });
        }
        if let Ok(c) = outcome {
            let improves = match &self.best {
                None => true,
                // Full multi-objective comparison for best-so-far.
                Some((_, bc)) => c.partial_cmp(bc).is_some_and(|o| o.is_lt()),
            };
            if improves {
                self.best = Some((config, c));
                if scalar < self.best_scalar {
                    self.best_scalar = scalar;
                    self.status.record_improvement(scalar);
                }
            }
        }
        self.technique.report_cost(scalar);
        Ok(())
    }

    /// Convenience for scalar reporting: `Some(cost)` for a successful
    /// measurement, `None` for a failed one.
    pub fn report_cost(&mut self, cost: Option<C>) -> Result<(), TuningError> {
        self.report(cost.ok_or(CostError::RunFailed("measurement failed".into())))
    }

    /// `true` once exploration is over ([`next_config`](Self::next_config)
    /// will return `None` and nothing is pending).
    pub fn is_done(&self) -> bool {
        self.done && self.pending.is_none()
    }

    /// `true` while a handed-out configuration awaits its cost report.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// The configuration currently awaiting a report, if any.
    pub fn pending_config(&self) -> Option<&Config> {
        self.pending.as_ref().map(|(_, c)| c)
    }

    /// Live progress bookkeeping (evaluations, improvements, elapsed).
    pub fn status(&self) -> &TuningStatus {
        &self.status
    }

    /// The search space being explored.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Best configuration found so far, with its cost.
    pub fn best(&self) -> Option<(&Config, &C)> {
        self.best.as_ref().map(|(cfg, c)| (cfg, c))
    }

    /// Best scalar cost found so far (`None` before the first valid
    /// measurement).
    pub fn best_scalar_cost(&self) -> Option<f64> {
        self.best.as_ref().map(|_| self.best_scalar)
    }

    /// Finishes the session, consuming it.
    ///
    /// Fails with [`TuningError::NoValidConfiguration`] when nothing was
    /// measured successfully.
    pub fn finish(self) -> Result<TuningResult<C>, TuningError> {
        self.finish_parts().0
    }

    /// Like [`finish`](Self::finish), but also hands back the technique and
    /// abort condition so a reusable driver (the [`crate::tuner::Tuner`])
    /// can restore them for the next run.
    #[allow(clippy::type_complexity)]
    pub fn finish_parts(
        mut self,
    ) -> (
        Result<TuningResult<C>, TuningError>,
        Box<dyn SearchTechnique>,
        Abort,
    ) {
        self.technique.finalize();
        let result = match self.best {
            Some((best_config, best_cost)) => Ok(TuningResult {
                best_config,
                best_cost,
                evaluations: self.status.evaluations(),
                valid_evaluations: self.status.valid_evaluations(),
                failed_evaluations: self.status.failed_evaluations(),
                space_size: self.status.space_size(),
                elapsed: self.status.elapsed(),
                improvements: self.status.improvements().to_vec(),
                history: self.history,
            }),
            None => Err(TuningError::NoValidConfiguration {
                evaluations: self.status.evaluations(),
            }),
        };
        (result, self.technique, self.abort)
    }
}

impl<C: CostValue> std::fmt::Debug for TuningSession<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TuningSession")
            .field("space_size", &self.space.len())
            .field("technique", &self.technique.name())
            .field("evaluations", &self.status.evaluations())
            .field("best_scalar", &self.best_scalar)
            .field("pending", &self.pending.is_some())
            .field("done", &self.done)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::divides;
    use crate::expr::{cst, param};
    use crate::param::{tp_c, ParamGroup};
    use crate::range::Range;
    use crate::search::Exhaustive;

    fn saxpy_space(n: u64) -> SearchSpace {
        SearchSpace::generate(&[ParamGroup::new(vec![
            tp_c("WPT", Range::interval(1, n), divides(cst(n))),
            tp_c("LS", Range::interval(1, n), divides(cst(n) / param("WPT"))),
        ])])
    }

    #[test]
    fn step_driven_session_finds_optimum() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(64), Box::new(Exhaustive::new())).unwrap();
        while let Some(config) = s.next_config() {
            let wpt = config.get_u64("WPT") as f64;
            let ls = config.get_u64("LS") as f64;
            s.report(Ok((wpt - 8.0).powi(2) + (ls - 4.0).powi(2)))
                .unwrap();
        }
        let r = s.finish().unwrap();
        assert_eq!(r.best_config.get_u64("WPT"), 8);
        assert_eq!(r.best_config.get_u64("LS"), 4);
        assert_eq!(r.evaluations as u128, r.space_size);
    }

    #[test]
    fn next_config_is_idempotent_while_pending() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(8), Box::new(Exhaustive::new())).unwrap();
        let a = s.next_config().unwrap();
        let b = s.next_config().unwrap();
        assert_eq!(a, b);
        assert!(s.has_pending());
        s.report(Ok(1.0)).unwrap();
        assert!(!s.has_pending());
        let c = s.next_config().unwrap();
        assert_ne!(a, c, "after a report, the next configuration advances");
    }

    #[test]
    fn report_without_pending_errors() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(8), Box::new(Exhaustive::new())).unwrap();
        assert_eq!(
            s.report(Ok(1.0)).unwrap_err(),
            TuningError::NoPendingConfiguration
        );
    }

    #[test]
    fn empty_space_rejected_at_open() {
        let space = SearchSpace::generate(&[]);
        let err = TuningSession::<f64>::new(space, Box::new(Exhaustive::new())).unwrap_err();
        assert_eq!(err, TuningError::EmptySearchSpace);
    }

    #[test]
    fn all_failures_surface_no_valid_configuration() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(4), Box::new(Exhaustive::new())).unwrap();
        while s.next_config().is_some() {
            s.report(Err(CostError::RunFailed("nope".into()))).unwrap();
        }
        let evals = s.status().evaluations();
        assert!(evals > 0);
        assert_eq!(
            s.finish().unwrap_err(),
            TuningError::NoValidConfiguration { evaluations: evals }
        );
    }

    #[test]
    fn abort_condition_limits_session() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(4096), Box::new(Exhaustive::new()))
                .unwrap()
                .abort_condition(abort::evaluations(5));
        let mut n = 0;
        while let Some(_cfg) = s.next_config() {
            s.report(Ok(1.0)).unwrap();
            n += 1;
        }
        assert_eq!(n, 5);
        assert!(s.is_done());
    }

    #[test]
    fn history_recorded_when_enabled() {
        let mut s: TuningSession<f64> =
            TuningSession::new(saxpy_space(8), Box::new(Exhaustive::new()))
                .unwrap()
                .record_history(true);
        while let Some(cfg) = s.next_config() {
            s.report(Ok(cfg.get_u64("WPT") as f64)).unwrap();
        }
        let r = s.finish().unwrap();
        assert_eq!(r.history.len() as u64, r.evaluations);
        assert_eq!(r.history[0].evaluation, 1);
    }
}
