//! Abort conditions controlling when the exploration process stops.
//!
//! The paper's six conditions (Section II, Step 3):
//! 1. `duration<D>(t)` — stop after a time interval,
//! 2. `evaluations(n)` — stop after n tested configurations,
//! 3. `fraction(f)` — stop after `f * S` tested configurations,
//! 4. `cost(c)` — stop when a configuration with cost ≤ c is found,
//! 5. `speedup<D>(s, t)` — stop when the last interval `t` did not lower the
//!    cost by a factor ≥ s,
//! 6. `speedup(s, n)` — ditto over the last `n` tested configurations.
//!
//! Conditions combine with `&` / `|` (the paper's `&&` / `||`). If no
//! condition is given the tuner uses `evaluations(S)`.

use crate::status::TuningStatus;
use std::fmt;
use std::time::Duration;

/// A predicate over the live [`TuningStatus`], checked after every evaluated
/// configuration; tuning stops as soon as it returns `true`.
pub trait AbortCondition: Send {
    /// `true` once exploration should stop.
    fn should_stop(&self, status: &TuningStatus) -> bool;

    /// Human-readable description for diagnostics.
    fn describe(&self) -> String {
        "abort condition".to_string()
    }
}

/// Boxed abort condition with `&`/`|` combinators.
pub struct Abort(Box<dyn AbortCondition>);

impl Abort {
    /// Wraps a concrete condition.
    pub fn new(c: impl AbortCondition + 'static) -> Self {
        Abort(Box::new(c))
    }
}

impl AbortCondition for Abort {
    fn should_stop(&self, status: &TuningStatus) -> bool {
        self.0.should_stop(status)
    }
    fn describe(&self) -> String {
        self.0.describe()
    }
}

impl fmt::Debug for Abort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Abort({})", self.0.describe())
    }
}

impl std::ops::BitAnd for Abort {
    type Output = Abort;
    fn bitand(self, rhs: Abort) -> Abort {
        Abort::new(And(self, rhs))
    }
}

impl std::ops::BitOr for Abort {
    type Output = Abort;
    fn bitor(self, rhs: Abort) -> Abort {
        Abort::new(Or(self, rhs))
    }
}

struct And(Abort, Abort);
impl AbortCondition for And {
    fn should_stop(&self, s: &TuningStatus) -> bool {
        self.0.should_stop(s) && self.1.should_stop(s)
    }
    fn describe(&self) -> String {
        format!("({}) && ({})", self.0.describe(), self.1.describe())
    }
}

struct Or(Abort, Abort);
impl AbortCondition for Or {
    fn should_stop(&self, s: &TuningStatus) -> bool {
        self.0.should_stop(s) || self.1.should_stop(s)
    }
    fn describe(&self) -> String {
        format!("({}) || ({})", self.0.describe(), self.1.describe())
    }
}

/// `duration(t)`: stop after the user-defined time interval `t`.
pub fn duration(t: Duration) -> Abort {
    struct C(Duration);
    impl AbortCondition for C {
        fn should_stop(&self, s: &TuningStatus) -> bool {
            s.elapsed() >= self.0
        }
        fn describe(&self) -> String {
            format!("duration({:?})", self.0)
        }
    }
    Abort::new(C(t))
}

/// `evaluations(n)`: stop after `n` tested configurations.
pub fn evaluations(n: u64) -> Abort {
    struct C(u64);
    impl AbortCondition for C {
        fn should_stop(&self, s: &TuningStatus) -> bool {
            s.evaluations() >= self.0
        }
        fn describe(&self) -> String {
            format!("evaluations({})", self.0)
        }
    }
    Abort::new(C(n))
}

/// `valid_evaluations(n)`: stop after `n` *successfully measured*
/// configurations. Not in the paper's list, but needed for fair tuner
/// comparisons when some measurements fail (ATF extension point:
/// "new abort conditions can be easily added").
pub fn valid_evaluations(n: u64) -> Abort {
    struct C(u64);
    impl AbortCondition for C {
        fn should_stop(&self, s: &TuningStatus) -> bool {
            s.valid_evaluations() >= self.0
        }
        fn describe(&self) -> String {
            format!("valid_evaluations({})", self.0)
        }
    }
    Abort::new(C(n))
}

/// `fraction(f)`: stop after `f * S` tested configurations, `f ∈ [0, 1]`,
/// `S` the search-space size.
pub fn fraction(f: f64) -> Abort {
    assert!((0.0..=1.0).contains(&f), "fraction must be in [0, 1]");
    struct C(f64);
    impl AbortCondition for C {
        fn should_stop(&self, s: &TuningStatus) -> bool {
            let target = (self.0 * s.space_size() as f64).ceil() as u64;
            s.evaluations() >= target
        }
        fn describe(&self) -> String {
            format!("fraction({})", self.0)
        }
    }
    Abort::new(C(f))
}

/// `cost(c)`: stop when a configuration with scalar cost ≤ `c` is found.
pub fn cost(c: f64) -> Abort {
    struct C(f64);
    impl AbortCondition for C {
        fn should_stop(&self, s: &TuningStatus) -> bool {
            s.best_scalar_cost().is_some_and(|b| b <= self.0)
        }
        fn describe(&self) -> String {
            format!("cost({})", self.0)
        }
    }
    Abort::new(C(c))
}

/// `speedup(s, t)`: stop when within the last time interval `t` the best
/// cost could not be lowered by a factor ≥ `s`.
///
/// Never stops before `t` has elapsed or before any cost was measured.
pub fn speedup_over_duration(s: f64, t: Duration) -> Abort {
    assert!(s >= 1.0, "speedup factor must be >= 1");
    struct C(f64, Duration);
    impl AbortCondition for C {
        fn should_stop(&self, st: &TuningStatus) -> bool {
            let elapsed = st.elapsed();
            if elapsed < self.1 {
                return false;
            }
            let Some(now) = st.best_scalar_cost() else {
                return false;
            };
            match st.best_scalar_at_time(elapsed - self.1) {
                // No measurement existed at window start: the whole window's
                // progress counts as "from infinity" — never stop.
                None => false,
                Some(then) => then / now < self.0,
            }
        }
        fn describe(&self) -> String {
            format!("speedup({}, {:?})", self.0, self.1)
        }
    }
    Abort::new(C(s, t))
}

/// `speedup(s, n)`: stop when within the last `n` tested configurations the
/// best cost could not be lowered by a factor ≥ `s`.
pub fn speedup_over_evaluations(s: f64, n: u64) -> Abort {
    assert!(s >= 1.0, "speedup factor must be >= 1");
    struct C(f64, u64);
    impl AbortCondition for C {
        fn should_stop(&self, st: &TuningStatus) -> bool {
            if st.evaluations() < self.1 {
                return false;
            }
            let Some(now) = st.best_scalar_cost() else {
                return false;
            };
            match st.best_scalar_at_evaluation(st.evaluations() - self.1) {
                None => false,
                Some(then) => then / now < self.0,
            }
        }
        fn describe(&self) -> String {
            format!("speedup({}, {} evaluations)", self.0, self.1)
        }
    }
    Abort::new(C(s, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status() -> TuningStatus {
        TuningStatus::new(1000)
    }

    #[test]
    fn evaluations_condition() {
        let c = evaluations(3);
        let mut s = status();
        for _ in 0..2 {
            s.record_evaluation(true);
        }
        assert!(!c.should_stop(&s));
        s.record_evaluation(false);
        assert!(c.should_stop(&s));
    }

    #[test]
    fn valid_evaluations_condition() {
        let c = valid_evaluations(2);
        let mut s = status();
        s.record_evaluation(false);
        s.record_evaluation(false);
        assert!(!c.should_stop(&s));
        s.record_evaluation(true);
        s.record_evaluation(true);
        assert!(c.should_stop(&s));
    }

    #[test]
    fn duration_condition() {
        let c = duration(Duration::from_secs(10));
        let mut s = status();
        s.set_elapsed_for_test(Duration::from_secs(9));
        assert!(!c.should_stop(&s));
        s.set_elapsed_for_test(Duration::from_secs(10));
        assert!(c.should_stop(&s));
    }

    #[test]
    fn fraction_condition() {
        let c = fraction(0.01); // 1% of 1000 = 10 evaluations
        let mut s = status();
        for _ in 0..9 {
            s.record_evaluation(true);
        }
        assert!(!c.should_stop(&s));
        s.record_evaluation(true);
        assert!(c.should_stop(&s));
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0, 1]")]
    fn fraction_range_checked() {
        fraction(1.5);
    }

    #[test]
    fn cost_condition() {
        let c = cost(5.0);
        let mut s = status();
        assert!(!c.should_stop(&s));
        s.record_evaluation(true);
        s.record_improvement(7.0);
        assert!(!c.should_stop(&s));
        s.record_evaluation(true);
        s.record_improvement(5.0);
        assert!(c.should_stop(&s));
    }

    #[test]
    fn speedup_time_window() {
        let c = speedup_over_duration(1.5, Duration::from_secs(10));
        let mut s = status();
        // t=1s: best 100
        s.set_elapsed_for_test(Duration::from_secs(1));
        s.record_evaluation(true);
        s.record_improvement(100.0);
        // Window not yet elapsed at t=5s.
        s.set_elapsed_for_test(Duration::from_secs(5));
        assert!(!c.should_stop(&s));
        // t=12s: within last 10s (since t=2) best went 100 → 90: factor 1.11 < 1.5 → stop.
        s.set_elapsed_for_test(Duration::from_secs(11));
        s.record_evaluation(true);
        s.record_improvement(90.0);
        s.set_elapsed_for_test(Duration::from_secs(12));
        assert!(c.should_stop(&s));
    }

    #[test]
    fn speedup_time_window_keeps_running_on_progress() {
        let c = speedup_over_duration(1.5, Duration::from_secs(10));
        let mut s = status();
        s.set_elapsed_for_test(Duration::from_secs(1));
        s.record_evaluation(true);
        s.record_improvement(100.0);
        s.set_elapsed_for_test(Duration::from_secs(11));
        s.record_evaluation(true);
        s.record_improvement(50.0); // factor 2 ≥ 1.5 within window → keep going
        s.set_elapsed_for_test(Duration::from_secs(11));
        assert!(!c.should_stop(&s));
    }

    #[test]
    fn speedup_evaluations_window() {
        let c = speedup_over_evaluations(2.0, 5);
        let mut s = status();
        s.record_evaluation(true);
        s.record_improvement(100.0); // eval 1
        for _ in 0..3 {
            s.record_evaluation(true); // evals 2-4
        }
        assert!(!c.should_stop(&s)); // only 4 < 5 evaluations so far
        s.record_evaluation(true); // eval 5
        s.record_improvement(80.0); // 100/80 = 1.25 < 2, baseline exists at eval 0? no → keep
        assert!(!c.should_stop(&s)); // at eval 5, window starts at eval 0: no cost then
        s.record_evaluation(true); // eval 6; window start = eval 1 (cost 100)
        assert!(c.should_stop(&s)); // 100/80 = 1.25 < 2 → stagnation → stop
    }

    #[test]
    fn and_or_combinators() {
        let mut s = status();
        s.record_evaluation(true);
        let both = evaluations(1) & duration(Duration::from_secs(60));
        assert!(!both.should_stop(&s)); // time not yet elapsed
        let either = evaluations(1) | duration(Duration::from_secs(60));
        assert!(either.should_stop(&s));
        s.set_elapsed_for_test(Duration::from_secs(60));
        let both = evaluations(1) & duration(Duration::from_secs(60));
        assert!(both.should_stop(&s));
    }

    #[test]
    fn describe_renders() {
        let c = evaluations(5) | cost(1.0);
        assert_eq!(c.describe(), "(evaluations(5)) || (cost(1))");
    }
}
