//! The generic cost function: auto-tune programs written in *any* language.
//!
//! Mirrors the paper's generic cost function (Section II, Step 2): it is
//! initialized with 1) the path to the program's source file, 2) two
//! user-provided scripts for compiling and running the program, and
//! optionally 3) a log file to which the program writes its cost; without a
//! log file, ATF measures the program's wall-clock runtime. For
//! multi-objective tuning the program writes comma-separated costs to the
//! log file, minimized in lexicographic order.
//!
//! Tuning-parameter values are passed to the scripts as environment
//! variables `ATF_TP_<NAME>`, plus `ATF_SOURCE` with the source path — this
//! substitutes for the OpenCL-preprocessor textual replacement in a
//! language-agnostic way (the scripts decide how to apply the values).

use crate::config::Config;
use crate::cost::{CostError, CostFunction};
use crate::policy::EvalPolicy;
use crate::trace::{TraceEvent, TraceSink};
use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitStatus, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A vector of costs compared lexicographically — what the generic cost
/// function parses from the log file (one or more comma-separated values).
pub type LexCosts = Vec<f64>;

impl crate::cost::CostValue for LexCosts {
    fn as_scalar(&self) -> f64 {
        self.first().copied().unwrap_or(f64::INFINITY)
    }
}

impl crate::cost::JournalCost for LexCosts {
    fn to_journal(&self) -> Vec<f64> {
        self.clone()
    }
    fn from_journal(values: &[f64]) -> Option<Self> {
        (!values.is_empty()).then(|| values.to_vec())
    }
}

/// How much of a failing script's stderr is attached to the error
/// (the *last* bytes — that is where compilers and runtimes put the
/// actual diagnostic).
const STDERR_TAIL: usize = 2048;

/// BSD `sysexits.h` EX_TEMPFAIL: a run script exiting with this code
/// signals a transient failure worth retrying (busy device, flaky
/// infrastructure) rather than a crash of the measured program.
pub const EX_TEMPFAIL: i32 = 75;

/// Keeps the last [`STDERR_TAIL`] bytes of a diagnostic stream, cutting at
/// a character boundary.
fn stderr_tail(raw: &[u8]) -> String {
    let text = String::from_utf8_lossy(raw);
    let text = text.trim();
    if text.len() <= STDERR_TAIL {
        return text.to_string();
    }
    let mut start = text.len() - STDERR_TAIL;
    while !text.is_char_boundary(start) {
        start += 1;
    }
    format!("… {}", &text[start..])
}

/// What a supervised script execution produced.
struct ScriptOutput {
    status: ExitStatus,
    /// Truncated tail of the script's stderr.
    stderr: String,
}

/// The generic program cost function.
#[derive(Clone)]
pub struct ProcessCostFunction {
    source: PathBuf,
    compile_script: Option<PathBuf>,
    run_script: PathBuf,
    log_file: Option<PathBuf>,
    timeout: Option<Duration>,
    /// Emits a timed `proc` trace event per script execution, when attached.
    trace: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for ProcessCostFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessCostFunction")
            .field("source", &self.source)
            .field("compile_script", &self.compile_script)
            .field("run_script", &self.run_script)
            .field("log_file", &self.log_file)
            .field("timeout", &self.timeout)
            .field("trace", &self.trace.as_ref().map(|_| "<sink>"))
            .finish()
    }
}

impl ProcessCostFunction {
    /// Creates the cost function. `source` is the program's source file (its
    /// path is exported to the scripts as `ATF_SOURCE`); `run_script` is
    /// executed to run the program.
    pub fn new(source: impl Into<PathBuf>, run_script: impl Into<PathBuf>) -> Self {
        ProcessCostFunction {
            source: source.into(),
            compile_script: None,
            run_script: run_script.into(),
            log_file: None,
            timeout: None,
            trace: None,
        }
    }

    /// Sets the compile script, executed before every run (the program is
    /// recompiled per configuration, e.g. because parameters are compile-time
    /// constants).
    pub fn compile_script(mut self, script: impl Into<PathBuf>) -> Self {
        self.compile_script = Some(script.into());
        self
    }

    /// Sets the log file the program writes its cost(s) to. Without a log
    /// file, the run script's wall-clock runtime (in seconds) is the cost.
    pub fn log_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.log_file = Some(path.into());
        self
    }

    /// Sets a wall-clock deadline per script execution: a compile or run
    /// exceeding it is hard-killed and reported as [`CostError::Timeout`]
    /// (hung kernels must not hang the whole tuning run).
    pub fn timeout(mut self, limit: Duration) -> Self {
        self.timeout = Some(limit);
        self
    }

    /// Applies the process-relevant part of an [`EvalPolicy`] (the
    /// per-evaluation timeout).
    pub fn eval_policy(mut self, policy: &EvalPolicy) -> Self {
        self.timeout = policy.timeout;
        self
    }

    /// Re-targets the log file for worker `index` of a parallel pool:
    /// worker 0 keeps the configured path (serial behavior unchanged),
    /// every other worker appends `.w<index>` so concurrent runs never
    /// race on one file. Scripts learn the effective path from the
    /// `ATF_LOG_FILE` environment variable and should write there instead
    /// of hard-coding the path when tuning with multiple workers.
    pub fn for_worker(mut self, index: usize) -> Self {
        if index > 0 {
            if let Some(path) = &self.log_file {
                let mut name = path.clone().into_os_string();
                name.push(format!(".w{index}"));
                self.log_file = Some(PathBuf::from(name));
            }
        }
        self
    }

    /// Attaches a trace sink: every compile/run script execution is
    /// emitted as a timed `proc` event with its failure kind, if any.
    pub fn trace_to(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Emits the timed `proc` event for one script phase, when a sink is
    /// attached.
    fn emit_proc<T>(&self, phase: &str, took: Duration, result: &Result<T, CostError>) {
        if let Some(trace) = &self.trace {
            trace.emit(&TraceEvent::proc(
                phase,
                u64::try_from(took.as_micros()).unwrap_or(u64::MAX),
                result.as_ref().err().map(|e| e.kind().label()),
            ));
        }
    }

    /// Runs `script` under the configured deadline, capturing its exit
    /// status and a truncated stderr tail.
    fn run(&self, script: &Path, config: &Config) -> Result<ScriptOutput, CostError> {
        let mut cmd = Command::new(script);
        cmd.env("ATF_SOURCE", &self.source);
        if let Some(log) = &self.log_file {
            cmd.env("ATF_LOG_FILE", log);
        }
        for (name, value) in config.iter() {
            cmd.env(format!("ATF_TP_{name}"), value.to_source_token());
        }
        cmd.stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        let mut child = cmd
            .spawn()
            .map_err(|e| CostError::RunFailed(format!("cannot execute {script:?}: {e}")))?;
        // Drain both pipes on reader threads so a chatty child never blocks
        // on a full pipe while we wait on it.
        let mut stdout_pipe = child.stdout.take().expect("stdout is piped");
        let mut stderr_pipe = child.stderr.take().expect("stderr is piped");
        let stdout_reader = std::thread::spawn(move || {
            let mut buf = Vec::new();
            let _ = stdout_pipe.read_to_end(&mut buf);
            buf
        });
        let stderr_reader = std::thread::spawn(move || {
            let mut buf = Vec::new();
            let _ = stderr_pipe.read_to_end(&mut buf);
            buf
        });
        let deadline = self.timeout.map(|limit| (limit, Instant::now() + limit));
        let status = loop {
            match child.try_wait() {
                Ok(Some(status)) => break status,
                Ok(None) => {
                    if let Some((limit, at)) = deadline {
                        if Instant::now() >= at {
                            // Hard kill: SIGKILL on unix — a hung kernel
                            // will not honor anything gentler. The reader
                            // threads are NOT joined: a grandchild may
                            // still hold the pipes open, and blocking on
                            // it would defeat the deadline; they exit on
                            // their own when the pipes close.
                            let _ = child.kill();
                            let _ = child.wait();
                            return Err(CostError::Timeout { limit });
                        }
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(CostError::RunFailed(format!("waiting on {script:?}: {e}")));
                }
            }
        };
        let _ = stdout_reader.join();
        let stderr = stderr_reader.join().unwrap_or_default();
        Ok(ScriptOutput {
            status,
            stderr: stderr_tail(&stderr),
        })
    }
}

/// Classifies a finished run script's exit status: success, transient
/// (EX_TEMPFAIL), signal kill, or plain nonzero exit.
fn classify_run_status(out: &ScriptOutput) -> Result<(), CostError> {
    if out.status.success() {
        return Ok(());
    }
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(signal) = out.status.signal() {
            return Err(CostError::Crashed {
                signal: Some(signal),
                exit: None,
                stderr: out.stderr.clone(),
            });
        }
    }
    match out.status.code() {
        Some(EX_TEMPFAIL) => Err(CostError::Transient(format!(
            "run script exited with EX_TEMPFAIL (75): {}",
            out.stderr
        ))),
        exit => Err(CostError::Crashed {
            signal: None,
            exit,
            stderr: out.stderr.clone(),
        }),
    }
}

/// Parses comma-separated costs (the multi-objective log format). The last
/// non-empty line wins, so programs may append across runs.
pub fn parse_costs(log: &str) -> Result<LexCosts, CostError> {
    let line = log
        .lines()
        .rev()
        .map(str::trim)
        .find(|l| !l.is_empty())
        .ok_or_else(|| CostError::MeasurementFailed("log file is empty".into()))?;
    line.split(',')
        .map(|t| {
            t.trim()
                .parse::<f64>()
                .map_err(|e| CostError::MeasurementFailed(format!("bad cost `{t}`: {e}")))
        })
        .collect()
}

impl CostFunction for ProcessCostFunction {
    type Cost = LexCosts;

    fn evaluate(&mut self, config: &Config) -> Result<LexCosts, CostError> {
        if let Some(compile) = self.compile_script.clone() {
            let started = Instant::now();
            let result = self.run(&compile, config).and_then(|out| {
                if out.status.success() {
                    Ok(())
                } else {
                    Err(CostError::CompileFailed(out.stderr))
                }
            });
            self.emit_proc("compile", started.elapsed(), &result);
            result?;
        }
        let started = Instant::now();
        let result = self
            .run(&self.run_script, config)
            .and_then(|out| classify_run_status(&out));
        let elapsed = started.elapsed();
        self.emit_proc("run", elapsed, &result);
        result?;
        match &self.log_file {
            None => Ok(vec![elapsed.as_secs_f64()]),
            Some(path) => {
                let log = std::fs::read_to_string(path).map_err(|e| {
                    CostError::MeasurementFailed(format!("cannot read log {path:?}: {e}"))
                })?;
                parse_costs(&log)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_script(dir: &Path, name: &str, body: &str) -> PathBuf {
        let path = dir.join(name);
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "#!/bin/sh\n{body}").unwrap();
        #[cfg(unix)]
        {
            use std::os::unix::fs::PermissionsExt;
            std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o755)).unwrap();
        }
        path
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("atf-process-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn parse_single_cost() {
        assert_eq!(parse_costs("3.25\n").unwrap(), vec![3.25]);
    }

    #[test]
    fn parse_multi_objective() {
        assert_eq!(parse_costs("1.5, 200\n").unwrap(), vec![1.5, 200.0]);
    }

    #[test]
    fn parse_last_line_wins() {
        assert_eq!(parse_costs("9\n4,2\n\n").unwrap(), vec![4.0, 2.0]);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_costs("").is_err());
        assert!(parse_costs("abc").is_err());
        assert!(parse_costs("1.0, xyz").is_err());
    }

    #[cfg(unix)]
    #[test]
    fn runs_external_program_with_log() {
        let dir = tmpdir("log");
        let log = dir.join("cost.log");
        // The "program": cost = |X - 7| * 10, written by the run script.
        let run = write_script(
            &dir,
            "run.sh",
            &format!(
                "X=$ATF_TP_X\nD=$((X - 7))\nif [ $D -lt 0 ]; then D=$((-D)); fi\necho $((D * 10)) > {}",
                log.display()
            ),
        );
        let mut cf = ProcessCostFunction::new(dir.join("prog.src"), run).log_file(&log);
        let good = Config::from_pairs([("X", 7u64)]);
        let bad = Config::from_pairs([("X", 2u64)]);
        assert_eq!(cf.evaluate(&good).unwrap(), vec![0.0]);
        assert_eq!(cf.evaluate(&bad).unwrap(), vec![50.0]);
    }

    #[cfg(unix)]
    #[test]
    fn script_executions_emit_proc_events() {
        use crate::trace::MemorySink;
        let dir = tmpdir("proc-trace");
        let compile = write_script(&dir, "compile.sh", "exit 0");
        let run = write_script(&dir, "run.sh", "exit 0");
        let sink = Arc::new(MemorySink::new());
        let mut cf = ProcessCostFunction::new(dir.join("p.src"), run)
            .compile_script(compile)
            .trace_to(sink.clone());
        cf.evaluate(&Config::new()).unwrap();
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].event, "proc");
        assert_eq!(events[0].phase.as_deref(), Some("compile"));
        assert_eq!(events[0].ok, Some(true));
        assert_eq!(events[1].phase.as_deref(), Some("run"));
        assert!(events[1].micros.is_some());

        // A failing run is traced with its failure kind.
        let bad_run = write_script(&dir, "bad.sh", "exit 3");
        let mut cf = ProcessCostFunction::new(dir.join("p.src"), bad_run).trace_to(sink.clone());
        cf.evaluate(&Config::new()).unwrap_err();
        let events = sink.take();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].ok, Some(false));
        assert_eq!(events[0].failure.as_deref(), Some("crash"));
    }

    #[cfg(unix)]
    #[test]
    fn compile_failure_reported() {
        let dir = tmpdir("cfail");
        let compile = write_script(&dir, "compile.sh", "echo 'boom' >&2; exit 1");
        let run = write_script(&dir, "run.sh", "exit 0");
        let mut cf = ProcessCostFunction::new(dir.join("p.src"), run).compile_script(compile);
        let err = cf.evaluate(&Config::new()).unwrap_err();
        assert!(matches!(err, CostError::CompileFailed(m) if m.contains("boom")));
    }

    #[cfg(unix)]
    #[test]
    fn run_failure_reported_as_crash_with_stderr() {
        let dir = tmpdir("rfail");
        let run = write_script(&dir, "run.sh", "echo 'kernel launch failed' >&2; exit 3");
        let mut cf = ProcessCostFunction::new(dir.join("p.src"), run);
        match cf.evaluate(&Config::new()) {
            Err(CostError::Crashed {
                signal: None,
                exit: Some(3),
                stderr,
            }) => assert!(stderr.contains("kernel launch failed"), "{stderr}"),
            other => panic!("expected Crashed, got {other:?}"),
        }
    }

    #[cfg(unix)]
    #[test]
    fn signal_kill_reported_as_crash_with_signal() {
        let dir = tmpdir("sig");
        let run = write_script(&dir, "run.sh", "kill -SEGV $$");
        let mut cf = ProcessCostFunction::new(dir.join("p.src"), run);
        match cf.evaluate(&Config::new()) {
            Err(CostError::Crashed {
                signal: Some(11), ..
            }) => {}
            other => panic!("expected signal-11 crash, got {other:?}"),
        }
    }

    #[cfg(unix)]
    #[test]
    fn tempfail_exit_code_is_transient() {
        let dir = tmpdir("tmpf");
        let run = write_script(&dir, "run.sh", "echo 'device busy' >&2; exit 75");
        let mut cf = ProcessCostFunction::new(dir.join("p.src"), run);
        match cf.evaluate(&Config::new()) {
            Err(CostError::Transient(m)) => assert!(m.contains("device busy"), "{m}"),
            other => panic!("expected Transient, got {other:?}"),
        }
    }

    #[cfg(unix)]
    #[test]
    fn hung_run_is_killed_at_the_deadline() {
        let dir = tmpdir("hang");
        let run = write_script(&dir, "run.sh", "sleep 30");
        let mut cf =
            ProcessCostFunction::new(dir.join("p.src"), run).timeout(Duration::from_millis(200));
        let started = Instant::now();
        let err = cf.evaluate(&Config::new()).unwrap_err();
        assert!(
            matches!(err, CostError::Timeout { limit } if limit == Duration::from_millis(200)),
            "{err:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "the child must be hard-killed, not waited out"
        );
    }

    #[cfg(unix)]
    #[test]
    fn log_path_is_exported_and_per_worker() {
        let dir = tmpdir("worker");
        let log = dir.join("cost.log");
        // The script writes wherever ATF_LOG_FILE points — the parallel-safe
        // idiom — so re-targeting the log never changes the script.
        let run = write_script(
            &dir,
            "run.sh",
            "X=$ATF_TP_X\necho $((X * 2)) > \"$ATF_LOG_FILE\"",
        );
        let base = ProcessCostFunction::new(dir.join("p.src"), run).log_file(&log);
        let config = Config::from_pairs([("X", 5u64)]);

        // Worker 0 keeps the configured path.
        let mut w0 = base.clone().for_worker(0);
        assert_eq!(w0.evaluate(&config).unwrap(), vec![10.0]);
        assert!(log.exists());

        // Worker 3 reads and writes its own suffixed file.
        let mut w3 = base.clone().for_worker(3);
        assert_eq!(w3.evaluate(&config).unwrap(), vec![10.0]);
        assert!(dir.join("cost.log.w3").exists());
    }

    #[test]
    fn stderr_tail_keeps_the_end() {
        let long = "x".repeat(5000) + "THE ACTUAL ERROR";
        let tail = stderr_tail(long.as_bytes());
        assert!(tail.len() <= STDERR_TAIL + 8, "tail len {}", tail.len());
        assert!(tail.starts_with('…'));
        assert!(tail.ends_with("THE ACTUAL ERROR"));
        assert_eq!(stderr_tail(b"  short  "), "short");
    }

    #[cfg(unix)]
    #[test]
    fn wall_clock_fallback_when_no_log() {
        let dir = tmpdir("wall");
        let run = write_script(&dir, "run.sh", "exit 0");
        let mut cf = ProcessCostFunction::new(dir.join("p.src"), run);
        let costs = cf.evaluate(&Config::new()).unwrap();
        assert_eq!(costs.len(), 1);
        assert!(costs[0] >= 0.0 && costs[0] < 60.0);
    }

    #[cfg(unix)]
    #[test]
    fn missing_script_is_run_failed() {
        let mut cf = ProcessCostFunction::new("/nonexistent/src", "/nonexistent/run.sh");
        assert!(matches!(
            cf.evaluate(&Config::new()),
            Err(CostError::RunFailed(_))
        ));
    }

    #[test]
    fn lex_costs_scalar_projection() {
        use crate::cost::CostValue;
        assert_eq!(vec![2.0, 9.0].as_scalar(), 2.0);
        assert_eq!(Vec::<f64>::new().as_scalar(), f64::INFINITY);
        assert!(vec![1.0, 5.0] < vec![1.0, 6.0]);
        assert!(vec![0.5, 100.0] < vec![1.0, 0.0]);
    }
}
