//! Crash-safe tuning campaigns: declarative multi-run orchestration with
//! failure policies and budget enforcement.
//!
//! A campaign file describes a DAG of tuning runs (nodes) with
//! dependencies. [`validate`] compiles it into a [`CampaignPlan`] —
//! catching duplicate or unknown node references, cycles, and malformed
//! policies *before anything executes* — and [`run_campaign`] drives the
//! plan through a caller-supplied [`NodeExecutor`], concurrently across
//! independent nodes.
//!
//! Robustness model:
//!
//! * **Failure policies** per node: `retry` (jittered exponential backoff,
//!   ×N), `continue` (mark dependents skipped with a recorded reason and
//!   keep going — also the behaviour when retries are exhausted), and
//!   `abort` (cancel in-flight nodes at their next handout and drain
//!   cleanly; the default).
//! * **Shared budget**: a campaign-wide evaluation and/or wall-clock
//!   budget, charged at *handout* granularity through the session's abort
//!   check ([`CampaignHooks::wrap_abort`]) — a campaign can never overspend
//!   by more than the in-flight window, and nodes cut or denied by the
//!   budget are recorded as `budget_exhausted`, not as errors.
//! * **Campaign journal**: a write-ahead log (`started` / `attempt_failed`
//!   / `finished` entries in the run journal's checksummed-line format) so
//!   kill -9 at any point resumes with finished nodes restored verbatim,
//!   in-flight nodes re-run through their per-run journals, and the final
//!   [`CampaignReport`] bit-identical to an uninterrupted execution.
//!
//! The executor seam keeps this module policy-free about *how* a node
//! runs: `atf-cli` supplies a local executor (its `run_with` pipeline) and
//! a service-mode executor (`run_remote_with` against `atf-service`);
//! tests supply synthetic executors with real sessions and kill hooks.

use crate::abort::{Abort, AbortCondition};
use crate::journal::{checksummed_json_line, parse_checksummed_json_line};
use crate::status::TuningStatus;
use crate::trace::{NullSink, TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Node outcome labels recorded in journals and reports.
pub mod outcome {
    /// The node's tuning run finished normally.
    pub const COMPLETED: &str = "completed";
    /// The node failed after its policy's retries were exhausted.
    pub const FAILED: &str = "failed";
    /// The node was shed with `overloaded` by the service after exhausting
    /// its retries — capacity rejection, not a real failure.
    pub const OVERLOADED: &str = "overloaded";
    /// The node never ran (failed dependency or campaign abort), or was
    /// cancelled mid-run by an `abort` policy.
    pub const SKIPPED: &str = "skipped";
    /// The shared campaign budget denied or cut the node.
    pub const BUDGET_EXHAUSTED: &str = "budget_exhausted";
}

// ---------------------------------------------------------------------------
// Declarative spec
// ---------------------------------------------------------------------------

/// A declarative campaign file: a named DAG of tuning runs.
#[derive(Clone, Debug, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name (journal identity; also shown in reports).
    pub campaign: String,
    /// The tuning runs, in declaration order. Declaration order breaks
    /// scheduling ties, so a campaign executes deterministically.
    pub nodes: Vec<NodeSpec>,
    /// Optional shared evaluation / wall-clock budget across all nodes.
    #[serde(default)]
    pub budget: Option<BudgetSpec>,
    /// How many independent nodes may run concurrently (default 1).
    #[serde(default)]
    pub concurrency: Option<usize>,
}

/// One tuning run inside a campaign.
#[derive(Clone, Debug, Deserialize)]
pub struct NodeSpec {
    /// Unique node name (journal identity, dependency references).
    pub name: String,
    /// Path to the node's tuning specification, resolved by the executor
    /// (the CLI resolves it relative to the campaign file).
    pub spec: String,
    /// Names of nodes that must complete before this one starts.
    #[serde(default)]
    pub after: Vec<String>,
    /// What to do when the run fails (default: `abort`).
    #[serde(default)]
    pub on_failure: Option<PolicySpec>,
}

/// Failure policy as written in the campaign file.
#[derive(Clone, Debug, Deserialize)]
pub struct PolicySpec {
    /// `"retry"`, `"continue"`, or `"abort"`.
    pub policy: String,
    /// `retry`: how many times to re-run the node after its first failure.
    #[serde(default)]
    pub retries: Option<u32>,
    /// `retry`: base backoff before the first re-run, doubling (with
    /// deterministic jitter) per attempt. Default 1000.
    #[serde(default)]
    pub backoff_ms: Option<u64>,
}

/// Shared campaign budget limits.
#[derive(Clone, Debug, Deserialize)]
pub struct BudgetSpec {
    /// Total evaluations across every node of the campaign.
    #[serde(default)]
    pub evaluations: Option<u64>,
    /// Total wall clock for the campaign invocation, seconds. (Unlike the
    /// evaluation budget it restarts on resume: elapsed time cannot be
    /// replayed from a journal.)
    #[serde(default)]
    pub wall_clock_secs: Option<u64>,
}

/// A validated failure policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Re-run up to `retries` more times with jittered exponential backoff
    /// from `backoff_ms`; exhaustion then behaves like [`Self::Continue`].
    Retry {
        /// Re-runs after the first failure.
        retries: u32,
        /// Base backoff milliseconds (doubles per attempt).
        backoff_ms: u64,
    },
    /// Record the failure, mark dependents skipped, keep going.
    Continue,
    /// Cancel in-flight nodes and drain cleanly (the default).
    Abort,
}

impl CampaignSpec {
    /// Parses a campaign from JSON text.
    pub fn from_json(text: &str) -> Result<Self, CampaignError> {
        serde_json::from_str(text).map_err(|e| CampaignError::Spec(e.to_string()))
    }

    /// Loads a campaign file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CampaignError> {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CampaignError::Spec(format!("{}: {e}", path.as_ref().display())))?;
        Self::from_json(&text)
    }
}

/// Structured campaign errors. Validation errors name the offending node,
/// so scripts and CI can act on them without parsing prose.
#[derive(Debug)]
pub enum CampaignError {
    /// Reading or deserializing the campaign file failed, or a top-level
    /// field is malformed.
    Spec(String),
    /// Two nodes share a name.
    DuplicateNode(String),
    /// A node's `after` references a node that does not exist.
    UnknownDependency {
        /// The referencing node.
        node: String,
        /// The missing reference.
        dependency: String,
    },
    /// The dependency graph has a cycle through these nodes.
    Cycle(Vec<String>),
    /// A node's failure policy is malformed.
    Policy {
        /// The offending node.
        node: String,
        /// What is wrong with it.
        message: String,
    },
    /// Campaign-journal I/O failed (strict: the campaign's own write-ahead
    /// log failing is fatal, unlike a per-run journal which degrades).
    Journal(String),
    /// The journal belongs to a different campaign (name, node count, or
    /// spec content hash differ) — resuming would silently diverge.
    SpecMismatch {
        /// What the journal recorded.
        journal: String,
        /// What the current invocation expected.
        expected: String,
    },
    /// The campaign run died mid-flight (executor-declared fatal error or
    /// an injected kill); resume from the journal.
    Fatal(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Spec(m) => write!(f, "bad campaign: {m}"),
            CampaignError::DuplicateNode(n) => write!(f, "duplicate node `{n}`"),
            CampaignError::UnknownDependency { node, dependency } => {
                write!(f, "node `{node}` depends on unknown node `{dependency}`")
            }
            CampaignError::Cycle(nodes) => {
                write!(f, "dependency cycle through: {}", nodes.join(", "))
            }
            CampaignError::Policy { node, message } => {
                write!(f, "bad failure policy for `{node}`: {message}")
            }
            CampaignError::Journal(m) => write!(f, "campaign journal error: {m}"),
            CampaignError::SpecMismatch { journal, expected } => write!(
                f,
                "campaign journal belongs to a different campaign ({journal}, expected {expected})"
            ),
            CampaignError::Fatal(m) => write!(f, "campaign run died: {m}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// A validated campaign: the spec plus a deterministic topological order,
/// resolved dependency indices, and parsed failure policies.
#[derive(Debug)]
pub struct CampaignPlan {
    /// The validated spec.
    pub spec: CampaignSpec,
    /// Node indices in topological order (declaration order breaks ties).
    pub order: Vec<usize>,
    /// Resolved `after` indices per node.
    pub deps: Vec<Vec<usize>>,
    /// Parsed failure policy per node.
    pub policies: Vec<FailurePolicy>,
}

/// Validates a campaign: unique names, known dependency references, an
/// acyclic graph, well-formed policies and budgets. Returns the first
/// structured error found, or a [`CampaignPlan`] ready to run.
pub fn validate(spec: &CampaignSpec) -> Result<CampaignPlan, CampaignError> {
    if spec.campaign.trim().is_empty() {
        return Err(CampaignError::Spec("campaign name is empty".into()));
    }
    if spec.nodes.is_empty() {
        return Err(CampaignError::Spec("campaign has no nodes".into()));
    }
    if spec.concurrency == Some(0) {
        return Err(CampaignError::Spec("concurrency must be at least 1".into()));
    }
    if let Some(b) = &spec.budget {
        if b.evaluations == Some(0) {
            return Err(CampaignError::Spec(
                "budget.evaluations must be positive".into(),
            ));
        }
        if b.wall_clock_secs == Some(0) {
            return Err(CampaignError::Spec(
                "budget.wall_clock_secs must be positive".into(),
            ));
        }
    }
    let mut index = std::collections::HashMap::new();
    for (i, node) in spec.nodes.iter().enumerate() {
        if node.name.trim().is_empty() {
            return Err(CampaignError::Spec(format!("node {i} has an empty name")));
        }
        if node.spec.trim().is_empty() {
            return Err(CampaignError::Spec(format!(
                "node `{}` has an empty spec path",
                node.name
            )));
        }
        if index.insert(node.name.clone(), i).is_some() {
            return Err(CampaignError::DuplicateNode(node.name.clone()));
        }
    }
    let mut deps = Vec::with_capacity(spec.nodes.len());
    let mut policies = Vec::with_capacity(spec.nodes.len());
    for (i, node) in spec.nodes.iter().enumerate() {
        let mut resolved = Vec::with_capacity(node.after.len());
        for dep in &node.after {
            match index.get(dep) {
                Some(&j) if j != i => resolved.push(j),
                _ => {
                    return Err(CampaignError::UnknownDependency {
                        node: node.name.clone(),
                        dependency: dep.clone(),
                    })
                }
            }
        }
        deps.push(resolved);
        policies.push(parse_policy(node)?);
    }
    // Kahn's algorithm with declaration-order tie-breaking: the topological
    // order (and therefore validation output) is deterministic.
    let n = spec.nodes.len();
    let mut indegree: Vec<usize> = deps.iter().map(Vec::len).collect();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    while order.len() < n {
        let Some(next) = (0..n).find(|&i| !placed[i] && indegree[i] == 0) else {
            let stuck: Vec<String> = (0..n)
                .filter(|&i| !placed[i])
                .map(|i| spec.nodes[i].name.clone())
                .collect();
            return Err(CampaignError::Cycle(stuck));
        };
        placed[next] = true;
        order.push(next);
        for (i, d) in deps.iter().enumerate() {
            if !placed[i] && d.contains(&next) {
                indegree[i] -= 1;
            }
        }
    }
    Ok(CampaignPlan {
        spec: spec.clone(),
        order,
        deps,
        policies,
    })
}

fn parse_policy(node: &NodeSpec) -> Result<FailurePolicy, CampaignError> {
    let Some(p) = &node.on_failure else {
        return Ok(FailurePolicy::Abort);
    };
    match p.policy.as_str() {
        "retry" => Ok(FailurePolicy::Retry {
            retries: p.retries.unwrap_or(1),
            backoff_ms: p.backoff_ms.unwrap_or(1000),
        }),
        "continue" => Ok(FailurePolicy::Continue),
        "abort" => Ok(FailurePolicy::Abort),
        other => Err(CampaignError::Policy {
            node: node.name.clone(),
            message: format!("unknown policy `{other}` (expected retry, continue, abort)"),
        }),
    }
}

// ---------------------------------------------------------------------------
// Budget and session hooks
// ---------------------------------------------------------------------------

/// The shared campaign budget: an evaluation counter charged at handout
/// granularity plus an optional wall-clock deadline, with a one-way
/// exhaustion latch.
#[derive(Debug)]
pub struct CampaignBudget {
    evaluations: Option<u64>,
    deadline: Option<Instant>,
    spent: AtomicU64,
    exhausted: AtomicBool,
}

impl CampaignBudget {
    /// A live budget for one campaign invocation (the wall clock starts
    /// now).
    pub fn new(spec: &BudgetSpec) -> Self {
        CampaignBudget {
            evaluations: spec.evaluations,
            deadline: spec
                .wall_clock_secs
                .map(|s| Instant::now() + Duration::from_secs(s)),
            spent: AtomicU64::new(0),
            exhausted: AtomicBool::new(false),
        }
    }

    /// Charges `delta` evaluations to the shared pool.
    pub fn charge(&self, delta: u64) {
        if delta > 0 {
            self.spent.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Evaluations charged so far (completed nodes restored on resume are
    /// pre-charged; an in-flight node's replay recharges itself through
    /// the handout check).
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }

    /// Whether the budget is exhausted. Latches: once `true`, stays `true`,
    /// so every node observes the same verdict regardless of timing.
    pub fn exhausted(&self) -> bool {
        if self.exhausted.load(Ordering::Relaxed) {
            return true;
        }
        let over_evals = self
            .evaluations
            .is_some_and(|b| self.spent.load(Ordering::Relaxed) >= b);
        let over_time = self.deadline.is_some_and(|d| Instant::now() >= d);
        if over_evals || over_time {
            self.exhausted.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }
}

/// Per-node campaign wiring handed to an executor: the shared budget, the
/// campaign-wide cancel flag, and per-node "why did this run stop" flags.
///
/// [`Self::wrap_abort`] composes them into the session's abort condition.
/// The session checks its abort at *handout* time against a projected
/// status (in-flight handouts count as spent), so the budget charge-and-
/// check happens before each configuration leaves the session: a campaign
/// never overspends its evaluation budget by more than the in-flight
/// window.
#[derive(Clone, Debug)]
pub struct CampaignHooks {
    /// Shared evaluation/wall-clock budget, if the campaign has one.
    pub budget: Option<Arc<CampaignBudget>>,
    /// Campaign-wide cancel flag (set by an `abort` failure policy).
    pub cancel: Option<Arc<AtomicBool>>,
    budget_fired: Arc<AtomicBool>,
    cancel_fired: Arc<AtomicBool>,
}

impl Default for CampaignHooks {
    fn default() -> Self {
        Self::for_node(None, None)
    }
}

impl CampaignHooks {
    /// Fresh hooks for one node run.
    pub fn for_node(budget: Option<Arc<CampaignBudget>>, cancel: Option<Arc<AtomicBool>>) -> Self {
        CampaignHooks {
            budget,
            cancel,
            budget_fired: Arc::new(AtomicBool::new(false)),
            cancel_fired: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Wraps a session's abort condition with the campaign's budget and
    /// cancel checks. The budget check runs first (the `|` combinator
    /// short-circuits left to right), so every admitted handout is charged
    /// exactly once before any other condition can end the run.
    pub fn wrap_abort(&self, base: Abort) -> Abort {
        let mut a = base;
        if let Some(flag) = &self.cancel {
            a = Abort::new(CancelAbort {
                cancel: Arc::clone(flag),
                fired: Arc::clone(&self.cancel_fired),
            }) | a;
        }
        if let Some(budget) = &self.budget {
            a = Abort::new(BudgetAbort {
                budget: Arc::clone(budget),
                fired: Arc::clone(&self.budget_fired),
                last_seen: AtomicU64::new(0),
            }) | a;
        }
        a
    }

    /// Marks this node as cut by the budget (used by drivers that check
    /// the budget outside a session, e.g. the serial remote loop).
    pub fn mark_budget_fired(&self) {
        self.budget_fired.store(true, Ordering::Relaxed);
    }

    /// Whether the budget ended this node's run (→ `budget_exhausted`).
    pub fn budget_fired(&self) -> bool {
        self.budget_fired.load(Ordering::Relaxed)
    }

    /// Marks this node's run as ended by the campaign cancel flag (for
    /// drivers that poll the flag outside a session abort check).
    pub fn mark_cancel_fired(&self) {
        self.cancel_fired.store(true, Ordering::Relaxed);
    }

    /// Whether the campaign cancel flag ended this node's run.
    pub fn cancel_fired(&self) -> bool {
        self.cancel_fired.load(Ordering::Relaxed)
    }

    /// Whether a campaign-wide cancellation has been requested.
    pub fn cancel_requested(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }

    /// Whether the shared budget is exhausted right now.
    pub fn budget_exhausted(&self) -> bool {
        self.budget.as_ref().is_some_and(|b| b.exhausted())
    }
}

/// Charges the projected evaluation count's delta to the shared budget on
/// every abort check, then stops the run once the pool is exhausted. The
/// projected status counts in-flight handouts as spent and is independent
/// of report arrival timing, so the charge stream — and therefore where a
/// budget-bound run stops — is deterministic.
struct BudgetAbort {
    budget: Arc<CampaignBudget>,
    fired: Arc<AtomicBool>,
    last_seen: AtomicU64,
}

impl AbortCondition for BudgetAbort {
    fn should_stop(&self, status: &TuningStatus) -> bool {
        let seen = status.evaluations();
        let prev = self.last_seen.swap(seen, Ordering::Relaxed);
        self.budget.charge(seen.saturating_sub(prev));
        if self.budget.exhausted() {
            self.fired.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }
    fn describe(&self) -> String {
        "campaign_budget".to_string()
    }
}

struct CancelAbort {
    cancel: Arc<AtomicBool>,
    fired: Arc<AtomicBool>,
}

impl AbortCondition for CancelAbort {
    fn should_stop(&self, _status: &TuningStatus) -> bool {
        if self.cancel.load(Ordering::Relaxed) {
            self.fired.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }
    fn describe(&self) -> String {
        "campaign_cancel".to_string()
    }
}

// ---------------------------------------------------------------------------
// Campaign journal
// ---------------------------------------------------------------------------

/// Campaign journal format version.
pub const CAMPAIGN_JOURNAL_VERSION: u32 = 1;

/// First line of a campaign journal: identifies the campaign so a resume
/// against a renamed, restructured, or edited campaign file is rejected.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CampaignJournalHeader {
    /// Format version.
    pub version: u32,
    /// Campaign name.
    pub campaign: String,
    /// Content hash of the campaign file ([`crate::journal::content_hash`]).
    pub spec_hash: String,
    /// Node count (cheap structural check on top of the hash).
    pub nodes: usize,
}

/// One campaign journal entry, written before (`started`) and after
/// (`attempt_failed`, `finished`) the state change it records.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CampaignJournalEntry {
    /// 1-based write sequence number.
    pub seq: u64,
    /// `"started"`, `"attempt_failed"`, or `"finished"`.
    pub event: String,
    /// The node this entry concerns.
    pub node: String,
    /// Attempt number (`started`, `attempt_failed`), or total attempts
    /// consumed (`finished`).
    #[serde(default)]
    pub attempt: Option<u32>,
    /// `finished`: terminal [`outcome`] label.
    #[serde(default)]
    pub outcome: Option<String>,
    /// `finished`: evaluations the node performed.
    #[serde(default)]
    pub evaluations: Option<u64>,
    /// `finished`: best scalar cost, when the node measured anything.
    #[serde(default)]
    pub best_cost: Option<f64>,
    /// `finished`: best configuration, sorted by parameter name.
    #[serde(default)]
    pub best_config: Option<Vec<ConfigValue>>,
    /// `attempt_failed`/`finished`: failure or skip reason.
    #[serde(default)]
    pub reason: Option<String>,
}

/// One `name = value` pair of a best configuration, with the value
/// rendered to text so any cost domain journals identically.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigValue {
    /// Parameter name.
    pub name: String,
    /// Rendered value.
    pub value: String,
}

/// Append-only campaign journal writer. Every entry is fsynced before the
/// append returns: campaign events are rare (two or three per node), so
/// durability costs nothing next to the runs they frame.
pub struct CampaignJournal {
    file: File,
    kill_after: Option<u64>,
}

impl CampaignJournal {
    /// Creates (truncates) a campaign journal and durably writes its
    /// header.
    pub fn create(
        path: impl AsRef<Path>,
        header: &CampaignJournalHeader,
    ) -> Result<Self, CampaignError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| CampaignError::Journal(e.to_string()))?;
        }
        let mut file = File::create(path).map_err(|e| CampaignError::Journal(e.to_string()))?;
        let line =
            serde_json::to_string(header).map_err(|e| CampaignError::Journal(e.to_string()))?;
        file.write_all(line.as_bytes())
            .and_then(|()| file.write_all(b"\n"))
            .and_then(|()| file.sync_data())
            .map_err(|e| CampaignError::Journal(e.to_string()))?;
        crate::journal::sync_parent_dir(path);
        Ok(CampaignJournal {
            file,
            kill_after: None,
        })
    }

    /// Reopens a journal for appending after truncating a torn tail to its
    /// intact prefix (gluing onto a torn line would lose both lines on the
    /// next resume).
    pub fn append_from(path: impl AsRef<Path>, intact_len: u64) -> Result<Self, CampaignError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path.as_ref())
            .map_err(|e| CampaignError::Journal(e.to_string()))?;
        (|| {
            file.set_len(intact_len)?;
            file.seek(SeekFrom::End(0))?;
            if intact_len > 0 {
                file.seek(SeekFrom::Start(intact_len - 1))?;
                let mut last = [0u8; 1];
                file.read_exact(&mut last)?;
                if last[0] != b'\n' {
                    file.write_all(b"\n")?;
                }
            }
            file.sync_data()
        })()
        .map_err(|e| CampaignError::Journal(e.to_string()))?;
        Ok(CampaignJournal {
            file,
            kill_after: None,
        })
    }

    /// Chaos hook: after `n` more successful appends, every further append
    /// fails with [`CampaignError::Fatal`] *without writing* — on-disk
    /// state is exactly what SIGKILL at that append boundary leaves.
    pub fn kill_after_appends(&mut self, n: u64) {
        self.kill_after = Some(n);
    }

    /// Durably appends one entry (write + fsync before returning).
    pub fn append(&mut self, entry: &CampaignJournalEntry) -> Result<(), CampaignError> {
        if let Some(left) = self.kill_after {
            if left == 0 {
                return Err(CampaignError::Fatal(
                    "injected kill at campaign journal append".into(),
                ));
            }
            self.kill_after = Some(left - 1);
        }
        let line =
            checksummed_json_line(entry).map_err(|e| CampaignError::Journal(e.to_string()))?;
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.write_all(b"\n"))
            .and_then(|()| self.file.sync_data())
            .map_err(|e| CampaignError::Journal(e.to_string()))
    }
}

/// A loaded campaign journal: header, intact entries, and the byte length
/// of the intact prefix (for torn-tail truncation on resume).
#[derive(Clone, Debug)]
pub struct LoadedCampaignJournal {
    /// The campaign-identifying header.
    pub header: CampaignJournalHeader,
    /// All intact entries, in write order.
    pub entries: Vec<CampaignJournalEntry>,
    /// Byte length of the intact prefix.
    pub intact_len: u64,
}

/// Loads a campaign journal, tolerating a torn or corrupt tail exactly
/// like the run journal loader: entries from the first undecodable line
/// onward are dropped.
pub fn load_campaign_journal(
    path: impl AsRef<Path>,
) -> Result<LoadedCampaignJournal, CampaignError> {
    let file = File::open(path.as_ref()).map_err(|e| CampaignError::Journal(e.to_string()))?;
    let mut reader = BufReader::new(file);
    let mut buf = String::new();
    let n = reader
        .read_line(&mut buf)
        .map_err(|e| CampaignError::Journal(e.to_string()))?;
    if n == 0 {
        return Err(CampaignError::Journal("campaign journal is empty".into()));
    }
    let header: CampaignJournalHeader = serde_json::from_str(buf.trim_end())
        .map_err(|e| CampaignError::Journal(format!("bad header: {e}")))?;
    let mut intact = n as u64;
    let mut entries = Vec::new();
    loop {
        buf.clear();
        let n = reader
            .read_line(&mut buf)
            .map_err(|e| CampaignError::Journal(e.to_string()))?;
        if n == 0 {
            break;
        }
        let line = buf.trim();
        if line.is_empty() {
            intact += n as u64;
            continue;
        }
        match parse_checksummed_json_line::<CampaignJournalEntry>(line) {
            Some(entry) => {
                entries.push(entry);
                intact += n as u64;
            }
            None => break,
        }
    }
    Ok(LoadedCampaignJournal {
        header,
        entries,
        intact_len: intact,
    })
}

// ---------------------------------------------------------------------------
// Executor seam
// ---------------------------------------------------------------------------

/// Everything a [`NodeExecutor`] needs to run one node attempt.
#[derive(Clone, Debug)]
pub struct NodeContext {
    /// Declaration index of the node in the campaign.
    pub node_index: usize,
    /// 1-based attempt number (counts prior failed attempts, including
    /// those from before a crash).
    pub attempt: u32,
    /// Whether this attempt resumes the node's per-run journal (only true
    /// for the first attempt of a node that was in flight when the
    /// campaign was killed). Retry attempts always start fresh.
    pub resume: bool,
    /// Budget and cancel wiring for this run; executors must thread it
    /// into the session's abort condition via [`CampaignHooks::wrap_abort`]
    /// (or charge/check manually for non-session drivers).
    pub hooks: CampaignHooks,
}

/// What a successful (or budget-/cancel-cut) node run produced.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeRun {
    /// Evaluations performed by this node (including replayed ones).
    pub evaluations: u64,
    /// Best scalar cost found, if anything was measured.
    pub best_cost: Option<f64>,
    /// Best configuration, sorted by parameter name.
    pub best_config: Vec<ConfigValue>,
}

/// How a node attempt failed.
#[derive(Debug)]
pub enum NodeError {
    /// The run failed; the node's failure policy decides what happens.
    Failed(String),
    /// The service shed the run with `overloaded` after the transport's
    /// own retries; policy-retried like a failure but recorded distinctly.
    Overloaded(String),
    /// The whole campaign run must stop *now*, leaving the journal as-is
    /// (executor-level catastrophic error; also the injected-kill hook).
    Fatal(String),
}

/// Runs one node attempt. Implementations must be shareable across the
/// runner's worker threads.
pub trait NodeExecutor: Sync {
    /// Executes `node`, honoring the context's hooks and resume flag.
    fn execute(&self, node: &NodeSpec, ctx: &NodeContext) -> Result<NodeRun, NodeError>;
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// One node's terminal state in the campaign report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeReport {
    /// Node name.
    pub node: String,
    /// Terminal [`outcome`] label.
    pub outcome: String,
    /// Evaluations the node performed.
    pub evaluations: u64,
    /// Attempts consumed (1 for a first-try success; 0 when never run).
    pub attempts: u32,
    /// Best scalar cost, when the node measured anything.
    #[serde(default)]
    pub best_cost: Option<f64>,
    /// Best configuration, sorted by parameter name.
    #[serde(default)]
    pub best_config: Vec<ConfigValue>,
    /// Failure or skip reason.
    #[serde(default)]
    pub reason: Option<String>,
}

/// The final campaign report: nodes in declaration order. Deliberately
/// excludes wall-clock fields so a resumed campaign's report is
/// bit-identical to an uninterrupted run's.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Campaign name.
    pub campaign: String,
    /// Per-node terminal states, in declaration order.
    pub nodes: Vec<NodeReport>,
    /// Sum of node evaluations.
    pub total_evaluations: u64,
    /// Whether any node was denied or cut by the shared budget.
    pub budget_exhausted: bool,
}

impl CampaignReport {
    /// Canonical single-line JSON rendering (the bit-identity artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_default()
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Execution options for [`run_campaign`].
pub struct RunConfig {
    /// Campaign journal path (`None` = no crash safety).
    pub journal: Option<PathBuf>,
    /// Resume from the journal when it exists.
    pub resume: bool,
    /// Content hash of the campaign file text (journal identity).
    pub spec_hash: String,
    /// Trace sink for `campaign_node` / `campaign_budget` /
    /// `campaign_skip` events.
    pub trace: Arc<dyn TraceSink>,
    /// Chaos hook: fail (as if SIGKILLed) after this many more campaign
    /// journal appends.
    pub kill_after_appends: Option<u64>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            journal: None,
            resume: false,
            spec_hash: String::new(),
            trace: Arc::new(NullSink),
            kill_after_appends: None,
        }
    }
}

#[derive(Clone, Debug)]
struct NodeDone {
    outcome: String,
    evaluations: u64,
    attempts: u32,
    best_cost: Option<f64>,
    best_config: Vec<ConfigValue>,
    reason: Option<String>,
}

impl NodeDone {
    fn from_journal(e: &CampaignJournalEntry) -> Self {
        NodeDone {
            outcome: e.outcome.clone().unwrap_or_else(|| outcome::FAILED.into()),
            evaluations: e.evaluations.unwrap_or(0),
            attempts: e.attempt.unwrap_or(0),
            best_cost: e.best_cost,
            best_config: e.best_config.clone().unwrap_or_default(),
            reason: e.reason.clone(),
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum St {
    Pending,
    Running,
    Done,
}

struct RunnerState {
    st: Vec<St>,
    done: Vec<Option<NodeDone>>,
    journal: Option<CampaignJournal>,
    seq: u64,
    fatal: Option<CampaignError>,
    abort_reason: Option<String>,
}

impl RunnerState {
    /// Appends a journal entry; a failure is fatal for the campaign run
    /// (its own WAL failing must not go unnoticed — per-run journals are
    /// the ones that degrade gracefully).
    fn journal_append(&mut self, mut entry: CampaignJournalEntry) -> bool {
        let Some(j) = &mut self.journal else {
            return true;
        };
        self.seq += 1;
        entry.seq = self.seq;
        match j.append(&entry) {
            Ok(()) => true,
            Err(e) => {
                self.seq -= 1;
                if self.fatal.is_none() {
                    self.fatal = Some(e);
                }
                false
            }
        }
    }
}

fn finished_entry(node: &str, d: &NodeDone) -> CampaignJournalEntry {
    CampaignJournalEntry {
        seq: 0,
        event: "finished".into(),
        node: node.to_string(),
        attempt: Some(d.attempts),
        outcome: Some(d.outcome.clone()),
        evaluations: Some(d.evaluations),
        best_cost: d.best_cost,
        best_config: Some(d.best_config.clone()),
        reason: d.reason.clone(),
    }
}

/// Deterministic jittered exponential backoff for node retries: doubles
/// per attempt from `backoff_ms`, jittered ±25% by a hash of the node
/// name and attempt number, capped at 30 s.
pub fn retry_backoff(node: &str, attempt: u32, backoff_ms: u64) -> Duration {
    let base = backoff_ms.saturating_mul(1u64 << attempt.saturating_sub(1).min(8));
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in node.as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = (h ^ u64::from(attempt)).wrapping_mul(0x0000_0100_0000_01b3);
    let jittered = base / 4 * 3 + (h % (base / 2 + 1));
    Duration::from_millis(jittered.min(30_000))
}

/// Executes a validated campaign plan through `executor`.
///
/// Scheduling is deterministic: among ready nodes, declaration order wins;
/// up to `concurrency` nodes run at once on scoped worker threads. Nodes
/// whose dependencies did not complete are skipped with a recorded reason
/// (transitively); once the shared budget latches exhausted, every
/// not-yet-started node is recorded `budget_exhausted` without running.
///
/// With a journal configured, every state change is logged write-ahead;
/// killing the process at any point and re-running with `resume: true`
/// restores finished nodes verbatim (zero re-execution), re-runs in-flight
/// nodes (which resume their own per-run journals via
/// [`NodeContext::resume`]), and produces a final report bit-identical to
/// an uninterrupted execution.
pub fn run_campaign<E: NodeExecutor>(
    plan: &CampaignPlan,
    executor: &E,
    cfg: &RunConfig,
) -> Result<CampaignReport, CampaignError> {
    let n = plan.spec.nodes.len();
    let mut done: Vec<Option<NodeDone>> = vec![None; n];
    let mut prior_failures: Vec<u32> = vec![0; n];
    let mut in_flight: Vec<bool> = vec![false; n];
    let mut journal = None;
    let mut seq = 0u64;

    if let Some(path) = &cfg.journal {
        let header = CampaignJournalHeader {
            version: CAMPAIGN_JOURNAL_VERSION,
            campaign: plan.spec.campaign.clone(),
            spec_hash: cfg.spec_hash.clone(),
            nodes: n,
        };
        if cfg.resume && path.exists() {
            let loaded = load_campaign_journal(path)?;
            if loaded.header.campaign != header.campaign
                || loaded.header.spec_hash != header.spec_hash
                || loaded.header.nodes != header.nodes
            {
                return Err(CampaignError::SpecMismatch {
                    journal: format!(
                        "campaign={} hash={} nodes={}",
                        loaded.header.campaign, loaded.header.spec_hash, loaded.header.nodes
                    ),
                    expected: format!(
                        "campaign={} hash={} nodes={}",
                        header.campaign, header.spec_hash, header.nodes
                    ),
                });
            }
            let index: std::collections::HashMap<&str, usize> = plan
                .spec
                .nodes
                .iter()
                .enumerate()
                .map(|(i, node)| (node.name.as_str(), i))
                .collect();
            let mut started: Vec<Option<u32>> = vec![None; n];
            for entry in &loaded.entries {
                seq = seq.max(entry.seq);
                let Some(&i) = index.get(entry.node.as_str()) else {
                    continue;
                };
                match entry.event.as_str() {
                    "started" => started[i] = entry.attempt.or(Some(1)),
                    "attempt_failed" => {
                        prior_failures[i] = prior_failures[i].max(entry.attempt.unwrap_or(0))
                    }
                    "finished" => done[i] = Some(NodeDone::from_journal(entry)),
                    _ => {}
                }
            }
            for i in 0..n {
                // In flight at the kill: the last started attempt has
                // neither a failure nor a terminal record. Its per-run
                // journal carries the partial progress.
                in_flight[i] =
                    done[i].is_none() && started[i].is_some_and(|a| a > prior_failures[i]);
            }
            journal = Some(CampaignJournal::append_from(path, loaded.intact_len)?);
        } else {
            journal = Some(CampaignJournal::create(path, &header)?);
        }
    }
    if let (Some(j), Some(k)) = (&mut journal, cfg.kill_after_appends) {
        j.kill_after_appends(k);
    }

    let budget = plan
        .spec
        .budget
        .as_ref()
        .map(|b| Arc::new(CampaignBudget::new(b)));
    if let Some(b) = &budget {
        // Finished nodes never re-run, so their spend is restored up
        // front; an in-flight node recharges itself during replay.
        b.charge(done.iter().flatten().map(|d| d.evaluations).sum());
    }
    let cancel = Arc::new(AtomicBool::new(false));
    // A node that already finished `failed` under an abort policy means
    // the campaign was draining when it died: restore the cancellation.
    for (i, d) in done.iter().enumerate() {
        if let Some(d) = d {
            if d.outcome == outcome::FAILED && plan.policies[i] == FailurePolicy::Abort {
                cancel.store(true, Ordering::Relaxed);
            }
        }
    }

    let workers = plan.spec.concurrency.unwrap_or(1).min(n).max(1);
    let state = Mutex::new(RunnerState {
        st: done
            .iter()
            .map(|d| if d.is_some() { St::Done } else { St::Pending })
            .collect(),
        done,
        journal,
        seq,
        fatal: None,
        abort_reason: None,
    });
    let ready = Condvar::new();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                worker_loop(
                    plan,
                    executor,
                    cfg,
                    &state,
                    &ready,
                    &budget,
                    &cancel,
                    &prior_failures,
                    &in_flight,
                )
            });
        }
    });

    let mut state = state.into_inner().unwrap_or_else(|p| p.into_inner());
    if let Some(fatal) = state.fatal.take() {
        return Err(fatal);
    }
    let nodes: Vec<NodeReport> = plan
        .spec
        .nodes
        .iter()
        .zip(state.done.iter())
        .map(|(node, d)| {
            let d = d.clone().unwrap_or(NodeDone {
                outcome: outcome::SKIPPED.into(),
                evaluations: 0,
                attempts: 0,
                best_cost: None,
                best_config: Vec::new(),
                reason: Some("scheduler never reached this node".into()),
            });
            NodeReport {
                node: node.name.clone(),
                outcome: d.outcome,
                evaluations: d.evaluations,
                attempts: d.attempts,
                best_cost: d.best_cost,
                best_config: d.best_config,
                reason: d.reason,
            }
        })
        .collect();
    let total_evaluations = nodes.iter().map(|r| r.evaluations).sum();
    let budget_exhausted = nodes.iter().any(|r| r.outcome == outcome::BUDGET_EXHAUSTED);
    Ok(CampaignReport {
        campaign: plan.spec.campaign.clone(),
        nodes,
        total_evaluations,
        budget_exhausted,
    })
}

enum Pick {
    Claim(usize),
    Wait,
    Finished,
}

/// Settles every node that can terminal-ize without running (skips,
/// budget denials), then picks the lowest-index runnable node.
fn settle_and_pick(
    plan: &CampaignPlan,
    cfg: &RunConfig,
    s: &mut RunnerState,
    budget: &Option<Arc<CampaignBudget>>,
    cancel: &AtomicBool,
) -> Pick {
    loop {
        if s.fatal.is_some() {
            return Pick::Finished;
        }
        let mut settled = false;
        let mut claim = None;
        for i in 0..plan.spec.nodes.len() {
            if s.st[i] != St::Pending {
                continue;
            }
            let name = &plan.spec.nodes[i].name;
            if cancel.load(Ordering::Relaxed) {
                let reason = s
                    .abort_reason
                    .clone()
                    .unwrap_or_else(|| "campaign aborted".into());
                cfg.trace.emit(&TraceEvent::campaign_skip(name, &reason));
                finish(
                    cfg,
                    s,
                    i,
                    name,
                    NodeDone {
                        outcome: outcome::SKIPPED.into(),
                        evaluations: 0,
                        attempts: 0,
                        best_cost: None,
                        best_config: Vec::new(),
                        reason: Some(reason),
                    },
                );
                settled = true;
                continue;
            }
            if budget.as_ref().is_some_and(|b| b.exhausted()) {
                let spent = budget.as_ref().map(|b| b.spent()).unwrap_or(0);
                cfg.trace.emit(&TraceEvent::campaign_budget(name, spent));
                finish(
                    cfg,
                    s,
                    i,
                    name,
                    NodeDone {
                        outcome: outcome::BUDGET_EXHAUSTED.into(),
                        evaluations: 0,
                        attempts: 0,
                        best_cost: None,
                        best_config: Vec::new(),
                        reason: Some("campaign budget exhausted before start".into()),
                    },
                );
                settled = true;
                continue;
            }
            let mut blocked = false;
            let mut skip_reason = None;
            for &dep in &plan.deps[i] {
                match s.st[dep] {
                    St::Done => {
                        let d = s.done[dep].as_ref().expect("done node has a result");
                        if d.outcome != outcome::COMPLETED {
                            skip_reason = Some(format!(
                                "dependency `{}` {}",
                                plan.spec.nodes[dep].name, d.outcome
                            ));
                            break;
                        }
                    }
                    _ => blocked = true,
                }
            }
            if let Some(reason) = skip_reason {
                cfg.trace.emit(&TraceEvent::campaign_skip(name, &reason));
                finish(
                    cfg,
                    s,
                    i,
                    name,
                    NodeDone {
                        outcome: outcome::SKIPPED.into(),
                        evaluations: 0,
                        attempts: 0,
                        best_cost: None,
                        best_config: Vec::new(),
                        reason: Some(reason),
                    },
                );
                settled = true;
                continue;
            }
            if !blocked && claim.is_none() {
                claim = Some(i);
            }
        }
        if settled {
            continue;
        }
        if let Some(i) = claim {
            return Pick::Claim(i);
        }
        if s.st.iter().any(|st| *st != St::Done) {
            return Pick::Wait;
        }
        return Pick::Finished;
    }
}

fn finish(cfg: &RunConfig, s: &mut RunnerState, i: usize, name: &str, d: NodeDone) {
    cfg.trace.emit(&TraceEvent::campaign_node(
        name,
        &d.outcome,
        d.evaluations,
        d.attempts,
    ));
    s.journal_append(finished_entry(name, &d));
    s.done[i] = Some(d);
    s.st[i] = St::Done;
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<E: NodeExecutor>(
    plan: &CampaignPlan,
    executor: &E,
    cfg: &RunConfig,
    state: &Mutex<RunnerState>,
    ready: &Condvar,
    budget: &Option<Arc<CampaignBudget>>,
    cancel: &Arc<AtomicBool>,
    prior_failures: &[u32],
    in_flight: &[bool],
) {
    let mut guard = state.lock().unwrap_or_else(|p| p.into_inner());
    loop {
        match settle_and_pick(plan, cfg, &mut guard, budget, cancel) {
            Pick::Finished => {
                ready.notify_all();
                return;
            }
            Pick::Wait => {
                guard = ready.wait(guard).unwrap_or_else(|p| p.into_inner());
            }
            Pick::Claim(i) => {
                guard.st[i] = St::Running;
                drop(guard);
                let d = run_node(
                    plan,
                    executor,
                    cfg,
                    state,
                    i,
                    budget,
                    cancel,
                    prior_failures[i],
                    in_flight[i],
                );
                guard = state.lock().unwrap_or_else(|p| p.into_inner());
                if let Some(d) = d {
                    let name = &plan.spec.nodes[i].name;
                    finish(cfg, &mut guard, i, name, d);
                }
                // On None (fatal mid-node) the node stays Running; the
                // report is never built — run_campaign returns the fatal.
                ready.notify_all();
            }
        }
    }
}

/// Runs one node through its retry policy. Returns `None` when a fatal
/// error was recorded (campaign run must stop). Called without the state
/// lock; takes it briefly for each journal write.
#[allow(clippy::too_many_arguments)]
fn run_node<E: NodeExecutor>(
    plan: &CampaignPlan,
    executor: &E,
    cfg: &RunConfig,
    state: &Mutex<RunnerState>,
    i: usize,
    budget: &Option<Arc<CampaignBudget>>,
    cancel: &Arc<AtomicBool>,
    prior_failures: u32,
    resume_in_flight: bool,
) -> Option<NodeDone> {
    let node = &plan.spec.nodes[i];
    let policy = plan.policies[i];
    let mut attempt = prior_failures + 1;
    let mut resume = resume_in_flight;
    loop {
        {
            let mut s = state.lock().unwrap_or_else(|p| p.into_inner());
            s.journal_append(CampaignJournalEntry {
                seq: 0,
                event: "started".into(),
                node: node.name.clone(),
                attempt: Some(attempt),
                outcome: None,
                evaluations: None,
                best_cost: None,
                best_config: None,
                reason: None,
            });
            if s.fatal.is_some() {
                return None;
            }
        }
        let hooks = CampaignHooks::for_node(budget.clone(), Some(Arc::clone(cancel)));
        let ctx = NodeContext {
            node_index: i,
            attempt,
            resume,
            hooks: hooks.clone(),
        };
        match executor.execute(node, &ctx) {
            Ok(run) => {
                let out = if hooks.budget_fired() {
                    cfg.trace.emit(&TraceEvent::campaign_budget(
                        &node.name,
                        budget.as_ref().map(|b| b.spent()).unwrap_or(0),
                    ));
                    outcome::BUDGET_EXHAUSTED
                } else if hooks.cancel_fired() {
                    outcome::SKIPPED
                } else {
                    outcome::COMPLETED
                };
                let reason = match out {
                    outcome::BUDGET_EXHAUSTED => Some("campaign budget exhausted".to_string()),
                    outcome::SKIPPED => {
                        let s = state.lock().unwrap_or_else(|p| p.into_inner());
                        Some(
                            s.abort_reason
                                .clone()
                                .unwrap_or_else(|| "campaign aborted".into()),
                        )
                    }
                    _ => None,
                };
                return Some(NodeDone {
                    outcome: out.into(),
                    evaluations: run.evaluations,
                    attempts: attempt,
                    best_cost: run.best_cost,
                    best_config: run.best_config,
                    reason,
                });
            }
            Err(NodeError::Fatal(m)) => {
                let mut s = state.lock().unwrap_or_else(|p| p.into_inner());
                if s.fatal.is_none() {
                    s.fatal = Some(CampaignError::Fatal(m));
                }
                return None;
            }
            Err(failure) => {
                let (label, message) = match failure {
                    NodeError::Failed(m) => (outcome::FAILED, m),
                    NodeError::Overloaded(m) => (outcome::OVERLOADED, m),
                    NodeError::Fatal(_) => unreachable!("handled above"),
                };
                if let FailurePolicy::Retry {
                    retries,
                    backoff_ms,
                } = policy
                {
                    if attempt <= retries {
                        {
                            let mut s = state.lock().unwrap_or_else(|p| p.into_inner());
                            s.journal_append(CampaignJournalEntry {
                                seq: 0,
                                event: "attempt_failed".into(),
                                node: node.name.clone(),
                                attempt: Some(attempt),
                                outcome: None,
                                evaluations: None,
                                best_cost: None,
                                best_config: None,
                                reason: Some(message.clone()),
                            });
                            if s.fatal.is_some() {
                                return None;
                            }
                        }
                        std::thread::sleep(retry_backoff(&node.name, attempt, backoff_ms));
                        attempt += 1;
                        resume = false;
                        continue;
                    }
                }
                if policy == FailurePolicy::Abort {
                    cancel.store(true, Ordering::Relaxed);
                    let mut s = state.lock().unwrap_or_else(|p| p.into_inner());
                    if s.abort_reason.is_none() {
                        s.abort_reason = Some(format!("campaign aborted by `{}`", node.name));
                    }
                }
                return Some(NodeDone {
                    outcome: label.into(),
                    evaluations: 0,
                    attempts: attempt,
                    best_cost: None,
                    best_config: Vec::new(),
                    reason: Some(message),
                });
            }
        }
    }
}
