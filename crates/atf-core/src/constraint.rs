//! Constraints on tuning-parameter ranges.
//!
//! "Constraints are a major feature of ATF; they enable filtering a tuning
//! parameter's range. A constraint can be any arbitrary callable that takes a
//! value of the parameter's range and returns a `bool`" (paper, Section II).
//! A constraint may reference the values of *previously declared* parameters
//! via the partial [`Config`] — this is how interdependencies are expressed,
//! and it is what allows ATF to filter ranges *during* generation instead of
//! filtering the full cross product afterwards (the CLTune approach).
//!
//! The paper's six constraint aliases are provided: [`divides`],
//! [`is_multiple_of`], [`less_than`], [`greater_than`], [`equal`],
//! [`unequal`]; constraints combine with `&` and `|` (the `&&`/`||` of the
//! C++ API).

use crate::config::Config;
use crate::expr::{Expr, IntoExpr};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

type Pred = dyn Fn(&Value, &Config) -> bool + Send + Sync;

/// Which other tuning parameters a constraint reads — the information that
/// powers automatic dependency detection ([`crate::param::auto_group`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum References {
    /// The exact set of referenced parameter names (alias-built constraints
    /// know this from their expressions).
    Exact(Vec<Arc<str>>),
    /// Unknown (opaque user predicate): conservatively treated as depending
    /// on every previously declared parameter.
    Unknown,
}

impl References {
    fn union(self, other: References) -> References {
        match (self, other) {
            (References::Exact(mut a), References::Exact(b)) => {
                for n in b {
                    if !a.contains(&n) {
                        a.push(n);
                    }
                }
                References::Exact(a)
            }
            _ => References::Unknown,
        }
    }
}

/// The structural shape of a constraint, when known. Alias-built constraints
/// ([`divides`], [`less_than`], ...) and their `&`/`|`/[`Constraint::not`]
/// combinations record their shape here; arbitrary predicates are
/// [`ConstraintKind::Opaque`].
///
/// This is what powers the search-space constraint compiler
/// ([`crate::spacegen`]): a known shape can be lowered into per-parameter
/// bounds and propagators evaluated once per generation prefix, while an
/// opaque predicate soundly falls back to per-candidate evaluation.
#[derive(Clone, Debug)]
pub enum ConstraintKind {
    /// The candidate value must evenly divide the operand.
    Divides(Expr),
    /// The candidate value must be a multiple of the operand.
    IsMultipleOf(Expr),
    /// The candidate value must be strictly less than the operand.
    LessThan(Expr),
    /// The candidate value must be strictly greater than the operand.
    GreaterThan(Expr),
    /// The candidate value must equal the operand.
    Equal(Expr),
    /// The candidate value must differ from the operand.
    Unequal(Expr),
    /// Conjunction of two constraints (the `&` combinator).
    And(Box<Constraint>, Box<Constraint>),
    /// Disjunction of two constraints (the `|` combinator).
    Or(Box<Constraint>, Box<Constraint>),
    /// Negation of a constraint ([`Constraint::not`]).
    Not(Box<Constraint>),
    /// An arbitrary user predicate whose structure is unknown.
    Opaque,
}

/// A predicate over a candidate parameter value and the partial configuration
/// of previously declared parameters.
#[derive(Clone)]
pub struct Constraint {
    pred: Arc<Pred>,
    desc: Arc<str>,
    refs: References,
    kind: ConstraintKind,
}

impl Constraint {
    /// A constraint from an arbitrary predicate. The first argument is the
    /// candidate value of the parameter being filtered; the second is the
    /// partial configuration of all previously declared parameters.
    pub fn new<F>(desc: impl Into<Arc<str>>, pred: F) -> Self
    where
        F: Fn(&Value, &Config) -> bool + Send + Sync + 'static,
    {
        Constraint {
            pred: Arc::new(pred),
            desc: desc.into(),
            refs: References::Unknown,
            kind: ConstraintKind::Opaque,
        }
    }

    /// A constraint over the candidate value only (no dependency on other
    /// parameters), e.g. `Constraint::on_value("is power of two", |v| ...)`.
    pub fn on_value<F>(desc: impl Into<Arc<str>>, pred: F) -> Self
    where
        F: Fn(&Value) -> bool + Send + Sync + 'static,
    {
        Constraint::new(desc, move |v, _| pred(v)).with_references([] as [&str; 0])
    }

    /// Declares the exact set of other parameters this constraint reads.
    /// Alias-built constraints get this automatically from their
    /// expressions; custom predicates may declare it to enable precise
    /// automatic grouping ([`crate::param::auto_group`]).
    pub fn with_references<I, N>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = N>,
        N: Into<Arc<str>>,
    {
        self.refs = References::Exact(names.into_iter().map(Into::into).collect());
        self
    }

    /// Which other parameters this constraint reads.
    pub fn references(&self) -> &References {
        &self.refs
    }

    /// The structural shape of this constraint, if built from the alias
    /// constructors and `&`/`|`/`not`. [`ConstraintKind::Opaque`] for
    /// arbitrary predicates. Used by the constraint compiler
    /// ([`crate::spacegen`]).
    pub fn kind(&self) -> &ConstraintKind {
        &self.kind
    }

    /// Evaluates the constraint. Values for which this returns `false` are
    /// filtered out of the parameter's range.
    pub fn check(&self, value: &Value, partial: &Config) -> bool {
        (self.pred)(value, partial)
    }

    /// Human-readable description (used in `Debug` output and diagnostics).
    pub fn description(&self) -> &str {
        &self.desc
    }

    /// Logical negation.
    #[allow(clippy::should_implement_trait)] // consuming builder, not ops::Not
    pub fn not(self) -> Constraint {
        let desc: Arc<str> = format!("!({})", self.desc).into();
        let refs = self.refs.clone();
        let kind = ConstraintKind::Not(Box::new(self.clone()));
        Constraint {
            pred: Arc::new(move |v, c| !(self.pred)(v, c)),
            desc,
            refs,
            kind,
        }
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Constraint({})", self.desc)
    }
}

impl std::ops::BitAnd for Constraint {
    type Output = Constraint;

    /// Conjunction — the `&&` combinator of the paper's API.
    fn bitand(self, rhs: Constraint) -> Constraint {
        let desc: Arc<str> = format!("({}) && ({})", self.desc, rhs.desc).into();
        let refs = self.refs.clone().union(rhs.refs.clone());
        let kind = ConstraintKind::And(Box::new(self.clone()), Box::new(rhs.clone()));
        Constraint {
            pred: Arc::new(move |v, c| (self.pred)(v, c) && (rhs.pred)(v, c)),
            desc,
            refs,
            kind,
        }
    }
}

impl std::ops::BitOr for Constraint {
    type Output = Constraint;

    /// Disjunction — the `||` combinator of the paper's API.
    fn bitor(self, rhs: Constraint) -> Constraint {
        let desc: Arc<str> = format!("({}) || ({})", self.desc, rhs.desc).into();
        let refs = self.refs.clone().union(rhs.refs.clone());
        let kind = ConstraintKind::Or(Box::new(self.clone()), Box::new(rhs.clone()));
        Constraint {
            pred: Arc::new(move |v, c| (self.pred)(v, c) || (rhs.pred)(v, c)),
            desc,
            refs,
            kind,
        }
    }
}

/// Helper: evaluate an expression operand against the partial configuration,
/// returning `None` (constraint fails) on evaluation errors. An operand that
/// cannot be evaluated (e.g. division by zero) rejects the candidate value —
/// the safe interpretation for search-space filtering.
fn eval_operand(e: &Expr, partial: &Config) -> Option<f64> {
    e.eval_f64(partial).ok()
}

fn eval_operand_u64(e: &Expr, partial: &Config) -> Option<u64> {
    e.eval_u64(partial).ok()
}

/// `atf::divides(e)` — the candidate value must evenly divide `e`.
///
/// Example from the paper (saxpy): `tp("LS", interval(1, N), divides(N / WPT))`.
pub fn divides(e: impl IntoExpr) -> Constraint {
    let e = e.into_expr();
    let desc: Arc<str> = format!("value divides {e:?}").into();
    let refs = References::Exact(e.referenced_params());
    let kind = ConstraintKind::Divides(e.clone());
    Constraint {
        pred: Arc::new(move |v, c| {
            match (v.as_u64(), eval_operand_u64(&e, c)) {
                (Some(v), Some(target)) if v != 0 => target % v == 0,
                _ => false, // zero or non-integral candidate never "divides"
            }
        }),
        desc,
        refs,
        kind,
    }
}

/// `atf::is_multiple_of(e)` — the candidate value must be a multiple of `e`.
pub fn is_multiple_of(e: impl IntoExpr) -> Constraint {
    let e = e.into_expr();
    let refs = References::Exact(e.referenced_params());
    let desc: Arc<str> = format!("value is multiple of {e:?}").into();
    let kind = ConstraintKind::IsMultipleOf(e.clone());
    Constraint {
        pred: Arc::new(move |v, c| match (v.as_u64(), eval_operand_u64(&e, c)) {
            (Some(v), Some(d)) if d != 0 => v % d == 0,
            _ => false,
        }),
        desc,
        refs,
        kind,
    }
}

/// `atf::less_than(e)` — the candidate value must be strictly less than `e`.
pub fn less_than(e: impl IntoExpr) -> Constraint {
    let e = e.into_expr();
    let refs = References::Exact(e.referenced_params());
    let desc: Arc<str> = format!("value < {e:?}").into();
    let kind = ConstraintKind::LessThan(e.clone());
    Constraint {
        pred: Arc::new(move |v, c| match (v.as_f64(), eval_operand(&e, c)) {
            (Some(v), Some(t)) => v < t,
            _ => false,
        }),
        desc,
        refs,
        kind,
    }
}

/// `atf::greater_than(e)` — the candidate value must be strictly greater
/// than `e`.
pub fn greater_than(e: impl IntoExpr) -> Constraint {
    let e = e.into_expr();
    let refs = References::Exact(e.referenced_params());
    let desc: Arc<str> = format!("value > {e:?}").into();
    let kind = ConstraintKind::GreaterThan(e.clone());
    Constraint {
        pred: Arc::new(move |v, c| match (v.as_f64(), eval_operand(&e, c)) {
            (Some(v), Some(t)) => v > t,
            _ => false,
        }),
        desc,
        refs,
        kind,
    }
}

/// `atf::equal(e)` — the candidate value must equal `e`.
pub fn equal(e: impl IntoExpr) -> Constraint {
    let e = e.into_expr();
    let refs = References::Exact(e.referenced_params());
    let desc: Arc<str> = format!("value == {e:?}").into();
    let kind = ConstraintKind::Equal(e.clone());
    Constraint {
        pred: Arc::new(move |v, c| match (v.as_f64(), eval_operand(&e, c)) {
            (Some(v), Some(t)) => v == t,
            _ => false,
        }),
        desc,
        refs,
        kind,
    }
}

/// `atf::unequal(e)` — the candidate value must differ from `e`.
pub fn unequal(e: impl IntoExpr) -> Constraint {
    let e = e.into_expr();
    let refs = References::Exact(e.referenced_params());
    let desc: Arc<str> = format!("value != {e:?}").into();
    let kind = ConstraintKind::Unequal(e.clone());
    Constraint {
        pred: Arc::new(move |v, c| match (v.as_f64(), eval_operand(&e, c)) {
            (Some(v), Some(t)) => v != t,
            _ => false,
        }),
        desc,
        refs,
        kind,
    }
}

/// A constraint that an arbitrary boolean expression over *other* parameters
/// holds (the candidate value itself is available as the pseudo-parameter
/// `"$value"` if needed). Useful for relations that do not fit the aliases.
pub fn predicate<F>(desc: impl Into<Arc<str>>, pred: F) -> Constraint
where
    F: Fn(&Value, &Config) -> bool + Send + Sync + 'static,
{
    Constraint::new(desc, pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{cst, param};

    #[test]
    fn divides_alias() {
        // the paper's saxpy constraint: LS divides N / WPT
        let c = divides(cst(1024u64) / param("WPT"));
        let partial = Config::from_pairs([("WPT", 4u64)]); // N/WPT = 256
        assert!(c.check(&Value::from(32u64), &partial));
        assert!(c.check(&Value::from(256u64), &partial));
        assert!(!c.check(&Value::from(48u64), &partial));
        assert!(!c.check(&Value::from(0u64), &partial));
    }

    #[test]
    fn divides_fails_on_unknown_param() {
        let c = divides(param("MISSING"));
        assert!(!c.check(&Value::from(1u64), &Config::new()));
    }

    #[test]
    fn is_multiple_of_alias() {
        let c = is_multiple_of(param("KWID"));
        let partial = Config::from_pairs([("KWID", 4u64)]);
        assert!(c.check(&Value::from(16u64), &partial));
        assert!(!c.check(&Value::from(10u64), &partial));
    }

    #[test]
    fn multiple_of_zero_rejects() {
        let c = is_multiple_of(cst(0u64));
        assert!(!c.check(&Value::from(8u64), &Config::new()));
    }

    #[test]
    fn comparisons() {
        let partial = Config::from_pairs([("X", 10u64)]);
        assert!(less_than(param("X")).check(&Value::from(9u64), &partial));
        assert!(!less_than(param("X")).check(&Value::from(10u64), &partial));
        assert!(greater_than(param("X")).check(&Value::from(11u64), &partial));
        assert!(equal(param("X")).check(&Value::from(10u64), &partial));
        assert!(unequal(param("X")).check(&Value::from(3u64), &partial));
    }

    #[test]
    fn and_or_combinators() {
        let partial = Config::from_pairs([("N", 24u64)]);
        let c = divides(param("N")) & less_than(cst(10u64));
        assert!(c.check(&Value::from(8u64), &partial));
        assert!(!c.check(&Value::from(12u64), &partial)); // divides but not < 10
        let c2 = equal(cst(1u64)) | is_multiple_of(cst(6u64));
        assert!(c2.check(&Value::from(1u64), &partial));
        assert!(c2.check(&Value::from(12u64), &partial));
        assert!(!c2.check(&Value::from(4u64), &partial));
    }

    #[test]
    fn negation() {
        let c = equal(cst(5u64)).not();
        assert!(c.check(&Value::from(4u64), &Config::new()));
        assert!(!c.check(&Value::from(5u64), &Config::new()));
    }

    #[test]
    fn custom_predicate() {
        let c = predicate("v is a power of two", |v, _| {
            v.as_u64().is_some_and(|u| u.is_power_of_two())
        });
        assert!(c.check(&Value::from(8u64), &Config::new()));
        assert!(!c.check(&Value::from(6u64), &Config::new()));
    }

    #[test]
    fn descriptions_render() {
        let c = divides(param("N")) & less_than(cst(10u64));
        assert_eq!(c.description(), "(value divides N) && (value < 10)");
    }

    #[test]
    fn symbolic_candidate_rejected_by_numeric_aliases() {
        let c = less_than(cst(10u64));
        assert!(!c.check(&Value::from("vec4"), &Config::new()));
    }
}
