//! Cost values and cost functions.
//!
//! ATF "interprets the cost function's return value (e.g., program's runtime)
//! as the configuration's cost that has to be minimized"; the return type is
//! arbitrary as long as `operator<` is defined, which enables multi-objective
//! tuning via lexicographically ordered pairs (paper, Section II, Step 2).
//!
//! Search techniques additionally receive a scalar projection of the cost
//! (`report_cost(size_t)` in the paper); [`CostValue::as_scalar`] provides
//! it. The tuner's *best configuration* is always selected by the full
//! `PartialOrd`, so multi-objective ordering is exact even though techniques
//! only see the scalar guidance signal.

use crate::config::Config;
use std::fmt;
use std::time::Duration;

/// A cost value: totally ordered (lower is better) with a scalar projection
/// for search guidance.
pub trait CostValue: PartialOrd + Clone + Send + fmt::Debug + 'static {
    /// A scalar summary used to guide search techniques (e.g. annealing's
    /// acceptance probability). For multi-objective costs this is typically
    /// the primary objective.
    fn as_scalar(&self) -> f64;
}

impl CostValue for f64 {
    fn as_scalar(&self) -> f64 {
        *self
    }
}
impl CostValue for f32 {
    fn as_scalar(&self) -> f64 {
        *self as f64
    }
}
impl CostValue for u64 {
    fn as_scalar(&self) -> f64 {
        *self as f64
    }
}
impl CostValue for u32 {
    fn as_scalar(&self) -> f64 {
        *self as f64
    }
}
impl CostValue for usize {
    fn as_scalar(&self) -> f64 {
        *self as f64
    }
}
impl CostValue for i64 {
    fn as_scalar(&self) -> f64 {
        *self as f64
    }
}
impl CostValue for Duration {
    fn as_scalar(&self) -> f64 {
        self.as_secs_f64()
    }
}

/// Lexicographically ordered pair — the paper's multi-objective cost
/// (e.g. `(runtime_ms, energy_microjoules)`): `c < c'` iff the first
/// component is lower, or equal and the second is lower.
///
/// Tuples implement `PartialOrd` lexicographically in Rust already, so
/// `(A, B)` and `(A, B, C)` are usable directly.
impl<A: CostValue, B: CostValue> CostValue for (A, B) {
    fn as_scalar(&self) -> f64 {
        self.0.as_scalar()
    }
}

impl<A: CostValue, B: CostValue, C: CostValue> CostValue for (A, B, C) {
    fn as_scalar(&self) -> f64 {
        self.0.as_scalar()
    }
}

/// Cost values that can round-trip through the run journal
/// ([`crate::journal`]) as a flat `f64` vector — required for journaling
/// and resuming a [`crate::session::TuningSession`].
pub trait JournalCost: CostValue {
    /// Encodes the cost into a journal entry's cost vector.
    fn to_journal(&self) -> Vec<f64>;
    /// Decodes a journaled cost vector (`None` if the shape is wrong).
    fn from_journal(values: &[f64]) -> Option<Self>;
}

impl JournalCost for f64 {
    fn to_journal(&self) -> Vec<f64> {
        vec![*self]
    }
    fn from_journal(values: &[f64]) -> Option<Self> {
        match values {
            [v] => Some(*v),
            _ => None,
        }
    }
}

impl JournalCost for (f64, f64) {
    fn to_journal(&self) -> Vec<f64> {
        vec![self.0, self.1]
    }
    fn from_journal(values: &[f64]) -> Option<Self> {
        match values {
            [a, b] => Some((*a, *b)),
            _ => None,
        }
    }
}

impl JournalCost for (f64, f64, f64) {
    fn to_journal(&self) -> Vec<f64> {
        vec![self.0, self.1, self.2]
    }
    fn from_journal(values: &[f64]) -> Option<Self> {
        match values {
            [a, b, c] => Some((*a, *b, *c)),
            _ => None,
        }
    }
}

/// Why a cost function failed to produce a cost for a configuration.
///
/// A failed measurement is *not* fatal to tuning: the tuner reports the
/// configuration as maximally bad to the search technique and continues
/// (the OpenTuner-baseline "penalty" behaviour is built from this).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CostError {
    /// The configuration is invalid for the program (e.g. the kernel launch
    /// was rejected: local size does not divide global size).
    InvalidConfiguration(String),
    /// Compiling the program failed.
    CompileFailed(String),
    /// Running the program failed (spawn failure, nonzero exit without
    /// crash details, ...).
    RunFailed(String),
    /// The cost could not be parsed / measured.
    MeasurementFailed(String),
    /// The evaluation exceeded its wall-clock deadline and was killed.
    Timeout {
        /// The deadline that was exceeded.
        limit: Duration,
    },
    /// The program crashed (killed by a signal, or exited nonzero with
    /// crash-grade diagnostics attached).
    Crashed {
        /// Terminating signal, when the process was signal-killed (unix).
        signal: Option<i32>,
        /// Exit code, when the process exited on its own.
        exit: Option<i32>,
        /// Truncated tail of the program's stderr.
        stderr: String,
    },
    /// A transient infrastructure failure (flaky device, busy resource);
    /// worth retrying under an [`crate::policy::EvalPolicy`].
    Transient(String),
}

/// Classification of measurement failures — recorded per evaluation in the
/// run journal and counted per kind in [`crate::status::TuningStatus`], so
/// "the device keeps timing out" and "the kernel never compiles" are
/// distinguishable outcomes instead of one opaque penalty.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FailureKind {
    /// The evaluation exceeded its deadline and was killed.
    Timeout,
    /// The program failed to compile.
    CompileError,
    /// The program crashed at run time (signal or nonzero exit).
    RunCrash,
    /// The program ran but produced an unusable cost (empty/garbled log).
    BadOutput,
    /// A transient failure that a retry may fix.
    Transient,
    /// The configuration itself is invalid for the program.
    Invalid,
}

impl FailureKind {
    /// All kinds, in the order they are rendered in summaries.
    pub const ALL: [FailureKind; 6] = [
        FailureKind::Timeout,
        FailureKind::CompileError,
        FailureKind::RunCrash,
        FailureKind::BadOutput,
        FailureKind::Transient,
        FailureKind::Invalid,
    ];

    /// Stable machine-readable label (journal and wire encoding).
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Timeout => "timeout",
            FailureKind::CompileError => "compile",
            FailureKind::RunCrash => "crash",
            FailureKind::BadOutput => "bad_output",
            FailureKind::Transient => "transient",
            FailureKind::Invalid => "invalid",
        }
    }

    /// Parses a [`label`](Self::label) back into the kind.
    pub fn from_label(label: &str) -> Option<FailureKind> {
        FailureKind::ALL.into_iter().find(|k| k.label() == label)
    }

    /// Whether a retry has any chance of succeeding without changing the
    /// configuration.
    pub fn is_retryable(self) -> bool {
        matches!(self, FailureKind::Transient)
    }

    /// Index into [`FailureKind::ALL`] (for fixed-size counters).
    pub(crate) fn index(self) -> usize {
        FailureKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("every kind is listed in ALL")
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl CostError {
    /// Short human-readable reason.
    pub fn message(&self) -> &str {
        match self {
            CostError::InvalidConfiguration(m)
            | CostError::CompileFailed(m)
            | CostError::RunFailed(m)
            | CostError::Transient(m)
            | CostError::MeasurementFailed(m) => m,
            CostError::Timeout { .. } => "deadline exceeded",
            CostError::Crashed { stderr, .. } => stderr,
        }
    }

    /// The failure's taxonomy class.
    pub fn kind(&self) -> FailureKind {
        match self {
            CostError::InvalidConfiguration(_) => FailureKind::Invalid,
            CostError::CompileFailed(_) => FailureKind::CompileError,
            CostError::RunFailed(_) | CostError::Crashed { .. } => FailureKind::RunCrash,
            CostError::MeasurementFailed(_) => FailureKind::BadOutput,
            CostError::Timeout { .. } => FailureKind::Timeout,
            CostError::Transient(_) => FailureKind::Transient,
        }
    }

    /// Reconstructs a representative error from a journaled failure kind
    /// (the journal stores the class, not the full message).
    pub fn from_kind(kind: FailureKind) -> CostError {
        match kind {
            FailureKind::Timeout => CostError::Timeout {
                limit: Duration::ZERO,
            },
            FailureKind::CompileError => CostError::CompileFailed("journaled failure".into()),
            FailureKind::RunCrash => CostError::RunFailed("journaled failure".into()),
            FailureKind::BadOutput => CostError::MeasurementFailed("journaled failure".into()),
            FailureKind::Transient => CostError::Transient("journaled failure".into()),
            FailureKind::Invalid => CostError::InvalidConfiguration("journaled failure".into()),
        }
    }
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::InvalidConfiguration(m) => write!(f, "invalid configuration: {m}"),
            CostError::CompileFailed(m) => write!(f, "compilation failed: {m}"),
            CostError::RunFailed(m) => write!(f, "run failed: {m}"),
            CostError::MeasurementFailed(m) => write!(f, "measurement failed: {m}"),
            CostError::Timeout { limit } => write!(f, "timed out after {limit:?}"),
            CostError::Crashed {
                signal,
                exit,
                stderr,
            } => {
                match (signal, exit) {
                    (Some(sig), _) => write!(f, "crashed: killed by signal {sig}")?,
                    (None, Some(code)) => write!(f, "crashed: exit code {code}")?,
                    (None, None) => write!(f, "crashed")?,
                }
                if !stderr.is_empty() {
                    write!(f, " — stderr: {stderr}")?;
                }
                Ok(())
            }
            CostError::Transient(m) => write!(f, "transient failure: {m}"),
        }
    }
}

impl std::error::Error for CostError {}

/// A cost function: maps a configuration to a cost (or a failure).
///
/// Implemented for closures via [`cost_fn`] / [`try_cost_fn`], and by the
/// pre-implemented cost functions (`atf-ocl`'s OpenCL/CUDA cost functions and
/// [`crate::process`]'s generic program cost function).
pub trait CostFunction {
    /// The cost type to minimize.
    type Cost: CostValue;

    /// Evaluates one configuration.
    fn evaluate(&mut self, config: &Config) -> Result<Self::Cost, CostError>;
}

/// Wraps an infallible closure as a [`CostFunction`].
pub fn cost_fn<C, F>(f: F) -> impl CostFunction<Cost = C>
where
    C: CostValue,
    F: FnMut(&Config) -> C,
{
    struct W<F>(F);
    impl<C: CostValue, F: FnMut(&Config) -> C> CostFunction for W<F> {
        type Cost = C;
        fn evaluate(&mut self, config: &Config) -> Result<C, CostError> {
            Ok((self.0)(config))
        }
    }
    W(f)
}

/// Wraps a fallible closure as a [`CostFunction`].
pub fn try_cost_fn<C, F>(f: F) -> impl CostFunction<Cost = C>
where
    C: CostValue,
    F: FnMut(&Config) -> Result<C, CostError>,
{
    struct W<F>(F);
    impl<C: CostValue, F: FnMut(&Config) -> Result<C, CostError>> CostFunction for W<F> {
        type Cost = C;
        fn evaluate(&mut self, config: &Config) -> Result<C, CostError> {
            (self.0)(config)
        }
    }
    W(f)
}

impl<F: CostFunction + ?Sized> CostFunction for &mut F {
    type Cost = F::Cost;
    fn evaluate(&mut self, config: &Config) -> Result<Self::Cost, CostError> {
        (**self).evaluate(config)
    }
}

impl<F: CostFunction + ?Sized> CostFunction for Box<F> {
    type Cost = F::Cost;
    fn evaluate(&mut self, config: &Config) -> Result<Self::Cost, CostError> {
        (**self).evaluate(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_projections() {
        assert_eq!(3.5f64.as_scalar(), 3.5);
        assert_eq!(7u64.as_scalar(), 7.0);
        assert_eq!(Duration::from_millis(250).as_scalar(), 0.25);
    }

    #[test]
    fn lexicographic_pairs() {
        // runtime primary, energy secondary
        let a = (1.0f64, 100.0f64);
        let b = (1.0f64, 50.0f64);
        let c = (0.5f64, 999.0f64);
        assert!(b < a);
        assert!(c < b); // lower runtime wins even at higher energy
        assert_eq!(a.as_scalar(), 1.0);
    }

    #[test]
    fn triple_lexicographic() {
        let a = (1u64, 2u64, 3u64);
        let b = (1u64, 2u64, 4u64);
        assert!(a < b);
        assert_eq!(b.as_scalar(), 1.0);
    }

    #[test]
    fn closure_cost_functions() {
        let mut cf = cost_fn(|c: &Config| c.get_u64("X") as f64 * 2.0);
        let cfg = Config::from_pairs([("X", 21u64)]);
        assert_eq!(cf.evaluate(&cfg).unwrap(), 42.0);

        let mut fallible = try_cost_fn(|c: &Config| {
            if c.get_u64("X") == 0 {
                Err(CostError::InvalidConfiguration("X must be nonzero".into()))
            } else {
                Ok(1.0f64)
            }
        });
        assert!(fallible
            .evaluate(&Config::from_pairs([("X", 0u64)]))
            .is_err());
        assert_eq!(
            fallible
                .evaluate(&Config::from_pairs([("X", 1u64)]))
                .unwrap(),
            1.0
        );
    }

    #[test]
    fn error_display() {
        let e = CostError::CompileFailed("syntax".into());
        assert_eq!(e.to_string(), "compilation failed: syntax");
        assert_eq!(e.message(), "syntax");
        let t = CostError::Timeout {
            limit: Duration::from_secs(2),
        };
        assert!(t.to_string().contains("timed out"));
        let c = CostError::Crashed {
            signal: Some(11),
            exit: None,
            stderr: "segfault".into(),
        };
        assert!(c.to_string().contains("signal 11"));
        assert!(c.to_string().contains("segfault"));
    }

    #[test]
    fn failure_kinds_classify_and_round_trip() {
        assert_eq!(
            CostError::Timeout {
                limit: Duration::from_secs(1)
            }
            .kind(),
            FailureKind::Timeout
        );
        assert_eq!(
            CostError::CompileFailed("x".into()).kind(),
            FailureKind::CompileError
        );
        assert_eq!(
            CostError::Crashed {
                signal: None,
                exit: Some(3),
                stderr: String::new()
            }
            .kind(),
            FailureKind::RunCrash
        );
        assert_eq!(
            CostError::MeasurementFailed("x".into()).kind(),
            FailureKind::BadOutput
        );
        assert_eq!(
            CostError::Transient("x".into()).kind(),
            FailureKind::Transient
        );
        assert_eq!(
            CostError::InvalidConfiguration("x".into()).kind(),
            FailureKind::Invalid
        );
        for kind in FailureKind::ALL {
            assert_eq!(FailureKind::from_label(kind.label()), Some(kind));
            assert_eq!(CostError::from_kind(kind).kind(), kind);
        }
        assert_eq!(FailureKind::from_label("wat"), None);
        assert!(FailureKind::Transient.is_retryable());
        assert!(!FailureKind::Timeout.is_retryable());
    }
}
