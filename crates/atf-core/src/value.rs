//! Dynamically-typed tuning-parameter values.
//!
//! ATF allows tuning parameters of "arbitrary fundamental type (e.g. `bool`,
//! integer, or `float`) and also of type `enum` for user-defined types"
//! (paper, Section II/III). In Rust we model this with a small dynamic value
//! type. Symbolic (`enum`-like) values are represented as interned strings.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single tuning-parameter value.
///
/// `Value` implements a *total* order (`Ord`): values of the same kind compare
/// naturally; numeric kinds (`Int`, `UInt`, `Float`, `Bool`) compare by their
/// numeric value (booleans as 0/1); symbolic values sort after all numeric
/// values, lexicographically among themselves. Floats use IEEE total ordering,
/// so `Value` is usable as a map key.
#[derive(Clone, Debug)]
pub enum Value {
    /// A boolean parameter value (e.g. CLBlast's `PADA`/`PADB`).
    Bool(bool),
    /// A signed integer value.
    Int(i64),
    /// An unsigned integer value (the common case: sizes, tile widths, ...).
    UInt(u64),
    /// A floating-point value.
    Float(f64),
    /// A symbolic value of a user-defined `enum`-like type.
    Symbol(Arc<str>),
}

impl Value {
    /// Returns the value as `u64` if it is losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Bool(b) => Some(b as u64),
            Value::Int(i) => u64::try_from(i).ok(),
            Value::UInt(u) => Some(u),
            Value::Float(f) => {
                if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 {
                    Some(f as u64)
                } else {
                    None
                }
            }
            Value::Symbol(_) => None,
        }
    }

    /// Returns the value as `i64` if it is losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Bool(b) => Some(b as i64),
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    Some(f as i64)
                } else {
                    None
                }
            }
            Value::Symbol(_) => None,
        }
    }

    /// Returns the numeric value as `f64` (booleans as 0.0/1.0), or `None`
    /// for symbolic values.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Bool(b) => Some(b as u64 as f64),
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            Value::Symbol(_) => None,
        }
    }

    /// Returns the boolean value, treating nonzero numerics as `true`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            Value::Int(i) => Some(i != 0),
            Value::UInt(u) => Some(u != 0),
            Value::Float(f) => Some(f != 0.0),
            Value::Symbol(_) => None,
        }
    }

    /// Returns the symbolic value, if this is a `Symbol`.
    pub fn as_symbol(&self) -> Option<&str> {
        match self {
            Value::Symbol(s) => Some(s),
            _ => None,
        }
    }

    /// `true` if the value is numeric (including booleans).
    pub fn is_numeric(&self) -> bool {
        !matches!(self, Value::Symbol(_))
    }

    /// The value rendered the way it would be textually substituted into a
    /// kernel source by the preprocessor-based OpenCL cost function:
    /// booleans as `1`/`0` (C convention), numbers plainly, symbols verbatim.
    pub fn to_source_token(&self) -> String {
        match self {
            Value::Bool(b) => if *b { "1" } else { "0" }.to_string(),
            Value::Int(i) => i.to_string(),
            Value::UInt(u) => u.to_string(),
            Value::Float(f) => {
                // Ensure a C-compatible float literal.
                if f.fract() == 0.0 && f.is_finite() {
                    format!("{f:.1}")
                } else {
                    format!("{f}")
                }
            }
            Value::Symbol(s) => s.to_string(),
        }
    }

    /// Discriminant rank used by the cross-kind total order.
    fn kind_rank(&self) -> u8 {
        match self {
            Value::Bool(_) | Value::Int(_) | Value::UInt(_) | Value::Float(_) => 0,
            Value::Symbol(_) => 1,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.kind_rank(), other.kind_rank()) {
            (0, 0) => {
                // Numeric comparison. Compare exactly where both sides are
                // integers to avoid f64 rounding for values > 2^53.
                match (self, other) {
                    (Value::UInt(a), Value::UInt(b)) => a.cmp(b),
                    (Value::Int(a), Value::Int(b)) => a.cmp(b),
                    (Value::UInt(a), Value::Int(b)) => cmp_u64_i64(*a, *b),
                    (Value::Int(a), Value::UInt(b)) => cmp_u64_i64(*b, *a).reverse(),
                    _ => {
                        let a = self.as_f64().expect("numeric");
                        let b = other.as_f64().expect("numeric");
                        a.total_cmp(&b)
                    }
                }
            }
            (1, 1) => {
                let (Value::Symbol(a), Value::Symbol(b)) = (self, other) else {
                    unreachable!()
                };
                a.cmp(b)
            }
            (a, b) => a.cmp(&b),
        }
    }
}

fn cmp_u64_i64(a: u64, b: i64) -> Ordering {
    if b < 0 {
        Ordering::Greater
    } else {
        a.cmp(&(b as u64))
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash must be consistent with the cross-kind equality above, where
        // e.g. UInt(1) == Int(1) == Bool(true) == Float(1.0). Hash every
        // numeric by its canonical representation.
        match self {
            Value::Symbol(s) => {
                1u8.hash(state);
                s.hash(state);
            }
            v => {
                0u8.hash(state);
                // Canonicalize: integers hash by integer value when lossless,
                // otherwise by float bits.
                if let Some(i) = v.as_i64() {
                    0u8.hash(state);
                    i.hash(state);
                } else if let Some(u) = v.as_u64() {
                    1u8.hash(state);
                    u.hash(state);
                } else {
                    2u8.hash(state);
                    v.as_f64().expect("numeric").to_bits().hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::UInt(u) => write!(f, "{u}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Symbol(s) => write!(f, "{s}"),
        }
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::Int(v as i64) }
        }
    )*};
}
macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::UInt(v as u64) }
        }
    )*};
}

impl_from_int!(i8, i16, i32, i64, isize);
impl_from_uint!(u8, u16, u32, u64, usize);

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v as f64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Symbol(Arc::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Symbol(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn numeric_conversions() {
        assert_eq!(Value::from(5u32).as_u64(), Some(5));
        assert_eq!(Value::from(-5i32).as_u64(), None);
        assert_eq!(Value::from(-5i32).as_i64(), Some(-5));
        assert_eq!(Value::from(2.0f64).as_u64(), Some(2));
        assert_eq!(Value::from(2.5f64).as_u64(), None);
        assert_eq!(Value::from(true).as_u64(), Some(1));
        assert_eq!(Value::from("vec4").as_u64(), None);
    }

    #[test]
    fn cross_kind_equality_and_hash() {
        let pairs = [
            (Value::from(1u64), Value::from(1i64)),
            (Value::from(true), Value::from(1u8)),
            (Value::from(0u8), Value::from(false)),
            (Value::from(3u16), Value::from(3.0f64)),
        ];
        for (a, b) in pairs {
            assert_eq!(a, b, "{a:?} vs {b:?}");
            assert_eq!(h(&a), h(&b), "hashes of {a:?} and {b:?}");
        }
    }

    #[test]
    fn total_order() {
        let mut vs = vec![
            Value::from("zeta"),
            Value::from(2u8),
            Value::from(-1i8),
            Value::from(0.5f64),
            Value::from("alpha"),
            Value::from(false),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::from(-1i8),
                Value::from(false),
                Value::from(0.5f64),
                Value::from(2u8),
                Value::from("alpha"),
                Value::from("zeta"),
            ]
        );
    }

    #[test]
    fn large_u64_exact_compare() {
        let a = Value::UInt(u64::MAX);
        let b = Value::UInt(u64::MAX - 1);
        assert!(b < a); // f64 rounding would call these equal
    }

    #[test]
    fn source_tokens() {
        assert_eq!(Value::from(true).to_source_token(), "1");
        assert_eq!(Value::from(false).to_source_token(), "0");
        assert_eq!(Value::from(7u8).to_source_token(), "7");
        assert_eq!(Value::from(2.0f64).to_source_token(), "2.0");
        assert_eq!(Value::from(2.5f64).to_source_token(), "2.5");
        assert_eq!(Value::from("float4").to_source_token(), "float4");
    }

    #[test]
    fn symbol_order_after_numbers() {
        assert!(Value::from(u64::MAX) < Value::from("a"));
    }

    #[test]
    fn negative_int_vs_uint() {
        assert!(Value::Int(-3) < Value::UInt(0));
        assert!(Value::UInt(0) > Value::Int(-3));
        assert_eq!(Value::Int(3), Value::UInt(3));
    }
}
