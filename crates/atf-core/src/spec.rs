//! Declarative tuning specifications: JSON-friendly descriptions of
//! parameters, search technique, and abort conditions, shared by the CLI
//! (`atf-cli`) and the tuning service (`atf-service`).
//!
//! A specification describes *what to explore*; how the cost is measured is
//! up to the host (a process cost function in the CLI, a remote client in
//! the service).

use crate::abort::{self, Abort};
use crate::param::{tp, Param};
use crate::parse::parse_constraint;
use crate::range::Range;
use crate::search::{Ensemble, Exhaustive, RandomSearch, SearchTechnique, SimulatedAnnealing};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Errors building tuning machinery from a specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The specification is structurally invalid.
    Invalid(String),
    /// A constraint string failed to parse.
    Constraint {
        /// The parameter whose constraint is broken.
        parameter: String,
        /// The parser's message.
        message: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Invalid(m) => write!(f, "bad specification: {m}"),
            SpecError::Constraint { parameter, message } => {
                write!(f, "bad constraint for `{parameter}`: {message}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// An inclusive integer interval with optional step.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IntervalSpec {
    /// First value.
    pub begin: u64,
    /// Last value (inclusive).
    pub end: u64,
    /// Step size (default 1).
    #[serde(default = "one")]
    pub step: u64,
}

fn one() -> u64 {
    1
}

/// One tuning parameter.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParameterSpec {
    /// Unique name (also the `ATF_TP_<NAME>` environment variable in the
    /// CLI's process cost function).
    pub name: String,
    /// Interval range (exactly one of `interval`/`set` must be given).
    #[serde(default)]
    pub interval: Option<IntervalSpec>,
    /// Explicit value set.
    #[serde(default)]
    pub set: Option<Vec<u64>>,
    /// Constraint string, e.g. `"divides(N / WPT)"` (see
    /// [`crate::parse::parse_constraint`]).
    #[serde(default)]
    pub constraint: Option<String>,
}

/// Search-technique selection.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SearchSpec {
    /// One of `exhaustive`, `random`, `annealing`, `ensemble` (default).
    #[serde(default = "default_technique")]
    pub technique: String,
    /// RNG seed for deterministic runs.
    #[serde(default)]
    pub seed: u64,
}

fn default_technique() -> String {
    "ensemble".to_string()
}

impl Default for SearchSpec {
    fn default() -> Self {
        SearchSpec {
            technique: default_technique(),
            seed: 0,
        }
    }
}

/// Abort conditions; the given fields are OR-combined (first to fire stops
/// the run). With no field set, the paper's default `evaluations(S)` is
/// used.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AbortSpec {
    /// Stop after this many tested configurations.
    #[serde(default)]
    pub evaluations: Option<u64>,
    /// Stop after this many seconds.
    #[serde(default)]
    pub duration_secs: Option<f64>,
    /// Stop once a cost ≤ this is found.
    #[serde(default)]
    pub cost: Option<f64>,
    /// Stop when the last `stagnation_evaluations` did not improve the best
    /// cost by ≥ 5 %.
    #[serde(default)]
    pub stagnation_evaluations: Option<u64>,
}

/// Builds the parameter list (parsing constraint strings).
pub fn build_params(parameters: &[ParameterSpec]) -> Result<Vec<Param>, SpecError> {
    if parameters.is_empty() {
        return Err(SpecError::Invalid("no parameters declared".to_string()));
    }
    parameters
        .iter()
        .map(|p| {
            let range = match (&p.interval, &p.set) {
                (Some(iv), None) => Range::interval_step(iv.begin, iv.end, iv.step.max(1)),
                (None, Some(vals)) => Range::set(vals.iter().copied()),
                _ => {
                    return Err(SpecError::Invalid(format!(
                        "parameter `{}` needs exactly one of `interval` or `set`",
                        p.name
                    )))
                }
            };
            let mut param = tp(p.name.as_str(), range);
            if let Some(text) = &p.constraint {
                let c = parse_constraint(text).map_err(|e| SpecError::Constraint {
                    parameter: p.name.clone(),
                    message: e.to_string(),
                })?;
                param = param.with_constraint(c);
            }
            Ok(param)
        })
        .collect()
}

/// Builds the OR-combined abort condition (`None` when no field is set, in
/// which case the tuner applies its `evaluations(S)` default).
pub fn build_abort(spec: &AbortSpec) -> Option<Abort> {
    let mut acc: Option<Abort> = None;
    let mut add = |a: Abort| {
        acc = Some(match acc.take() {
            Some(prev) => prev | a,
            None => a,
        });
    };
    if let Some(n) = spec.evaluations {
        add(abort::evaluations(n));
    }
    if let Some(s) = spec.duration_secs {
        add(abort::duration(Duration::from_secs_f64(s)));
    }
    if let Some(c) = spec.cost {
        add(abort::cost(c));
    }
    if let Some(n) = spec.stagnation_evaluations {
        add(abort::speedup_over_evaluations(1.05, n));
    }
    acc
}

/// Builds the selected search technique.
pub fn build_technique(spec: &SearchSpec) -> Result<Box<dyn SearchTechnique>, SpecError> {
    let seed = spec.seed;
    Ok(match spec.technique.as_str() {
        "exhaustive" => Box::new(Exhaustive::new()),
        "random" => Box::new(RandomSearch::with_seed(seed)),
        "annealing" => Box::new(SimulatedAnnealing::with_seed(seed)),
        "ensemble" => Box::new(Ensemble::opentuner_default(seed)),
        other => {
            return Err(SpecError::Invalid(format!(
                "unknown technique `{other}` (expected exhaustive, random, annealing, ensemble)"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_from_specs() {
        let specs = vec![
            ParameterSpec {
                name: "A".into(),
                interval: Some(IntervalSpec {
                    begin: 1,
                    end: 8,
                    step: 1,
                }),
                set: None,
                constraint: None,
            },
            ParameterSpec {
                name: "B".into(),
                interval: None,
                set: Some(vec![1, 2, 4]),
                constraint: Some("divides(A)".into()),
            },
        ];
        let params = build_params(&specs).unwrap();
        assert_eq!(params.len(), 2);
        assert_eq!(params[0].name(), "A");
        assert!(params[1].constraint().is_some());
    }

    #[test]
    fn bad_specs_rejected() {
        assert!(matches!(build_params(&[]), Err(SpecError::Invalid(_))));
        let both = ParameterSpec {
            name: "A".into(),
            interval: Some(IntervalSpec {
                begin: 1,
                end: 2,
                step: 1,
            }),
            set: Some(vec![1]),
            constraint: None,
        };
        assert!(matches!(build_params(&[both]), Err(SpecError::Invalid(_))));
        let bad = ParameterSpec {
            name: "A".into(),
            interval: None,
            set: Some(vec![1]),
            constraint: Some("wat(3)".into()),
        };
        assert!(matches!(
            build_params(&[bad]),
            Err(SpecError::Constraint { .. })
        ));
        assert!(build_technique(&SearchSpec {
            technique: "quantum".into(),
            seed: 0
        })
        .is_err());
    }

    #[test]
    fn spec_types_round_trip_through_json() {
        let spec = SearchSpec {
            technique: "random".into(),
            seed: 7,
        };
        let text = serde_json::to_string(&spec).unwrap();
        let back: SearchSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back.technique, "random");
        assert_eq!(back.seed, 7);

        let abort = AbortSpec {
            evaluations: Some(10),
            duration_secs: None,
            cost: Some(1.5),
            stagnation_evaluations: None,
        };
        let text = serde_json::to_string(&abort).unwrap();
        let back: AbortSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back.evaluations, Some(10));
        assert_eq!(back.cost, Some(1.5));
        assert_eq!(back.duration_secs, None);
    }

    #[test]
    fn abort_defaults_to_none() {
        assert!(build_abort(&AbortSpec::default()).is_none());
        assert!(build_abort(&AbortSpec {
            evaluations: Some(3),
            ..Default::default()
        })
        .is_some());
    }
}
