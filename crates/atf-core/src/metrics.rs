//! Metrics registry: lock-free counters, gauges, and fixed-bucket latency
//! histograms aggregating a tuning run's behaviour — eval latency
//! distribution, failures by kind, window occupancy, worker utilization,
//! and configs/sec throughput.
//!
//! Every [`TuningSession`](crate::session::TuningSession) owns a
//! [`MetricsRegistry`] (shareable via `Arc`, all-atomic so workers update
//! it without locks). [`MetricsRegistry::snapshot`] freezes it into a
//! serializable [`MetricsSnapshot`] — the payload of the service's `stats`
//! wire op and the source of the `--metrics` summary table.

use crate::cost::FailureKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that goes up and down (window occupancy, busy workers).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements by one (saturating at zero).
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bucket bounds of the eval-latency histogram, in microseconds
/// (1 ms … 60 s; slower evaluations land in the overflow bucket).
pub const LATENCY_BOUNDS_MICROS: [u64; 14] = [
    1_000, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000, 2_500_000,
    5_000_000, 10_000_000, 30_000_000, 60_000_000,
];

/// Fixed-bucket latency histogram (cumulative-free: each bucket counts
/// observations at or below its bound and above the previous one).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; LATENCY_BOUNDS_MICROS.len()],
    overflow: AtomicU64,
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, latency: Duration) {
        let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        match LATENCY_BOUNDS_MICROS.iter().position(|&b| micros <= b) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> LatencySnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let overflow = self.overflow.load(Ordering::Relaxed);
        let count = self.count.load(Ordering::Relaxed);
        let sum_micros = self.sum_micros.load(Ordering::Relaxed);
        // Quantile estimate: the upper bound of the bucket where the
        // cumulative count crosses q·n (the last finite bound for the
        // overflow bucket — a lower-bound estimate there).
        let quantile = |q: f64| -> f64 {
            if count == 0 {
                return 0.0;
            }
            let target = (q * count as f64).ceil() as u64;
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= target {
                    return LATENCY_BOUNDS_MICROS[i] as f64 / 1000.0;
                }
            }
            *LATENCY_BOUNDS_MICROS.last().expect("bounds nonempty") as f64 / 1000.0
        };
        LatencySnapshot {
            count,
            mean_ms: if count == 0 {
                0.0
            } else {
                sum_micros as f64 / count as f64 / 1000.0
            },
            p50_ms: quantile(0.50),
            p90_ms: quantile(0.90),
            p99_ms: quantile(0.99),
            buckets: LATENCY_BOUNDS_MICROS
                .iter()
                .zip(&counts)
                .map(|(&bound, &c)| LatencyBucket {
                    le_ms: bound as f64 / 1000.0,
                    count: c,
                })
                .collect(),
            overflow,
        }
    }
}

/// All metrics of one tuning run, updated lock-free from any thread.
#[derive(Debug)]
pub struct MetricsRegistry {
    started: Instant,
    /// Applied evaluations (successful or failed).
    pub evaluations: Counter,
    /// Applied evaluations whose measurement succeeded.
    pub valid_evaluations: Counter,
    /// Applied evaluations whose measurement failed.
    pub failed_evaluations: Counter,
    failures_by_kind: [Counter; FailureKind::ALL.len()],
    /// Backoff-and-retry attempts performed by [`crate::policy`].
    pub retries: Counter,
    /// Circuit-breaker trips (0 or 1 per run).
    pub breaker_trips: Counter,
    /// Journal write failures that degraded the run to in-memory-only
    /// (ENOSPC, I/O errors under the degrade-don't-die policy).
    pub journal_errors: Counter,
    /// Handout-to-report latency of every applied evaluation.
    pub eval_latency: Histogram,
    /// Search-space generation time, microseconds, summed over groups.
    pub space_gen_micros: Counter,
    /// Session opens whose search space was loaded from the persistent
    /// space cache instead of being regenerated.
    pub space_cache_hits: Counter,
    /// Session opens that missed the space cache (generated, then stored).
    pub space_cache_misses: Counter,
    window_capacity: Gauge,
    window_occupancy: Gauge,
    window_peak: AtomicU64,
    workers_total: Gauge,
    workers_busy: Gauge,
    busy_micros: Counter,
    /// Session opens admitted by the service's admission controller.
    pub admitted_sessions: Counter,
    /// Session opens shed with `overloaded` (global or per-tenant quota).
    pub shed_opens: Counter,
    /// Work requests (`next`) shed by a tenant's in-flight limit.
    pub shed_requests: Counter,
    /// Connections rejected at the hard cap (slots and accept queue full).
    pub rejected_connections: Counter,
    /// Sessions checkpointed by a graceful drain.
    pub drained_sessions: Counter,
    /// Live sessions across all tenants.
    pub sessions_active: Gauge,
    /// Tenants with at least one live session.
    pub tenants_active: Gauge,
    /// Connections currently being served.
    pub connections_active: Gauge,
    /// Accepted connections parked in the bounded accept queue.
    pub accept_queue_depth: Gauge,
    accept_queue_peak: AtomicU64,
    /// Records appended to the tuning-database log.
    pub db_appends: Counter,
    /// Tuning-database compactions (log folded into a checkpoint).
    pub db_compactions: Counter,
    /// Reactor I/O threads (0 outside the event-driven server).
    pub reactor_io_threads: Gauge,
    /// Handler threads serving parsed requests behind the reactor.
    pub reactor_handlers: Gauge,
    /// Connection sockets currently registered with the reactor's poll set.
    pub reactor_fds: Gauge,
    /// Parsed request lines waiting for a handler thread.
    reactor_queue_depth: Gauge,
    reactor_queue_peak: AtomicU64,
    /// Handler threads currently inside `handle_line`.
    pub reactor_handlers_busy: Gauge,
    reactor_busy_micros: Counter,
    /// Live sessions per manager shard; sized once by
    /// [`set_shard_count`](Self::set_shard_count).
    shard_sessions: OnceLock<Box<[AtomicU64]>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            started: Instant::now(),
            evaluations: Counter::default(),
            valid_evaluations: Counter::default(),
            failed_evaluations: Counter::default(),
            failures_by_kind: std::array::from_fn(|_| Counter::default()),
            retries: Counter::default(),
            breaker_trips: Counter::default(),
            journal_errors: Counter::default(),
            eval_latency: Histogram::default(),
            space_gen_micros: Counter::default(),
            space_cache_hits: Counter::default(),
            space_cache_misses: Counter::default(),
            window_capacity: Gauge::default(),
            window_occupancy: Gauge::default(),
            window_peak: AtomicU64::new(0),
            workers_total: Gauge::default(),
            workers_busy: Gauge::default(),
            busy_micros: Counter::default(),
            admitted_sessions: Counter::default(),
            shed_opens: Counter::default(),
            shed_requests: Counter::default(),
            rejected_connections: Counter::default(),
            drained_sessions: Counter::default(),
            sessions_active: Gauge::default(),
            tenants_active: Gauge::default(),
            connections_active: Gauge::default(),
            accept_queue_depth: Gauge::default(),
            accept_queue_peak: AtomicU64::new(0),
            db_appends: Counter::default(),
            db_compactions: Counter::default(),
            reactor_io_threads: Gauge::default(),
            reactor_handlers: Gauge::default(),
            reactor_fds: Gauge::default(),
            reactor_queue_depth: Gauge::default(),
            reactor_queue_peak: AtomicU64::new(0),
            reactor_handlers_busy: Gauge::default(),
            reactor_busy_micros: Counter::default(),
            shard_sessions: OnceLock::new(),
        }
    }
}

impl MetricsRegistry {
    /// A fresh registry; the throughput clock starts now.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one applied evaluation: its handout-to-report latency and
    /// outcome (`None` latency when unknown, e.g. a replayed entry).
    pub fn record_eval(&self, latency: Option<Duration>, failure: Option<FailureKind>) {
        self.evaluations.inc();
        match failure {
            None => self.valid_evaluations.inc(),
            Some(kind) => {
                self.failed_evaluations.inc();
                self.failures_by_kind[kind.index()].inc();
            }
        }
        if let Some(latency) = latency {
            self.eval_latency.observe(latency);
        }
    }

    /// Failed evaluations of one taxonomy class.
    pub fn failures_of_kind(&self, kind: FailureKind) -> u64 {
        self.failures_by_kind[kind.index()].get()
    }

    /// Sets the pending-window capacity gauge.
    pub fn set_window_capacity(&self, n: usize) {
        self.window_capacity.set(n as u64);
    }

    /// Sets the current pending-window occupancy (and tracks its peak).
    pub fn set_window_occupancy(&self, n: usize) {
        self.window_occupancy.set(n as u64);
        self.window_peak.fetch_max(n as u64, Ordering::Relaxed);
    }

    /// Declares the size of the worker pool driving the run.
    pub fn set_workers(&self, n: usize) {
        self.workers_total.set(n as u64);
    }

    /// A worker started evaluating.
    pub fn worker_busy(&self) {
        self.workers_busy.inc();
    }

    /// A worker finished an evaluation that kept it busy for `busy_for`.
    pub fn worker_idle(&self, busy_for: Duration) {
        self.workers_busy.dec();
        self.busy_micros
            .add(u64::try_from(busy_for.as_micros()).unwrap_or(u64::MAX));
    }

    /// Sets the accept-queue depth gauge (and tracks its peak).
    pub fn set_accept_queue_depth(&self, n: usize) {
        self.accept_queue_depth.set(n as u64);
        self.accept_queue_peak
            .fetch_max(n as u64, Ordering::Relaxed);
    }

    /// Declares the reactor's thread layout (io threads + handler pool).
    pub fn set_reactor_threads(&self, io_threads: usize, handlers: usize) {
        self.reactor_io_threads.set(io_threads as u64);
        self.reactor_handlers.set(handlers as u64);
    }

    /// Sets the reactor ready-queue depth gauge (and tracks its peak).
    pub fn set_reactor_queue_depth(&self, n: usize) {
        self.reactor_queue_depth.set(n as u64);
        self.reactor_queue_peak
            .fetch_max(n as u64, Ordering::Relaxed);
    }

    /// A reactor handler thread started serving a request.
    pub fn reactor_handler_busy(&self) {
        self.reactor_handlers_busy.inc();
    }

    /// A reactor handler finished a request that kept it busy `busy_for`.
    pub fn reactor_handler_idle(&self, busy_for: Duration) {
        self.reactor_handlers_busy.dec();
        self.reactor_busy_micros
            .add(u64::try_from(busy_for.as_micros()).unwrap_or(u64::MAX));
    }

    /// Sizes the per-shard session gauges. First caller wins; later calls
    /// with a different count are ignored (the registry is shared).
    pub fn set_shard_count(&self, n: usize) {
        self.shard_sessions
            .get_or_init(|| (0..n).map(|_| AtomicU64::new(0)).collect());
    }

    /// Sets the live-session gauge of shard `i` (no-op before
    /// [`set_shard_count`](Self::set_shard_count) or out of range).
    pub fn set_shard_sessions(&self, i: usize, n: u64) {
        if let Some(gauges) = self.shard_sessions.get() {
            if let Some(g) = gauges.get(i) {
                g.store(n, Ordering::Relaxed);
            }
        }
    }

    /// Freezes the registry into a serializable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let elapsed = self.started.elapsed();
        let evaluations = self.evaluations.get();
        let workers = self.workers_total.get();
        let busy_micros = self.busy_micros.get();
        let elapsed_micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let utilization_pct = if workers == 0 || elapsed_micros == 0 {
            0.0
        } else {
            (busy_micros as f64 / (workers * elapsed_micros) as f64 * 100.0).min(100.0)
        };
        MetricsSnapshot {
            elapsed_ms: elapsed.as_millis() as u64,
            evaluations,
            valid_evaluations: self.valid_evaluations.get(),
            failed_evaluations: self.failed_evaluations.get(),
            failures: FailureKind::ALL
                .into_iter()
                .map(|k| {
                    (
                        k.label().to_string(),
                        self.failures_by_kind[k.index()].get(),
                    )
                })
                .filter(|(_, n)| *n > 0)
                .collect(),
            retries: self.retries.get(),
            breaker_trips: self.breaker_trips.get(),
            journal_errors: self.journal_errors.get(),
            configs_per_sec: if elapsed.as_secs_f64() > 0.0 {
                evaluations as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
            space_gen_ms: self.space_gen_micros.get() / 1000,
            space_cache_hits: self.space_cache_hits.get(),
            space_cache_misses: self.space_cache_misses.get(),
            eval_latency: self.eval_latency.snapshot(),
            window: WindowSnapshot {
                capacity: self.window_capacity.get(),
                occupancy: self.window_occupancy.get(),
                peak: self.window_peak.load(Ordering::Relaxed),
            },
            workers: WorkerSnapshot {
                total: workers,
                busy: self.workers_busy.get(),
                utilization_pct,
            },
            admission: AdmissionSnapshot {
                admitted_sessions: self.admitted_sessions.get(),
                shed_opens: self.shed_opens.get(),
                shed_requests: self.shed_requests.get(),
                rejected_connections: self.rejected_connections.get(),
                drained_sessions: self.drained_sessions.get(),
                sessions_active: self.sessions_active.get(),
                tenants_active: self.tenants_active.get(),
                connections_active: self.connections_active.get(),
                accept_queue_depth: self.accept_queue_depth.get(),
                accept_queue_peak: self.accept_queue_peak.load(Ordering::Relaxed),
            },
            db_appends: self.db_appends.get(),
            db_compactions: self.db_compactions.get(),
            reactor: {
                let io_threads = self.reactor_io_threads.get();
                let busy_micros = self.reactor_busy_micros.get();
                let handlers = self.reactor_handlers.get();
                ReactorSnapshot {
                    io_threads,
                    handlers,
                    registered_fds: self.reactor_fds.get(),
                    queue_depth: self.reactor_queue_depth.get(),
                    queue_peak: self.reactor_queue_peak.load(Ordering::Relaxed),
                    handlers_busy: self.reactor_handlers_busy.get(),
                    handler_utilization_pct: if handlers == 0 || elapsed_micros == 0 {
                        0.0
                    } else {
                        (busy_micros as f64 / (handlers * elapsed_micros) as f64 * 100.0).min(100.0)
                    },
                }
            },
            shard_sessions: self
                .shard_sessions
                .get()
                .map(|gauges| gauges.iter().map(|g| g.load(Ordering::Relaxed)).collect())
                .unwrap_or_default(),
        }
    }
}

/// One histogram bucket: observations at or below `le_ms` (and above the
/// previous bucket's bound).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencyBucket {
    /// Upper bound of the bucket, milliseconds.
    pub le_ms: f64,
    /// Observations in the bucket.
    pub count: u64,
}

/// Frozen view of the eval-latency histogram.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencySnapshot {
    /// Number of observed evaluations.
    pub count: u64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Estimated median (bucket upper bound), milliseconds.
    pub p50_ms: f64,
    /// Estimated 90th percentile, milliseconds.
    pub p90_ms: f64,
    /// Estimated 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Per-bucket counts, in bound order.
    pub buckets: Vec<LatencyBucket>,
    /// Observations slower than the last bucket bound.
    pub overflow: u64,
}

/// Frozen view of the pending-window gauges.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WindowSnapshot {
    /// Configured window capacity (`max_pending`).
    pub capacity: u64,
    /// Pending tickets at snapshot time.
    pub occupancy: u64,
    /// Highest simultaneous occupancy seen.
    pub peak: u64,
}

/// Frozen view of the worker-pool gauges.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkerSnapshot {
    /// Workers driving the run (0 when no pool registered itself).
    pub total: u64,
    /// Workers evaluating at snapshot time.
    pub busy: u64,
    /// Share of total worker-time spent evaluating, percent.
    pub utilization_pct: f64,
}

/// Frozen view of the service-side admission/overload gauges. All-zero
/// for plain tuning runs (no admission controller in the loop).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AdmissionSnapshot {
    /// Session opens admitted.
    pub admitted_sessions: u64,
    /// Session opens shed with `overloaded`.
    pub shed_opens: u64,
    /// Work requests shed by a tenant's in-flight limit.
    pub shed_requests: u64,
    /// Connections rejected at the hard cap.
    pub rejected_connections: u64,
    /// Sessions checkpointed by a graceful drain.
    pub drained_sessions: u64,
    /// Live sessions at snapshot time.
    pub sessions_active: u64,
    /// Tenants with at least one live session at snapshot time.
    pub tenants_active: u64,
    /// Connections being served at snapshot time.
    pub connections_active: u64,
    /// Accept-queue depth at snapshot time.
    pub accept_queue_depth: u64,
    /// Highest accept-queue depth seen.
    pub accept_queue_peak: u64,
}

/// Frozen view of the event-driven server's reactor gauges. All-zero when
/// the poll(2) reactor is not in the loop (plain tuning runs, loopback).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ReactorSnapshot {
    /// Poll-loop threads owning the connection sockets.
    pub io_threads: u64,
    /// Handler threads serving parsed requests.
    pub handlers: u64,
    /// Connection sockets registered across all poll sets.
    pub registered_fds: u64,
    /// Parsed request lines waiting for a handler at snapshot time.
    pub queue_depth: u64,
    /// Highest ready-queue depth seen.
    pub queue_peak: u64,
    /// Handler threads inside `handle_line` at snapshot time.
    pub handlers_busy: u64,
    /// Share of total handler-time spent serving requests, percent.
    pub handler_utilization_pct: f64,
}

/// A frozen, serializable view of a [`MetricsRegistry`] — the `stats` wire
/// payload and the source of the `--metrics` summary table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Wall clock since the registry was created, milliseconds.
    pub elapsed_ms: u64,
    /// Applied evaluations (successful or failed).
    pub evaluations: u64,
    /// Applied evaluations whose measurement succeeded.
    pub valid_evaluations: u64,
    /// Applied evaluations whose measurement failed.
    pub failed_evaluations: u64,
    /// Nonzero failure counts by taxonomy label.
    pub failures: BTreeMap<String, u64>,
    /// Backoff-and-retry attempts performed.
    pub retries: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Journal write failures under the degrade-don't-die policy (absent
    /// in snapshots from older peers, defaulting to zero).
    #[serde(default)]
    pub journal_errors: u64,
    /// Applied evaluations per second of wall clock.
    pub configs_per_sec: f64,
    /// Search-space generation time, milliseconds.
    pub space_gen_ms: u64,
    /// Session opens served from the persistent space cache (absent in
    /// snapshots from older peers, defaulting to zero).
    #[serde(default)]
    pub space_cache_hits: u64,
    /// Session opens that missed the space cache (absent in snapshots
    /// from older peers, defaulting to zero).
    #[serde(default)]
    pub space_cache_misses: u64,
    /// Eval-latency histogram.
    pub eval_latency: LatencySnapshot,
    /// Pending-window gauges.
    pub window: WindowSnapshot,
    /// Worker-pool gauges.
    pub workers: WorkerSnapshot,
    /// Service admission/overload gauges (absent in snapshots from older
    /// peers, defaulting to all-zero).
    #[serde(default)]
    pub admission: AdmissionSnapshot,
    /// Records appended to the tuning-database log (absent in snapshots
    /// from older peers, defaulting to zero).
    #[serde(default)]
    pub db_appends: u64,
    /// Tuning-database compactions (absent in snapshots from older peers,
    /// defaulting to zero).
    #[serde(default)]
    pub db_compactions: u64,
    /// Event-driven server reactor gauges (absent in snapshots from older
    /// peers, defaulting to all-zero).
    #[serde(default)]
    pub reactor: ReactorSnapshot,
    /// Live sessions per manager shard (empty outside the sharded
    /// service, and in snapshots from older peers).
    #[serde(default)]
    pub shard_sessions: Vec<u64>,
}

impl MetricsSnapshot {
    /// Renders the human summary table shown by `atf-tune run --metrics`.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let mut row = |k: &str, v: String| {
            out.push_str(&format!("  {k:<16} {v}\n"));
        };
        row(
            "elapsed",
            format!("{:.1} s", self.elapsed_ms as f64 / 1000.0),
        );
        row(
            "evaluations",
            format!(
                "{} ({} valid, {} failed)",
                self.evaluations, self.valid_evaluations, self.failed_evaluations
            ),
        );
        row(
            "throughput",
            format!("{:.2} configs/s", self.configs_per_sec),
        );
        row(
            "eval latency",
            format!(
                "mean {:.1} ms, p50 <= {:.0} ms, p90 <= {:.0} ms (n={})",
                self.eval_latency.mean_ms,
                self.eval_latency.p50_ms,
                self.eval_latency.p90_ms,
                self.eval_latency.count
            ),
        );
        row("space gen", format!("{} ms", self.space_gen_ms));
        if self.space_cache_hits + self.space_cache_misses > 0 {
            row(
                "space cache",
                format!(
                    "{} hits, {} misses",
                    self.space_cache_hits, self.space_cache_misses
                ),
            );
        }
        row(
            "window",
            format!(
                "{}/{} pending, peak {}",
                self.window.occupancy, self.window.capacity, self.window.peak
            ),
        );
        if self.workers.total > 0 {
            row(
                "workers",
                format!(
                    "{}, utilization {:.1}%",
                    self.workers.total, self.workers.utilization_pct
                ),
            );
        }
        if self.retries > 0 {
            row("retries", self.retries.to_string());
        }
        let a = &self.admission;
        if a.admitted_sessions + a.shed_opens + a.shed_requests + a.rejected_connections > 0 {
            row(
                "admission",
                format!(
                    "{} admitted, {} opens shed, {} requests shed, {} conns rejected",
                    a.admitted_sessions, a.shed_opens, a.shed_requests, a.rejected_connections
                ),
            );
        }
        let r = &self.reactor;
        if r.io_threads > 0 {
            row(
                "reactor",
                format!(
                    "{} io + {} handlers, {} fds, queue peak {}, utilization {:.1}%",
                    r.io_threads,
                    r.handlers,
                    r.registered_fds,
                    r.queue_peak,
                    r.handler_utilization_pct
                ),
            );
        }
        if self.journal_errors > 0 {
            row(
                "journal",
                format!("DEGRADED ({} write errors)", self.journal_errors),
            );
        }
        if !self.failures.is_empty() {
            let parts: Vec<String> = self
                .failures
                .iter()
                .map(|(k, n)| format!("{k}: {n}"))
                .collect();
            row("failures", parts.join(", "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_failure_kinds() {
        let m = MetricsRegistry::new();
        m.record_eval(Some(Duration::from_millis(3)), None);
        m.record_eval(Some(Duration::from_millis(7)), Some(FailureKind::Timeout));
        m.record_eval(None, Some(FailureKind::Timeout));
        let s = m.snapshot();
        assert_eq!(s.evaluations, 3);
        assert_eq!(s.valid_evaluations, 1);
        assert_eq!(s.failed_evaluations, 2);
        assert_eq!(s.failures.get("timeout"), Some(&2));
        assert_eq!(s.failures.get("crash"), None);
        // Only the two evals with a known latency reach the histogram.
        assert_eq!(s.eval_latency.count, 2);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for _ in 0..9 {
            h.observe(Duration::from_millis(2)); // <= 5 ms bucket
        }
        h.observe(Duration::from_secs(120)); // overflow
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.buckets[1].count, 9);
        assert_eq!(s.p50_ms, 5.0);
        assert_eq!(s.p99_ms, 60_000.0, "overflow estimates at the last bound");
        assert!(s.mean_ms > 1000.0);
    }

    #[test]
    fn window_peak_and_worker_utilization() {
        let m = MetricsRegistry::new();
        m.set_window_capacity(4);
        m.set_window_occupancy(2);
        m.set_window_occupancy(4);
        m.set_window_occupancy(1);
        m.set_workers(2);
        m.worker_busy();
        m.worker_idle(Duration::from_millis(5));
        let s = m.snapshot();
        assert_eq!(s.window.capacity, 4);
        assert_eq!(s.window.occupancy, 1);
        assert_eq!(s.window.peak, 4);
        assert_eq!(s.workers.total, 2);
        assert_eq!(s.workers.busy, 0);
        assert!(s.workers.utilization_pct > 0.0);
        assert!(s.workers.utilization_pct <= 100.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let m = MetricsRegistry::new();
        m.record_eval(Some(Duration::from_millis(3)), Some(FailureKind::RunCrash));
        let s = m.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn admission_counters_and_queue_peak() {
        let m = MetricsRegistry::new();
        m.admitted_sessions.add(3);
        m.shed_opens.add(2);
        m.shed_requests.inc();
        m.rejected_connections.inc();
        m.set_accept_queue_depth(5);
        m.set_accept_queue_depth(1);
        m.sessions_active.inc();
        let s = m.snapshot();
        assert_eq!(s.admission.admitted_sessions, 3);
        assert_eq!(s.admission.shed_opens, 2);
        assert_eq!(s.admission.shed_requests, 1);
        assert_eq!(s.admission.rejected_connections, 1);
        assert_eq!(s.admission.accept_queue_depth, 1);
        assert_eq!(s.admission.accept_queue_peak, 5);
        assert_eq!(s.admission.sessions_active, 1);
        assert!(s.summary().contains("3 admitted"), "{}", s.summary());
    }

    #[test]
    fn reactor_gauges_and_utilization() {
        let m = MetricsRegistry::new();
        m.set_reactor_threads(2, 4);
        m.reactor_fds.inc();
        m.reactor_fds.inc();
        m.reactor_fds.dec();
        m.set_reactor_queue_depth(7);
        m.set_reactor_queue_depth(1);
        m.reactor_handler_busy();
        m.reactor_handler_idle(Duration::from_millis(2));
        let s = m.snapshot();
        assert_eq!(s.reactor.io_threads, 2);
        assert_eq!(s.reactor.handlers, 4);
        assert_eq!(s.reactor.registered_fds, 1);
        assert_eq!(s.reactor.queue_depth, 1);
        assert_eq!(s.reactor.queue_peak, 7);
        assert_eq!(s.reactor.handlers_busy, 0);
        assert!(s.reactor.handler_utilization_pct > 0.0);
        assert!(s.summary().contains("2 io + 4 handlers"), "{}", s.summary());
    }

    #[test]
    fn old_peer_snapshot_defaults_reactor_to_zero() {
        let m = MetricsRegistry::new();
        let mut v = serde_json::to_value(&m.snapshot());
        if let serde_json::Value::Object(pairs) = &mut v {
            pairs.retain(|(key, _)| key != "reactor");
        }
        let back: MetricsSnapshot = serde_json::from_value(&v).unwrap();
        assert_eq!(back.reactor, ReactorSnapshot::default());
    }

    #[test]
    fn old_peer_snapshot_defaults_admission_to_zero() {
        // A snapshot serialized before the admission block must still load.
        let m = MetricsRegistry::new();
        let mut v = serde_json::to_value(&m.snapshot());
        if let serde_json::Value::Object(pairs) = &mut v {
            pairs.retain(|(key, _)| key != "admission");
        }
        let back: MetricsSnapshot = serde_json::from_value(&v).unwrap();
        assert_eq!(back.admission, AdmissionSnapshot::default());
    }

    #[test]
    fn summary_mentions_the_load_bearing_numbers() {
        let m = MetricsRegistry::new();
        m.set_window_capacity(4);
        m.record_eval(Some(Duration::from_millis(3)), None);
        m.record_eval(None, Some(FailureKind::BadOutput));
        let text = m.snapshot().summary();
        assert!(text.contains("evaluations"), "{text}");
        assert!(text.contains("2 (1 valid, 1 failed)"), "{text}");
        assert!(text.contains("bad_output: 1"), "{text}");
    }
}
