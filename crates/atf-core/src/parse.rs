//! Text parsers for arithmetic expressions and constraints — the surface
//! syntax used by specification files (e.g. the `atf-cli` tuner) where
//! expressions arrive as strings instead of Rust code.
//!
//! Expression grammar (usual precedence, left-associative):
//!
//! ```text
//! expr    := term (('+' | '-') term)*
//! term    := unary (('*' | '/' | '%') unary)*
//! unary   := '-' unary | primary
//! primary := NUMBER | IDENT | IDENT '(' expr (',' expr)* ')' | '(' expr ')'
//! ```
//!
//! Function calls: `min(a, b)`, `max(a, b)`, `ceil_div(a, b)`,
//! `round_up(a, b)`. Bare identifiers are tuning-parameter references.
//!
//! Constraint grammar:
//!
//! ```text
//! constraint := disjunct ('||' disjunct)*
//! disjunct   := atom ('&&' atom)*
//! atom       := ALIAS '(' expr ')' | '(' constraint ')'
//! ALIAS      := divides | is_multiple_of | less_than | greater_than
//!             | equal | unequal
//! ```

use crate::constraint::{
    divides, equal, greater_than, is_multiple_of, less_than, unequal, Constraint,
};
use crate::expr::{cst, param, Expr};
use std::fmt;

/// A parse failure with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Token {
    Number(f64),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    LParen,
    RParen,
    Comma,
    AndAnd,
    OrOr,
}

struct Lexer {
    tokens: Vec<(usize, Token)>,
    pos: usize,
    len: usize,
}

fn lex(input: &str) -> Result<Lexer, ParseError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '+' => {
                tokens.push((i, Token::Plus));
                i += 1;
            }
            '-' => {
                tokens.push((i, Token::Minus));
                i += 1;
            }
            '*' => {
                tokens.push((i, Token::Star));
                i += 1;
            }
            '/' => {
                tokens.push((i, Token::Slash));
                i += 1;
            }
            '%' => {
                tokens.push((i, Token::Percent));
                i += 1;
            }
            '(' => {
                tokens.push((i, Token::LParen));
                i += 1;
            }
            ')' => {
                tokens.push((i, Token::RParen));
                i += 1;
            }
            ',' => {
                tokens.push((i, Token::Comma));
                i += 1;
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push((i, Token::AndAnd));
                    i += 2;
                } else {
                    return Err(ParseError {
                        position: i,
                        message: "expected `&&`".to_string(),
                    });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push((i, Token::OrOr));
                    i += 2;
                } else {
                    return Err(ParseError {
                        position: i,
                        message: "expected `||`".to_string(),
                    });
                }
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                let text = &input[start..i];
                let value = text.parse::<f64>().map_err(|e| ParseError {
                    position: start,
                    message: format!("bad number `{text}`: {e}"),
                })?;
                tokens.push((start, Token::Number(value)));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push((start, Token::Ident(input[start..i].to_string())));
            }
            other => {
                return Err(ParseError {
                    position: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(Lexer {
        tokens,
        pos: 0,
        len: input.len(),
    })
}

impl Lexer {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<(usize, Token)> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn position(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|(p, _)| *p)
            .unwrap_or(self.len)
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), ParseError> {
        match self.next() {
            Some((_, t)) if t == *want => Ok(()),
            other => Err(ParseError {
                position: other.as_ref().map(|(p, _)| *p).unwrap_or(self.len),
                message: format!("expected {what}"),
            }),
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            position: self.position(),
            message: message.into(),
        })
    }
}

/// Parses an arithmetic expression over tuning parameters, e.g.
/// `"N / WPT"` or `"ceil_div(M, WGD) * MDIMCD"`.
pub fn parse_expr(input: &str) -> Result<Expr, ParseError> {
    let mut lx = lex(input)?;
    let e = expr(&mut lx)?;
    if lx.peek().is_some() {
        return lx.err("trailing input after expression");
    }
    Ok(e)
}

fn expr(lx: &mut Lexer) -> Result<Expr, ParseError> {
    let mut acc = term(lx)?;
    loop {
        match lx.peek() {
            Some(Token::Plus) => {
                lx.next();
                acc = acc + term(lx)?;
            }
            Some(Token::Minus) => {
                lx.next();
                acc = acc - term(lx)?;
            }
            _ => return Ok(acc),
        }
    }
}

fn term(lx: &mut Lexer) -> Result<Expr, ParseError> {
    let mut acc = unary(lx)?;
    loop {
        match lx.peek() {
            Some(Token::Star) => {
                lx.next();
                acc = acc * unary(lx)?;
            }
            Some(Token::Slash) => {
                lx.next();
                acc = acc / unary(lx)?;
            }
            Some(Token::Percent) => {
                lx.next();
                acc = acc % unary(lx)?;
            }
            _ => return Ok(acc),
        }
    }
}

fn unary(lx: &mut Lexer) -> Result<Expr, ParseError> {
    if matches!(lx.peek(), Some(Token::Minus)) {
        lx.next();
        return Ok(-unary(lx)?);
    }
    primary(lx)
}

fn primary(lx: &mut Lexer) -> Result<Expr, ParseError> {
    match lx.next() {
        Some((_, Token::Number(v))) => {
            // Integral literals stay integers for exact arithmetic.
            if v.fract() == 0.0 && v >= 0.0 && v <= u64::MAX as f64 {
                Ok(cst(v as u64))
            } else {
                Ok(cst(v))
            }
        }
        Some((pos, Token::Ident(name))) => {
            if matches!(lx.peek(), Some(Token::LParen)) {
                lx.next(); // '('
                let mut args = vec![expr(lx)?];
                while matches!(lx.peek(), Some(Token::Comma)) {
                    lx.next();
                    args.push(expr(lx)?);
                }
                lx.expect(&Token::RParen, "`)` after function arguments")?;
                if args.len() != 2 {
                    return Err(ParseError {
                        position: pos,
                        message: format!("`{name}` takes exactly 2 arguments"),
                    });
                }
                let b = args.pop().expect("two args");
                let a = args.pop().expect("two args");
                match name.as_str() {
                    "min" => Ok(a.min(b)),
                    "max" => Ok(a.max(b)),
                    "ceil_div" => Ok(a.ceil_div(b)),
                    "round_up" => Ok(a.round_up_to_multiple_of(b)),
                    other => Err(ParseError {
                        position: pos,
                        message: format!("unknown function `{other}`"),
                    }),
                }
            } else {
                Ok(param(name))
            }
        }
        Some((_, Token::LParen)) => {
            let e = expr(lx)?;
            lx.expect(&Token::RParen, "closing `)`")?;
            Ok(e)
        }
        other => Err(ParseError {
            position: other.map(|(p, _)| p).unwrap_or(lx.len),
            message: "expected a number, parameter, or `(`".to_string(),
        }),
    }
}

/// Parses a constraint, e.g.
/// `"divides(N / WPT)"` or `"divides(WGD) && less_than(1025)"`.
pub fn parse_constraint(input: &str) -> Result<Constraint, ParseError> {
    let mut lx = lex(input)?;
    let c = constraint(&mut lx)?;
    if lx.peek().is_some() {
        return lx.err("trailing input after constraint");
    }
    Ok(c)
}

fn constraint(lx: &mut Lexer) -> Result<Constraint, ParseError> {
    let mut acc = conjunct(lx)?;
    while matches!(lx.peek(), Some(Token::OrOr)) {
        lx.next();
        acc = acc | conjunct(lx)?;
    }
    Ok(acc)
}

fn conjunct(lx: &mut Lexer) -> Result<Constraint, ParseError> {
    let mut acc = constraint_atom(lx)?;
    while matches!(lx.peek(), Some(Token::AndAnd)) {
        lx.next();
        acc = acc & constraint_atom(lx)?;
    }
    Ok(acc)
}

fn constraint_atom(lx: &mut Lexer) -> Result<Constraint, ParseError> {
    match lx.next() {
        Some((_, Token::LParen)) => {
            let c = constraint(lx)?;
            lx.expect(&Token::RParen, "closing `)`")?;
            Ok(c)
        }
        Some((pos, Token::Ident(alias))) => {
            lx.expect(&Token::LParen, "`(` after constraint alias")?;
            let operand = expr(lx)?;
            lx.expect(&Token::RParen, "`)` after constraint operand")?;
            match alias.as_str() {
                "divides" => Ok(divides(operand)),
                "is_multiple_of" => Ok(is_multiple_of(operand)),
                "less_than" => Ok(less_than(operand)),
                "greater_than" => Ok(greater_than(operand)),
                "equal" => Ok(equal(operand)),
                "unequal" => Ok(unequal(operand)),
                other => Err(ParseError {
                    position: pos,
                    message: format!(
                        "unknown constraint alias `{other}` (expected divides, \
                         is_multiple_of, less_than, greater_than, equal, unequal)"
                    ),
                }),
            }
        }
        other => Err(ParseError {
            position: other.map(|(p, _)| p).unwrap_or(lx.len),
            message: "expected a constraint alias or `(`".to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::value::Value;

    fn cfg() -> Config {
        Config::from_pairs([("WPT", 4u64), ("N", 1024u64), ("WGD", 8u64), ("M", 20u64)])
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(e.eval_u64(&Config::new()).unwrap(), 7);
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(e.eval_u64(&Config::new()).unwrap(), 9);
        let e = parse_expr("10 - 4 - 3").unwrap(); // left-associative
        assert_eq!(e.eval_u64(&Config::new()).unwrap(), 3);
    }

    #[test]
    fn parameters_and_division() {
        let e = parse_expr("N / WPT").unwrap();
        assert_eq!(e.eval_u64(&cfg()).unwrap(), 256);
        assert_eq!(e.referenced_params().len(), 2);
    }

    #[test]
    fn functions() {
        assert_eq!(
            parse_expr("ceil_div(M, WGD)")
                .unwrap()
                .eval_u64(&cfg())
                .unwrap(),
            3
        );
        assert_eq!(
            parse_expr("round_up(M, WGD)")
                .unwrap()
                .eval_u64(&cfg())
                .unwrap(),
            24
        );
        assert_eq!(
            parse_expr("min(WPT, WGD)")
                .unwrap()
                .eval_u64(&cfg())
                .unwrap(),
            4
        );
        assert_eq!(
            parse_expr("max(WPT, WGD) * 2")
                .unwrap()
                .eval_u64(&cfg())
                .unwrap(),
            16
        );
    }

    #[test]
    fn unary_minus_and_floats() {
        let e = parse_expr("-3 + 5").unwrap();
        assert_eq!(e.eval(&Config::new()).unwrap(), Value::Int(2));
        let e = parse_expr("1.5 * 2").unwrap();
        assert_eq!(e.eval_f64(&Config::new()).unwrap(), 3.0);
    }

    #[test]
    fn expr_errors() {
        assert!(parse_expr("").is_err());
        assert!(parse_expr("1 +").is_err());
        assert!(parse_expr("foo(1)").is_err()); // unknown function
        assert!(parse_expr("min(1)").is_err()); // arity
        assert!(parse_expr("(1 + 2").is_err());
        assert!(parse_expr("1 2").is_err()); // trailing
        assert!(parse_expr("1 ? 2").is_err()); // bad char
        let err = parse_expr("2 # 3").unwrap_err();
        assert_eq!(err.position, 2);
    }

    #[test]
    fn constraint_aliases() {
        let c = parse_constraint("divides(N / WPT)").unwrap();
        assert!(c.check(&Value::UInt(64), &cfg()));
        assert!(!c.check(&Value::UInt(48), &cfg()));
        let c = parse_constraint("less_than(10)").unwrap();
        assert!(c.check(&Value::UInt(9), &cfg()));
        assert!(!c.check(&Value::UInt(10), &cfg()));
    }

    #[test]
    fn constraint_combinators_and_precedence() {
        // `&&` binds tighter than `||`.
        let c = parse_constraint("equal(1) || divides(8) && less_than(5)").unwrap();
        assert!(c.check(&Value::UInt(1), &cfg())); // equal(1)
        assert!(c.check(&Value::UInt(4), &cfg())); // divides 8 and < 5
        assert!(!c.check(&Value::UInt(8), &cfg())); // divides 8 but not < 5
                                                    // Parentheses override.
        let c = parse_constraint("(equal(1) || divides(8)) && less_than(5)").unwrap();
        assert!(!c.check(&Value::UInt(8), &cfg()));
        assert!(c.check(&Value::UInt(2), &cfg()));
    }

    #[test]
    fn constraint_references_survive_parsing() {
        use crate::constraint::References;
        let c = parse_constraint("divides(N / WPT) && less_than(WGD * 2)").unwrap();
        match c.references() {
            References::Exact(names) => {
                let mut names: Vec<&str> = names.iter().map(|n| n.as_ref()).collect();
                names.sort_unstable();
                assert_eq!(names, vec!["N", "WGD", "WPT"]);
            }
            References::Unknown => panic!("parsed constraints have exact references"),
        }
    }

    #[test]
    fn constraint_errors() {
        assert!(parse_constraint("").is_err());
        assert!(parse_constraint("frobnicate(3)").is_err());
        assert!(parse_constraint("divides").is_err());
        assert!(parse_constraint("divides(3) &&").is_err());
        assert!(parse_constraint("divides(3) extra").is_err());
        assert!(parse_constraint("divides(3) & divides(4)").is_err()); // single &
    }

    #[test]
    fn parsed_equals_programmatic_in_generation() {
        use crate::param::{tp_c, ParamGroup};
        use crate::range::Range;
        use crate::space::SearchSpace;
        let n = 64u64;
        let parsed = vec![ParamGroup::new(vec![
            tp_c(
                "WPT",
                Range::interval(1, n),
                parse_constraint("divides(64)").unwrap(),
            ),
            tp_c(
                "LS",
                Range::interval(1, n),
                parse_constraint("divides(64 / WPT)").unwrap(),
            ),
        ])];
        let programmatic = vec![ParamGroup::new(vec![
            tp_c("WPT", Range::interval(1, n), divides(cst(n))),
            tp_c("LS", Range::interval(1, n), divides(cst(n) / param("WPT"))),
        ])];
        assert_eq!(
            SearchSpace::count(&parsed),
            SearchSpace::count(&programmatic)
        );
    }
}
