//! A persistent database of tuning results — the production companion of a
//! tuner (CLBlast ships exactly such a database of device-optimized
//! configurations, which the paper's evaluation reads; Section VI-A).
//!
//! Keyed by `(kernel, device, workload)`: a [`TuningDatabase`] stores the
//! best-known configuration with its cost and provenance, merges new
//! results monotonically (a stored record is only replaced by a cheaper
//! one), and round-trips through JSON.

use crate::config::Config;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// A serializable tuning-parameter value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", content = "value")]
pub enum StoredValue {
    /// Boolean parameter.
    Bool(bool),
    /// Signed integer parameter.
    Int(i64),
    /// Unsigned integer parameter.
    UInt(u64),
    /// Floating-point parameter.
    Float(f64),
    /// Symbolic (enum-like) parameter.
    Symbol(String),
}

impl From<&Value> for StoredValue {
    fn from(v: &Value) -> Self {
        match v {
            Value::Bool(b) => StoredValue::Bool(*b),
            Value::Int(i) => StoredValue::Int(*i),
            Value::UInt(u) => StoredValue::UInt(*u),
            Value::Float(f) => StoredValue::Float(*f),
            Value::Symbol(s) => StoredValue::Symbol(s.to_string()),
        }
    }
}

impl From<&StoredValue> for Value {
    fn from(v: &StoredValue) -> Self {
        match v {
            StoredValue::Bool(b) => Value::Bool(*b),
            StoredValue::Int(i) => Value::Int(*i),
            StoredValue::UInt(u) => Value::UInt(*u),
            StoredValue::Float(f) => Value::Float(*f),
            StoredValue::Symbol(s) => Value::Symbol(s.as_str().into()),
        }
    }
}

/// One stored tuning result.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TuningRecord {
    /// Kernel (or program) identifier.
    pub kernel: String,
    /// Device name the result was tuned on.
    pub device: String,
    /// Workload identifier (e.g. "m20_n576_k1"); empty = size-agnostic.
    #[serde(default)]
    pub workload: String,
    /// Parameter values in declaration order.
    pub parameters: Vec<(String, StoredValue)>,
    /// The measured scalar cost of the configuration.
    pub cost: f64,
    /// Configurations evaluated by the run that produced this record.
    #[serde(default)]
    pub evaluations: u64,
    /// Search-space size at tuning time (stringified `u128`).
    #[serde(default)]
    pub space_size: String,
}

impl TuningRecord {
    /// Reconstructs the configuration.
    pub fn config(&self) -> Config {
        Config::from_pairs(
            self.parameters
                .iter()
                .map(|(n, v)| (n.as_str(), Value::from(v))),
        )
    }
}

/// An in-memory collection of tuning records with JSON persistence.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TuningDatabase {
    records: BTreeMap<String, TuningRecord>,
}

fn key(kernel: &str, device: &str, workload: &str) -> String {
    format!("{kernel}\u{1f}{device}\u{1f}{workload}")
}

impl TuningDatabase {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a database from a JSON file.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(std::io::Error::other)
    }

    /// Saves the database to a JSON file (pretty-printed for diff-ability).
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let text = serde_json::to_string_pretty(self).map_err(std::io::Error::other)?;
        std::fs::write(path, text)
    }

    /// Stores a result; an existing record for the same key is replaced
    /// only when the new cost is lower. Returns whether the record was
    /// stored.
    #[allow(clippy::too_many_arguments)] // the flat fields of one record
    pub fn store(
        &mut self,
        kernel: &str,
        device: &str,
        workload: &str,
        config: &Config,
        cost: f64,
        evaluations: u64,
        space_size: u128,
    ) -> bool {
        let k = key(kernel, device, workload);
        if let Some(existing) = self.records.get(&k) {
            if existing.cost <= cost {
                return false;
            }
        }
        self.records.insert(
            k,
            TuningRecord {
                kernel: kernel.to_string(),
                device: device.to_string(),
                workload: workload.to_string(),
                parameters: config
                    .iter()
                    .map(|(n, v)| (n.to_string(), StoredValue::from(v)))
                    .collect(),
                cost,
                evaluations,
                space_size: space_size.to_string(),
            },
        );
        true
    }

    /// Looks up the best-known record.
    pub fn lookup(&self, kernel: &str, device: &str, workload: &str) -> Option<&TuningRecord> {
        self.records.get(&key(kernel, device, workload))
    }

    /// Looks up just the configuration.
    pub fn lookup_config(&self, kernel: &str, device: &str, workload: &str) -> Option<Config> {
        self.lookup(kernel, device, workload)
            .map(TuningRecord::config)
    }

    /// All records, ordered by key.
    pub fn records(&self) -> impl Iterator<Item = &TuningRecord> {
        self.records.values()
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Merges another database into this one (cheaper records win).
    pub fn merge(&mut self, other: &TuningDatabase) {
        for r in other.records() {
            let cfg = r.config();
            self.store(
                &r.kernel,
                &r.device,
                &r.workload,
                &cfg,
                r.cost,
                r.evaluations,
                r.space_size.parse().unwrap_or(0),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_config() -> Config {
        Config::from_pairs([
            ("WGD", Value::UInt(8)),
            ("PADA", Value::Bool(true)),
            ("MODE", Value::Symbol("vec4".into())),
            ("SCALE", Value::Float(1.5)),
        ])
    }

    #[test]
    fn store_and_lookup() {
        let mut db = TuningDatabase::new();
        assert!(db.store(
            "XgemmDirect",
            "Tesla K20m",
            "is4",
            &sample_config(),
            42.0,
            100,
            1000
        ));
        let r = db.lookup("XgemmDirect", "Tesla K20m", "is4").unwrap();
        assert_eq!(r.cost, 42.0);
        let cfg = r.config();
        assert_eq!(cfg.get_u64("WGD"), 8);
        assert!(cfg.get_bool("PADA"));
        assert_eq!(cfg["MODE"], Value::Symbol("vec4".into()));
        assert!(db.lookup("XgemmDirect", "Tesla K20m", "other").is_none());
    }

    #[test]
    fn cheaper_records_win() {
        let mut db = TuningDatabase::new();
        db.store("k", "d", "", &sample_config(), 10.0, 1, 1);
        assert!(!db.store("k", "d", "", &sample_config(), 11.0, 1, 1));
        assert_eq!(db.lookup("k", "d", "").unwrap().cost, 10.0);
        assert!(db.store("k", "d", "", &sample_config(), 9.0, 1, 1));
        assert_eq!(db.lookup("k", "d", "").unwrap().cost, 9.0);
    }

    #[test]
    fn json_round_trip() {
        let mut db = TuningDatabase::new();
        db.store("saxpy", "Xeon", "n1024", &sample_config(), 3.25, 231, 231);
        let path = std::env::temp_dir().join(format!("atf-db-{}.json", std::process::id()));
        db.save(&path).unwrap();
        let loaded = TuningDatabase::load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        let r = loaded.lookup("saxpy", "Xeon", "n1024").unwrap();
        assert_eq!(r.cost, 3.25);
        assert_eq!(r.config(), sample_config());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn merge_prefers_cheaper() {
        let mut a = TuningDatabase::new();
        a.store("k", "d", "", &sample_config(), 5.0, 1, 1);
        a.store("k2", "d", "", &sample_config(), 7.0, 1, 1);
        let mut b = TuningDatabase::new();
        b.store("k", "d", "", &sample_config(), 4.0, 1, 1);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.lookup("k", "d", "").unwrap().cost, 4.0);
    }

    #[test]
    fn keys_do_not_collide() {
        let mut db = TuningDatabase::new();
        db.store("a", "b_c", "", &sample_config(), 1.0, 1, 1);
        db.store("a_b", "c", "", &sample_config(), 2.0, 1, 1);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn missing_file_errors() {
        assert!(TuningDatabase::load("/nonexistent/db.json").is_err());
    }
}
