//! A persistent database of tuning results — the production companion of a
//! tuner (CLBlast ships exactly such a database of device-optimized
//! configurations, which the paper's evaluation reads; Section VI-A).
//!
//! Keyed by `(kernel, device, workload)`: a [`TuningDatabase`] stores the
//! best-known configuration with its cost and provenance, merges new
//! results monotonically (a stored record is only replaced by a cheaper
//! one), and round-trips through JSON.
//!
//! Two on-disk formats coexist:
//!
//! - **Legacy**: one pretty-printed JSON object for the whole database
//!   (what [`TuningDatabase::save`] writes). Every store rewrote
//!   O(records) bytes.
//! - **Log-structured** (the service's format, via [`DatabaseLog`]): the
//!   database file is an append-only NDJSON record log — each store
//!   appends one [`TuningRecord`] line — with a sibling `<path>.ckpt`
//!   checkpoint holding the compacted state. Compaction reuses the run
//!   journal's tmp+fsync+rename machinery, so a kill at any byte of the
//!   sequence leaves a loadable pair; the monotone merge makes replaying
//!   checkpoint + log idempotent in any crash window. Legacy files still
//!   load and are migrated to the log format by the first compaction.
//!
//! [`TuningDatabase::load`] understands both formats (and merges a
//! checkpoint sibling when one exists), so standalone CLI runs and the
//! service can share a database file across format generations.

use crate::config::Config;
use crate::journal::{checkpoint_path, checkpoint_tmp_path, sync_parent_dir};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// A serializable tuning-parameter value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", content = "value")]
pub enum StoredValue {
    /// Boolean parameter.
    Bool(bool),
    /// Signed integer parameter.
    Int(i64),
    /// Unsigned integer parameter.
    UInt(u64),
    /// Floating-point parameter.
    Float(f64),
    /// Symbolic (enum-like) parameter.
    Symbol(String),
}

impl From<&Value> for StoredValue {
    fn from(v: &Value) -> Self {
        match v {
            Value::Bool(b) => StoredValue::Bool(*b),
            Value::Int(i) => StoredValue::Int(*i),
            Value::UInt(u) => StoredValue::UInt(*u),
            Value::Float(f) => StoredValue::Float(*f),
            Value::Symbol(s) => StoredValue::Symbol(s.to_string()),
        }
    }
}

impl From<&StoredValue> for Value {
    fn from(v: &StoredValue) -> Self {
        match v {
            StoredValue::Bool(b) => Value::Bool(*b),
            StoredValue::Int(i) => Value::Int(*i),
            StoredValue::UInt(u) => Value::UInt(*u),
            StoredValue::Float(f) => Value::Float(*f),
            StoredValue::Symbol(s) => Value::Symbol(s.as_str().into()),
        }
    }
}

/// One stored tuning result.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TuningRecord {
    /// Kernel (or program) identifier.
    pub kernel: String,
    /// Device name the result was tuned on.
    pub device: String,
    /// Workload identifier (e.g. "m20_n576_k1"); empty = size-agnostic.
    #[serde(default)]
    pub workload: String,
    /// Parameter values in declaration order.
    pub parameters: Vec<(String, StoredValue)>,
    /// The measured scalar cost of the configuration.
    pub cost: f64,
    /// Configurations evaluated by the run that produced this record.
    #[serde(default)]
    pub evaluations: u64,
    /// Search-space size at tuning time (stringified `u128`).
    #[serde(default)]
    pub space_size: String,
}

impl TuningRecord {
    /// Reconstructs the configuration.
    pub fn config(&self) -> Config {
        Config::from_pairs(
            self.parameters
                .iter()
                .map(|(n, v)| (n.as_str(), Value::from(v))),
        )
    }
}

/// An in-memory collection of tuning records with JSON persistence.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TuningDatabase {
    records: BTreeMap<String, TuningRecord>,
}

fn key(kernel: &str, device: &str, workload: &str) -> String {
    format!("{kernel}\u{1f}{device}\u{1f}{workload}")
}

impl TuningDatabase {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a database file of either format: the legacy whole-file JSON
    /// object, or an NDJSON record log (one [`TuningRecord`] per line,
    /// torn final line tolerated). When a `<path>.ckpt` checkpoint sibling
    /// exists its records are merged first, so a log-structured database
    /// loads completely no matter where a crash interrupted a compaction.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)?;
        let mut db = TuningDatabase::new();
        let ckpt = checkpoint_path(path);
        if let Ok(ckpt_text) = std::fs::read_to_string(&ckpt) {
            db.merge_ndjson(&ckpt_text);
        }
        if is_legacy_format(&text) {
            let legacy: TuningDatabase =
                serde_json::from_str(&text).map_err(std::io::Error::other)?;
            for record in legacy.records.into_values() {
                db.merge_record(record);
            }
        } else {
            db.merge_ndjson(&text);
        }
        Ok(db)
    }

    /// Saves the database to a JSON file (pretty-printed for diff-ability).
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let text = serde_json::to_string_pretty(self).map_err(std::io::Error::other)?;
        std::fs::write(path, text)
    }

    /// Stores a result; an existing record for the same key is replaced
    /// only when the new cost is lower. Returns whether the record was
    /// stored.
    #[allow(clippy::too_many_arguments)] // the flat fields of one record
    pub fn store(
        &mut self,
        kernel: &str,
        device: &str,
        workload: &str,
        config: &Config,
        cost: f64,
        evaluations: u64,
        space_size: u128,
    ) -> bool {
        let k = key(kernel, device, workload);
        if let Some(existing) = self.records.get(&k) {
            if existing.cost <= cost {
                return false;
            }
        }
        self.records.insert(
            k,
            TuningRecord {
                kernel: kernel.to_string(),
                device: device.to_string(),
                workload: workload.to_string(),
                parameters: config
                    .iter()
                    .map(|(n, v)| (n.to_string(), StoredValue::from(v)))
                    .collect(),
                cost,
                evaluations,
                space_size: space_size.to_string(),
            },
        );
        true
    }

    /// Looks up the best-known record.
    pub fn lookup(&self, kernel: &str, device: &str, workload: &str) -> Option<&TuningRecord> {
        self.records.get(&key(kernel, device, workload))
    }

    /// Looks up just the configuration.
    pub fn lookup_config(&self, kernel: &str, device: &str, workload: &str) -> Option<Config> {
        self.lookup(kernel, device, workload)
            .map(TuningRecord::config)
    }

    /// All records, ordered by key.
    pub fn records(&self) -> impl Iterator<Item = &TuningRecord> {
        self.records.values()
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Merges another database into this one (cheaper records win).
    pub fn merge(&mut self, other: &TuningDatabase) {
        for r in other.records() {
            let cfg = r.config();
            self.store(
                &r.kernel,
                &r.device,
                &r.workload,
                &cfg,
                r.cost,
                r.evaluations,
                r.space_size.parse().unwrap_or(0),
            );
        }
    }

    /// Merges one record verbatim under the monotone rule (an existing
    /// cheaper record wins). Unlike [`merge`](Self::merge) this does not
    /// round-trip through [`Config`], so loaded records stay bit-identical
    /// to what was persisted. Returns whether the record was taken.
    pub fn merge_record(&mut self, record: TuningRecord) -> bool {
        let k = key(&record.kernel, &record.device, &record.workload);
        if let Some(existing) = self.records.get(&k) {
            if existing.cost <= record.cost {
                return false;
            }
        }
        self.records.insert(k, record);
        true
    }

    /// Renders every record as one NDJSON line — the record-log and
    /// checkpoint encoding of the log-structured format.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for record in self.records.values() {
            if let Ok(line) = serde_json::to_string(record) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }

    /// Merges NDJSON record lines (cheaper records win), stopping at the
    /// first unparseable line — a torn tail from a crashed append loses at
    /// most that final partial record. Returns how many records merged.
    pub fn merge_ndjson(&mut self, text: &str) -> usize {
        let mut merged = 0;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match serde_json::from_str::<TuningRecord>(line) {
                Ok(record) => {
                    if self.merge_record(record) {
                        merged += 1;
                    }
                }
                Err(_) => break,
            }
        }
        merged
    }

    /// The record most recently stored for a key, cloned (used by the
    /// service to append exactly what the index holds).
    pub fn record(&self, kernel: &str, device: &str, workload: &str) -> Option<TuningRecord> {
        self.records.get(&key(kernel, device, workload)).cloned()
    }
}

/// Whether `text` is a legacy whole-file JSON database. The legacy format
/// is always pretty-printed, so its first line is a lone `{` with more
/// lines after it; an NDJSON record log puts a complete JSON object on
/// every line. A file holding *only* `{` is not legacy — it is the 1-byte
/// torn tail of a killed first append, which the NDJSON loader drops.
fn is_legacy_format(text: &str) -> bool {
    match text.lines().find(|l| !l.trim().is_empty()) {
        Some(first) => first.trim() == "{" && text.trim() != "{",
        None => false,
    }
}

/// Append handle and compaction driver of a log-structured database file:
/// the write side of the format described in the module docs. The
/// in-memory [`TuningDatabase`] stays the index; every accepted store is
/// [`append`](DatabaseLog::append)ed as one NDJSON line, and
/// [`compact`](DatabaseLog::compact) folds log + previous checkpoint into
/// a fresh atomically-renamed `<path>.ckpt` before truncating the log.
#[derive(Debug)]
pub struct DatabaseLog {
    path: PathBuf,
    out: Option<std::fs::File>,
    /// Log records (loaded + appended) not yet folded into the
    /// checkpoint; drives the compaction threshold.
    appends_since_compact: usize,
    compact_every: usize,
    total_appends: u64,
    total_compactions: u64,
    /// The live file still holds the legacy whole-file format: the first
    /// compaction migrates it (no appends may land before that — they
    /// would corrupt the legacy JSON).
    legacy_pending: bool,
    /// Test/chaos hook: sleep this long inside every append and
    /// compaction, simulating slow storage.
    io_delay: Option<Duration>,
}

/// Default compaction threshold: fold the log into the checkpoint after
/// this many appended records.
pub const DB_COMPACT_EVERY: usize = 64;

/// What one [`DatabaseLog::compact`] did, for metrics and tracing.
#[derive(Clone, Copy, Debug)]
pub struct CompactionReport {
    /// Records in the freshly written checkpoint.
    pub records: u64,
    /// Wall-clock of the compaction, microseconds.
    pub micros: u64,
}

impl DatabaseLog {
    /// Opens (or prepares to create) the log-structured database at
    /// `path`: merges the checkpoint sibling and the record log — or a
    /// legacy whole-file database, which is then migrated by the first
    /// compaction — and returns the loaded index plus the log handle.
    /// A missing file is an empty database, created on first append.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<(TuningDatabase, DatabaseLog)> {
        let path = path.as_ref().to_path_buf();
        let mut db = TuningDatabase::new();
        if let Ok(ckpt_text) = std::fs::read_to_string(checkpoint_path(&path)) {
            db.merge_ndjson(&ckpt_text);
        }
        let mut pending = 0usize;
        let mut legacy_pending = false;
        match std::fs::read_to_string(&path) {
            Ok(text) if is_legacy_format(&text) => {
                let legacy: TuningDatabase =
                    serde_json::from_str(&text).map_err(std::io::Error::other)?;
                for record in legacy.records.into_values() {
                    db.merge_record(record);
                }
                legacy_pending = true;
            }
            Ok(text) => pending = db.merge_ndjson(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok((
            db,
            DatabaseLog {
                path,
                out: None,
                appends_since_compact: pending,
                compact_every: DB_COMPACT_EVERY,
                total_appends: 0,
                total_compactions: 0,
                legacy_pending,
                io_delay: None,
            },
        ))
    }

    /// Overrides the compaction threshold (builder-style; mostly for
    /// tests and benchmarks).
    pub fn with_compact_every(mut self, every: usize) -> Self {
        self.compact_every = every.max(1);
        self
    }

    /// Test/chaos hook: every subsequent append and compaction sleeps
    /// `delay` before touching the file system, simulating slow storage.
    pub fn set_io_delay(&mut self, delay: Duration) {
        self.io_delay = Some(delay);
    }

    /// Appends one record line to the log and fsyncs it. A legacy file
    /// must be compacted (migrated) before any append; callers should
    /// check [`should_compact`](Self::should_compact) first — appending
    /// onto a legacy file is refused rather than corrupting it.
    pub fn append(&mut self, record: &TuningRecord) -> std::io::Result<()> {
        if self.legacy_pending {
            return Err(std::io::Error::other(
                "database file is legacy-format; compact (migrate) before appending",
            ));
        }
        if let Some(delay) = self.io_delay {
            std::thread::sleep(delay);
        }
        if self.out.is_none() {
            self.out = Some(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.path)?,
            );
        }
        let out = self.out.as_mut().expect("append handle just opened");
        let line = serde_json::to_string(record).map_err(std::io::Error::other)?;
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
        out.sync_data()?;
        self.appends_since_compact += 1;
        self.total_appends += 1;
        Ok(())
    }

    /// Whether enough log entries accumulated (or a legacy migration is
    /// pending) that the next [`compact`](Self::compact) should run.
    pub fn should_compact(&self) -> bool {
        self.legacy_pending || self.appends_since_compact >= self.compact_every
    }

    /// Folds the full database state into a fresh checkpoint and empties
    /// the log — the journal-v4 sequence: write `<path>.ckpt.tmp`, fsync,
    /// rename over `<path>.ckpt`, fsync the directory, then truncate the
    /// live log. A kill at any byte of this sequence leaves the previous
    /// checkpoint + full log (or the new checkpoint + stale log) on disk,
    /// both of which load to the same state by the monotone merge.
    ///
    /// `db` is the caller's current index snapshot; it must contain every
    /// record ever appended (it may contain more — extra records are
    /// simply durable earlier).
    pub fn compact(&mut self, db: &TuningDatabase) -> std::io::Result<CompactionReport> {
        let started = Instant::now();
        if let Some(delay) = self.io_delay {
            std::thread::sleep(delay);
        }
        // Close the append handle: the log is about to be truncated.
        if let Some(out) = self.out.take() {
            out.sync_data()?;
        }
        let ckpt = checkpoint_path(&self.path);
        let tmp = checkpoint_tmp_path(&self.path);
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(db.to_ndjson().as_bytes())?;
            file.sync_data()?;
        }
        std::fs::rename(&tmp, &ckpt)?;
        sync_parent_dir(&ckpt);
        // The checkpoint is durable: the log's records are redundant now,
        // so an empty log replaces it (and a legacy file is migrated).
        let empty = std::fs::File::create(&self.path)?;
        empty.sync_data()?;
        self.appends_since_compact = 0;
        self.legacy_pending = false;
        self.total_compactions += 1;
        Ok(CompactionReport {
            records: db.len() as u64,
            micros: u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
        })
    }

    /// Records appended through this handle.
    pub fn appends(&self) -> u64 {
        self.total_appends
    }

    /// Compactions performed by this handle.
    pub fn compactions(&self) -> u64 {
        self.total_compactions
    }

    /// The live log path this handle writes.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_config() -> Config {
        Config::from_pairs([
            ("WGD", Value::UInt(8)),
            ("PADA", Value::Bool(true)),
            ("MODE", Value::Symbol("vec4".into())),
            ("SCALE", Value::Float(1.5)),
        ])
    }

    #[test]
    fn store_and_lookup() {
        let mut db = TuningDatabase::new();
        assert!(db.store(
            "XgemmDirect",
            "Tesla K20m",
            "is4",
            &sample_config(),
            42.0,
            100,
            1000
        ));
        let r = db.lookup("XgemmDirect", "Tesla K20m", "is4").unwrap();
        assert_eq!(r.cost, 42.0);
        let cfg = r.config();
        assert_eq!(cfg.get_u64("WGD"), 8);
        assert!(cfg.get_bool("PADA"));
        assert_eq!(cfg["MODE"], Value::Symbol("vec4".into()));
        assert!(db.lookup("XgemmDirect", "Tesla K20m", "other").is_none());
    }

    #[test]
    fn cheaper_records_win() {
        let mut db = TuningDatabase::new();
        db.store("k", "d", "", &sample_config(), 10.0, 1, 1);
        assert!(!db.store("k", "d", "", &sample_config(), 11.0, 1, 1));
        assert_eq!(db.lookup("k", "d", "").unwrap().cost, 10.0);
        assert!(db.store("k", "d", "", &sample_config(), 9.0, 1, 1));
        assert_eq!(db.lookup("k", "d", "").unwrap().cost, 9.0);
    }

    #[test]
    fn json_round_trip() {
        let mut db = TuningDatabase::new();
        db.store("saxpy", "Xeon", "n1024", &sample_config(), 3.25, 231, 231);
        let path = std::env::temp_dir().join(format!("atf-db-{}.json", std::process::id()));
        db.save(&path).unwrap();
        let loaded = TuningDatabase::load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        let r = loaded.lookup("saxpy", "Xeon", "n1024").unwrap();
        assert_eq!(r.cost, 3.25);
        assert_eq!(r.config(), sample_config());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn merge_prefers_cheaper() {
        let mut a = TuningDatabase::new();
        a.store("k", "d", "", &sample_config(), 5.0, 1, 1);
        a.store("k2", "d", "", &sample_config(), 7.0, 1, 1);
        let mut b = TuningDatabase::new();
        b.store("k", "d", "", &sample_config(), 4.0, 1, 1);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.lookup("k", "d", "").unwrap().cost, 4.0);
    }

    #[test]
    fn keys_do_not_collide() {
        let mut db = TuningDatabase::new();
        db.store("a", "b_c", "", &sample_config(), 1.0, 1, 1);
        db.store("a_b", "c", "", &sample_config(), 2.0, 1, 1);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn missing_file_errors() {
        assert!(TuningDatabase::load("/nonexistent/db.json").is_err());
    }

    fn temp_db_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("atf-dblog-{}-{}.json", tag, std::process::id()))
    }

    fn cleanup(path: &Path) {
        std::fs::remove_file(path).ok();
        std::fs::remove_file(checkpoint_path(path)).ok();
        std::fs::remove_file(checkpoint_tmp_path(path)).ok();
    }

    #[test]
    fn ndjson_round_trip() {
        let mut db = TuningDatabase::new();
        db.store("k1", "d", "w", &sample_config(), 5.0, 10, 100);
        db.store("k2", "d", "w", &sample_config(), 6.0, 20, 100);
        let mut loaded = TuningDatabase::new();
        assert_eq!(loaded.merge_ndjson(&db.to_ndjson()), 2);
        assert_eq!(loaded, db);
    }

    #[test]
    fn ndjson_torn_tail_stops_cleanly() {
        let mut db = TuningDatabase::new();
        db.store("k1", "d", "w", &sample_config(), 5.0, 10, 100);
        db.store("k2", "d", "w", &sample_config(), 6.0, 20, 100);
        let text = db.to_ndjson();
        let cut = text.len() - 7;
        let mut loaded = TuningDatabase::new();
        assert_eq!(loaded.merge_ndjson(&text[..cut]), 1);
        assert!(loaded.lookup("k1", "d", "w").is_some());
        assert!(loaded.lookup("k2", "d", "w").is_none());
    }

    #[test]
    fn log_append_and_reload() {
        let path = temp_db_path("append");
        cleanup(&path);
        let (mut db, mut log) = DatabaseLog::open(&path).unwrap();
        assert!(db.is_empty());
        db.store("k", "d", "w", &sample_config(), 9.0, 3, 27);
        log.append(&db.record("k", "d", "w").unwrap()).unwrap();
        db.store("k", "d", "w", &sample_config(), 4.0, 5, 27);
        log.append(&db.record("k", "d", "w").unwrap()).unwrap();
        assert_eq!(log.appends(), 2);

        let (reloaded, _log2) = DatabaseLog::open(&path).unwrap();
        assert_eq!(reloaded, db);
        // Plain load() understands the record log too.
        assert_eq!(TuningDatabase::load(&path).unwrap(), db);
        cleanup(&path);
    }

    #[test]
    fn log_compaction_truncates_and_preserves() {
        let path = temp_db_path("compact");
        cleanup(&path);
        let (mut db, log) = DatabaseLog::open(&path).unwrap();
        let mut log = log.with_compact_every(4);
        for i in 0..6 {
            let kernel = format!("k{i}");
            db.store(&kernel, "d", "w", &sample_config(), i as f64, 1, 64);
            log.append(&db.record(&kernel, "d", "w").unwrap()).unwrap();
        }
        assert!(log.should_compact());
        let report = log.compact(&db).unwrap();
        assert_eq!(report.records, 6);
        assert!(!log.should_compact());
        assert_eq!(log.compactions(), 1);
        // Live log truncated, checkpoint holds everything.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        let (reloaded, _log2) = DatabaseLog::open(&path).unwrap();
        assert_eq!(reloaded, db);
        // Appends after compaction land in the fresh log.
        db.store("late", "d", "w", &sample_config(), 0.5, 1, 64);
        log.append(&db.record("late", "d", "w").unwrap()).unwrap();
        let (again, _log3) = DatabaseLog::open(&path).unwrap();
        assert_eq!(again, db);
        cleanup(&path);
    }

    #[test]
    fn legacy_file_is_migrated_on_first_compaction() {
        let path = temp_db_path("legacy");
        cleanup(&path);
        let mut legacy = TuningDatabase::new();
        legacy.store("old", "dev", "w", &sample_config(), 2.0, 9, 81);
        legacy.save(&path).unwrap();

        let (mut db, mut log) = DatabaseLog::open(&path).unwrap();
        assert_eq!(db, legacy);
        // Appending onto the legacy JSON would corrupt it: refused until
        // the pending migration compaction runs.
        assert!(log.should_compact());
        let rec = db.record("old", "dev", "w").unwrap();
        assert!(log.append(&rec).is_err());
        log.compact(&db).unwrap();
        db.store("new", "dev", "w", &sample_config(), 1.0, 2, 81);
        log.append(&db.record("new", "dev", "w").unwrap()).unwrap();

        let (reloaded, _log2) = DatabaseLog::open(&path).unwrap();
        assert_eq!(reloaded, db);
        assert_eq!(TuningDatabase::load(&path).unwrap(), db);
        cleanup(&path);
    }
}
