//! Parameter configurations: assignments of values to named tuning parameters.

use crate::value::Value;
use std::fmt;
use std::ops::Index;
use std::sync::Arc;

/// A (possibly partial) configuration of tuning-parameter values.
///
/// During search-space generation a configuration grows one parameter at a
/// time (parameters are fixed in declaration order), so constraints of later
/// parameters can reference the values of earlier ones — exactly the contract
/// of ATF constraints.
///
/// Lookup is by name; configurations are small (≤ a few dozen parameters), so
/// a linear scan over a vector beats a hash map.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Config {
    entries: Vec<(Arc<str>, Value)>,
}

impl Config {
    /// An empty configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a configuration from `(name, value)` pairs.
    pub fn from_pairs<I, N, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (N, V)>,
        N: Into<Arc<str>>,
        V: Into<Value>,
    {
        Config {
            entries: pairs
                .into_iter()
                .map(|(n, v)| (n.into(), v.into()))
                .collect(),
        }
    }

    /// Appends a parameter value. Names must be unique; appending a duplicate
    /// name panics (a configuration is not a multimap).
    pub fn push(&mut self, name: Arc<str>, value: Value) {
        assert!(
            self.get(&name).is_none(),
            "duplicate parameter name `{name}` in configuration"
        );
        self.entries.push((name, value));
    }

    /// Removes the most recently appended parameter (used by the DFS space
    /// generator when backtracking).
    pub fn pop(&mut self) {
        self.entries.pop();
    }

    /// Looks up a parameter value by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find(|(n, _)| n.as_ref() == name)
            .map(|(_, v)| v)
    }

    /// Looks up a parameter by name and converts it to `u64`.
    ///
    /// # Panics
    /// Panics if the parameter is missing or not representable as `u64` —
    /// mirrors the convenience of `best_config["LS"]` in the paper.
    pub fn get_u64(&self, name: &str) -> u64 {
        self[name]
            .as_u64()
            .unwrap_or_else(|| panic!("parameter `{name}` is not a u64"))
    }

    /// Looks up a parameter by name and converts it to `f64` (panics like
    /// [`Config::get_u64`]).
    pub fn get_f64(&self, name: &str) -> f64 {
        self[name]
            .as_f64()
            .unwrap_or_else(|| panic!("parameter `{name}` is not numeric"))
    }

    /// Looks up a parameter by name and converts it to `bool` (panics like
    /// [`Config::get_u64`]).
    pub fn get_bool(&self, name: &str) -> bool {
        self[name]
            .as_bool()
            .unwrap_or_else(|| panic!("parameter `{name}` is not a bool"))
    }

    /// Number of parameters in the configuration.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the configuration holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, value)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(n, v)| (n.as_ref(), v))
    }

    /// Extends this configuration with all entries of `other`.
    pub fn extend_from(&mut self, other: &Config) {
        for (n, v) in &other.entries {
            self.push(n.clone(), v.clone());
        }
    }

    /// The parameter names in declaration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_ref())
    }
}

impl Index<&str> for Config {
    type Output = Value;

    fn index(&self, name: &str) -> &Value {
        self.get(name)
            .unwrap_or_else(|| panic!("no parameter `{name}` in configuration"))
    }
}

impl fmt::Debug for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (n, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}={v}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<'a> IntoIterator for &'a Config {
    type Item = (&'a str, &'a Value);
    type IntoIter = Box<dyn Iterator<Item = (&'a str, &'a Value)> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_index() {
        let mut c = Config::new();
        c.push("WPT".into(), 4u64.into());
        c.push("LS".into(), 64u64.into());
        assert_eq!(c["WPT"], Value::from(4u64));
        assert_eq!(c.get_u64("LS"), 64);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn pop_backtracks() {
        let mut c = Config::new();
        c.push("A".into(), 1u64.into());
        c.push("B".into(), 2u64.into());
        c.pop();
        assert!(c.get("B").is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_name_panics() {
        let mut c = Config::new();
        c.push("A".into(), 1u64.into());
        c.push("A".into(), 2u64.into());
    }

    #[test]
    #[should_panic(expected = "no parameter `XY`")]
    fn missing_index_panics() {
        let c = Config::new();
        let _ = &c["XY"];
    }

    #[test]
    fn from_pairs_and_iter_order() {
        let c = Config::from_pairs([("X", 1u64), ("Y", 2u64)]);
        let names: Vec<_> = c.names().collect();
        assert_eq!(names, vec!["X", "Y"]);
    }

    #[test]
    fn typed_getters() {
        let c = Config::from_pairs([("P", Value::from(true)), ("F", Value::from(1.5f64))]);
        assert!(c.get_bool("P"));
        assert_eq!(c.get_f64("F"), 1.5);
    }
}
