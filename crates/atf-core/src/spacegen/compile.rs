//! The constraint compiler: lowers alias-built constraints into per-prefix
//! *bounds* so the generation walk evaluates each constraint operand **once
//! per prefix** instead of once per candidate value, enumerates divisors
//! instead of scanning ranges where a `divides` atom allows it, and cuts
//! scans short with monotone propagators.
//!
//! Soundness: a compiled plan must accept exactly the values the original
//! predicate closures accept, in the same order. Three mechanisms guarantee
//! this:
//!
//! 1. Atom lowering mirrors the alias constructors' closure semantics
//!    *exactly* — `divides`/`is_multiple_of` bind their operand through
//!    `Expr::eval_u64`, the comparisons through `Expr::eval_f64`, and an
//!    operand evaluation error rejects the candidate, just like the
//!    closures do.
//! 2. Any constraint whose [`ConstraintKind`] is `Opaque` (an arbitrary
//!    user predicate) is kept as-is and evaluated per candidate — the
//!    sound fallback. Mixed trees (e.g. `divides(..) & predicate(..)`)
//!    compile the alias atoms and fall back only for the opaque leaf.
//! 3. The divisor-enumeration and early-cut fast paths apply only to plain
//!    ascending integer windows, where candidate order and atom
//!    monotonicity are known; the produced candidate list is filtered
//!    through the *full* bound, so extra conjuncts are never dropped.

use crate::config::Config;
use crate::constraint::{Constraint, ConstraintKind};
use crate::expr::Expr;
use crate::param::{Param, ParamGroup};
use crate::range::Range;
use crate::space::SpaceError;
use crate::value::Value;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A constraint lowered to its structural shape, with operand expressions
/// ready to bind against a prefix. Built once per parameter at plan-compile
/// time.
#[derive(Clone, Debug)]
pub(crate) enum Node {
    Divides(Expr),
    IsMultipleOf(Expr),
    LessThan(Expr),
    GreaterThan(Expr),
    Equal(Expr),
    Unequal(Expr),
    All(Vec<Node>),
    Any(Vec<Node>),
    Not(Box<Node>),
    /// Arbitrary predicate: evaluated per candidate (the soundness
    /// fallback).
    Opaque(Constraint),
}

fn lower(c: &Constraint) -> Node {
    match c.kind() {
        ConstraintKind::Divides(e) => Node::Divides(e.clone()),
        ConstraintKind::IsMultipleOf(e) => Node::IsMultipleOf(e.clone()),
        ConstraintKind::LessThan(e) => Node::LessThan(e.clone()),
        ConstraintKind::GreaterThan(e) => Node::GreaterThan(e.clone()),
        ConstraintKind::Equal(e) => Node::Equal(e.clone()),
        ConstraintKind::Unequal(e) => Node::Unequal(e.clone()),
        ConstraintKind::And(a, b) => {
            let mut parts = Vec::new();
            flatten(a, true, &mut parts);
            flatten(b, true, &mut parts);
            Node::All(parts)
        }
        ConstraintKind::Or(a, b) => {
            let mut parts = Vec::new();
            flatten(a, false, &mut parts);
            flatten(b, false, &mut parts);
            Node::Any(parts)
        }
        ConstraintKind::Not(inner) => Node::Not(Box::new(lower(inner))),
        ConstraintKind::Opaque => Node::Opaque(c.clone()),
    }
}

/// Flattens nested `&` (or `|`) chains into one `All` (`Any`) list,
/// preserving left-to-right evaluation order so short-circuiting matches
/// the combined closures.
fn flatten(c: &Constraint, conjunctive: bool, out: &mut Vec<Node>) {
    match (c.kind(), conjunctive) {
        (ConstraintKind::And(a, b), true) => {
            flatten(a, true, out);
            flatten(b, true, out);
        }
        (ConstraintKind::Or(a, b), false) => {
            flatten(a, false, out);
            flatten(b, false, out);
        }
        _ => out.push(lower(c)),
    }
}

/// A [`Node`] with its operand expressions evaluated against one generation
/// prefix — the per-prefix working form. Checking a candidate against a
/// `Bound` costs integer/float ops (plus a closure call per `Pred` leaf),
/// never an expression evaluation.
#[derive(Debug)]
pub(crate) enum Bound<'p> {
    Const(bool),
    /// Candidate must divide the bound target.
    Divides(u64),
    /// Candidate must be a multiple of the (nonzero) bound divisor.
    MultipleOf(u64),
    Less(f64),
    Greater(f64),
    Eq(f64),
    Ne(f64),
    All(Vec<Bound<'p>>),
    Any(Vec<Bound<'p>>),
    Not(Box<Bound<'p>>),
    /// Opaque predicate, evaluated per candidate.
    Pred(&'p Constraint),
}

/// Binds a lowered node against the prefix `partial`, evaluating each
/// operand expression once. An operand that fails to evaluate (unknown
/// parameter, division by zero, non-numeric) yields `Const(false)` —
/// exactly the alias closures' behaviour.
pub(crate) fn bind<'p>(node: &'p Node, partial: &Config) -> Bound<'p> {
    match node {
        Node::Divides(e) => match e.eval_u64(partial) {
            Ok(t) => Bound::Divides(t),
            Err(_) => Bound::Const(false),
        },
        Node::IsMultipleOf(e) => match e.eval_u64(partial) {
            Ok(d) if d != 0 => Bound::MultipleOf(d),
            _ => Bound::Const(false),
        },
        Node::LessThan(e) => match e.eval_f64(partial) {
            Ok(t) => Bound::Less(t),
            Err(_) => Bound::Const(false),
        },
        Node::GreaterThan(e) => match e.eval_f64(partial) {
            Ok(t) => Bound::Greater(t),
            Err(_) => Bound::Const(false),
        },
        Node::Equal(e) => match e.eval_f64(partial) {
            Ok(t) => Bound::Eq(t),
            Err(_) => Bound::Const(false),
        },
        Node::Unequal(e) => match e.eval_f64(partial) {
            Ok(t) => Bound::Ne(t),
            Err(_) => Bound::Const(false),
        },
        Node::All(xs) => Bound::All(xs.iter().map(|x| bind(x, partial)).collect()),
        Node::Any(xs) => Bound::Any(xs.iter().map(|x| bind(x, partial)).collect()),
        Node::Not(x) => Bound::Not(Box::new(bind(x, partial))),
        Node::Opaque(c) => Bound::Pred(c),
    }
}

impl Bound<'_> {
    /// Does candidate `v` satisfy the bound? Mirrors the alias closures:
    /// `Divides`/`MultipleOf` compare through `Value::as_u64`, the
    /// comparisons through `Value::as_f64`, and a candidate outside the
    /// expected domain fails.
    pub(crate) fn check(&self, v: &Value, partial: &Config) -> bool {
        match self {
            Bound::Const(b) => *b,
            Bound::Divides(t) => match v.as_u64() {
                Some(u) if u != 0 => t % u == 0,
                _ => false,
            },
            Bound::MultipleOf(d) => match v.as_u64() {
                Some(u) => u % d == 0,
                None => false,
            },
            Bound::Less(t) => v.as_f64().is_some_and(|x| x < *t),
            Bound::Greater(t) => v.as_f64().is_some_and(|x| x > *t),
            Bound::Eq(t) => v.as_f64().is_some_and(|x| x == *t),
            Bound::Ne(t) => v.as_f64().is_some_and(|x| x != *t),
            Bound::All(xs) => xs.iter().all(|x| x.check(v, partial)),
            Bound::Any(xs) => xs.iter().any(|x| x.check(v, partial)),
            Bound::Not(x) => !x.check(v, partial),
            Bound::Pred(c) => c.check(v, partial),
        }
    }

    /// Monotone propagator: `true` if, given that candidate values are
    /// scanned in non-decreasing numeric order, this bound (and therefore
    /// any conjunction containing it) fails for `v` **and every later
    /// candidate** — so the scan can stop. Only atoms whose accepting set
    /// is upward-closed in the complement qualify: `< t` and `== t` fail
    /// permanently once the value passes `t`, and a divisor of `t > 0`
    /// can never exceed `t`.
    pub(crate) fn permanently_fails(&self, v: &Value) -> bool {
        match self {
            Bound::All(xs) => xs.iter().any(|x| x.atom_permanently_fails(v)),
            other => other.atom_permanently_fails(v),
        }
    }

    fn atom_permanently_fails(&self, v: &Value) -> bool {
        match self {
            Bound::Const(false) => true,
            Bound::Less(t) => v.as_f64().is_some_and(|x| x >= *t),
            Bound::Eq(t) => v.as_f64().is_some_and(|x| x > *t),
            Bound::Divides(t) => *t > 0 && v.as_u64().is_some_and(|u| u > *t),
            _ => false,
        }
    }

    /// Inclusive integer value bounds implied by top-level comparison
    /// conjuncts: any *integer* value accepted by this bound satisfies
    /// `lo <= v <= hi`. Conservative — atoms that imply no bound (or
    /// appear under `Any`/`Not`) contribute nothing. This is what lets a
    /// monotone window scan start *at* the first possibly-valid position
    /// instead of filtering its way through the whole below-threshold
    /// prefix (`> t` previously scanned it; `< t`/`== t` early-cut the
    /// tail but paid a check per candidate up to the threshold).
    pub(crate) fn value_bounds(&self) -> (Option<i128>, Option<i128>) {
        match self {
            Bound::All(xs) => xs.iter().fold((None, None), |(lo, hi), x| {
                let (l, h) = x.atom_value_bounds();
                (
                    match (lo, l) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        (a, b) => a.or(b),
                    },
                    match (hi, h) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    },
                )
            }),
            other => other.atom_value_bounds(),
        }
    }

    fn atom_value_bounds(&self) -> (Option<i128>, Option<i128>) {
        // Thresholds beyond this magnitude cannot tighten any i64/u64
        // window further than "everything" / "nothing", and float→int
        // conversion gets delicate; skip them.
        const LIMIT: f64 = 9.0e18;
        match self {
            Bound::Greater(t) if t.is_finite() && t.abs() < LIMIT => {
                // Integer v > t  ⇔  v ≥ ⌊t⌋ + 1.
                (Some(t.floor() as i128 + 1), None)
            }
            Bound::Less(t) if t.is_finite() && t.abs() < LIMIT => {
                // Integer v < t  ⇔  v ≤ ⌈t⌉ − 1.
                (None, Some(t.ceil() as i128 - 1))
            }
            Bound::Eq(t) if t.is_finite() && t.abs() < LIMIT => {
                // Non-integral t: ceil > floor ⇒ empty window, correctly.
                (Some(t.ceil() as i128), Some(t.floor() as i128))
            }
            _ => (None, None),
        }
    }

    /// The smallest `divides` target among top-level conjuncts, if any —
    /// the handle for divisor enumeration.
    fn divides_target(&self) -> Option<u64> {
        match self {
            Bound::Divides(t) => Some(*t),
            Bound::All(xs) => xs
                .iter()
                .filter_map(|x| match x {
                    Bound::Divides(t) => Some(*t),
                    _ => None,
                })
                .min(),
            _ => None,
        }
    }
}

/// Integer square root (floor), used to cost divisor enumeration.
fn isqrt(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut r = (n as f64).sqrt() as u64;
    while r.checked_mul(r).is_none_or(|sq| sq > n) {
        r -= 1;
    }
    while (r + 1).checked_mul(r + 1).is_some_and(|sq| sq <= n) {
        r += 1;
    }
    r
}

/// Ascending divisors of `t` that lie on the window `begin..=end` stepped
/// by `step`.
fn divisors_in_window(t: u64, begin: u64, end: u64, step: u64) -> Vec<u64> {
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut i = 1u64;
    while i <= t / i {
        if t.is_multiple_of(i) {
            small.push(i);
            let j = t / i;
            if j != i {
                large.push(j);
            }
        }
        i += 1;
    }
    large.reverse();
    small.extend(large);
    small.retain(|&d| d >= begin && d <= end && (d - begin).is_multiple_of(step));
    small
}

/// The candidate values of one parameter under one generation prefix:
/// either a filtered scan over the parameter's range or a precomputed list
/// (divisor enumeration). Candidate *positions* — raw range indices for a
/// window, list indices for a list — are stable for a given prefix, which
/// is what lazy-space checkpoints rely on.
pub(crate) enum CandSource<'p> {
    Window {
        range: &'p Range,
        bound: Option<Bound<'p>>,
        /// Plain ascending numeric window: monotone early-cut allowed.
        monotone: bool,
        next: u64,
        len: u64,
    },
    List {
        values: Vec<Value>,
        next: usize,
    },
}

impl CandSource<'_> {
    /// The next valid candidate after the current position, as
    /// `(position, value)`.
    pub(crate) fn next(&mut self, partial: &Config) -> Option<(u64, Value)> {
        match self {
            CandSource::Window {
                range,
                bound,
                monotone,
                next,
                len,
            } => {
                while *next < *len {
                    let i = *next;
                    *next += 1;
                    let v = range.get(i);
                    match bound {
                        None => return Some((i, v)),
                        Some(b) => {
                            if b.check(&v, partial) {
                                return Some((i, v));
                            }
                            if *monotone && b.permanently_fails(&v) {
                                *next = *len;
                                return None;
                            }
                        }
                    }
                }
                None
            }
            CandSource::List { values, next } => {
                if *next < values.len() {
                    let i = *next;
                    *next += 1;
                    Some((i as u64, values[i].clone()))
                } else {
                    None
                }
            }
        }
    }

    /// Positions the source *at* `pos` (a position previously returned by
    /// [`Self::next`] for the same prefix) and returns its value. The
    /// value is trusted valid — it passed the bound when first enumerated.
    pub(crate) fn seek(&mut self, pos: u64) -> Value {
        match self {
            CandSource::Window { range, next, .. } => {
                *next = pos + 1;
                range.get(pos)
            }
            CandSource::List { values, next } => {
                *next = pos as usize + 1;
                values[pos as usize].clone()
            }
        }
    }
}

/// One parameter's compiled plan.
#[derive(Clone, Debug)]
struct ParamPlan {
    param: Param,
    node: Option<Node>,
}

/// A whole group's compiled generation plan: per-parameter lowered
/// constraints plus precomputed structure (unconstrained-suffix marks for
/// the counting shortcut).
#[derive(Clone, Debug)]
pub(crate) struct GroupPlan {
    params: Vec<ParamPlan>,
    names: Arc<[Arc<str>]>,
    /// `unconstrained_tail[d]`: parameters `d..` all carry no constraint,
    /// so the subtree below any prefix of length `d` has exactly
    /// `∏ range.len()` leaves.
    unconstrained_tail: Vec<bool>,
}

impl GroupPlan {
    pub(crate) fn compile(group: &ParamGroup) -> Self {
        let params: Vec<ParamPlan> = group
            .params()
            .iter()
            .map(|p| ParamPlan {
                node: p.constraint().map(lower),
                param: p.clone(),
            })
            .collect();
        let names: Arc<[Arc<str>]> = group.params().iter().map(|p| p.name_arc()).collect();
        let mut unconstrained_tail = vec![false; params.len()];
        let mut all_clear = true;
        for d in (0..params.len()).rev() {
            all_clear &= params[d].node.is_none();
            unconstrained_tail[d] = all_clear;
        }
        GroupPlan {
            params,
            names,
            unconstrained_tail,
        }
    }

    /// Number of parameters.
    pub(crate) fn len(&self) -> usize {
        self.params.len()
    }

    /// Parameter names in declaration order (shared allocation).
    pub(crate) fn names(&self) -> Arc<[Arc<str>]> {
        self.names.clone()
    }

    pub(crate) fn param(&self, depth: usize) -> &Param {
        &self.params[depth].param
    }

    /// The candidate source for `depth` under the prefix `partial`: binds
    /// the parameter's constraint once, then picks divisor enumeration
    /// when a `divides` conjunct makes it asymptotically cheaper than
    /// scanning the window.
    pub(crate) fn candidates(&self, depth: usize, partial: &Config) -> CandSource<'_> {
        let pp = &self.params[depth];
        let range = pp.param.range();
        let Some(node) = &pp.node else {
            return CandSource::Window {
                range,
                bound: None,
                monotone: false,
                next: 0,
                len: range.len(),
            };
        };
        let bound = bind(node, partial);
        let monotone = matches!(
            range,
            Range::UIntInterval {
                generator: None,
                step: 1..,
                ..
            } | Range::IntInterval {
                generator: None,
                step: 1..,
                ..
            }
        );
        if let Range::UIntInterval {
            begin,
            end,
            step,
            generator: None,
        } = range
        {
            if begin <= end {
                if let Some(t) = bound.divides_target() {
                    let window = (end - begin) / step + 1;
                    // Enumerating divisors costs ~√t; take that path when
                    // it clearly beats scanning the window.
                    if t > 0 && isqrt(t).saturating_mul(4) < window {
                        let values: Vec<Value> = divisors_in_window(t, *begin, *end, *step)
                            .into_iter()
                            .map(Value::UInt)
                            .filter(|v| bound.check(v, partial))
                            .collect();
                        return CandSource::List { values, next: 0 };
                    }
                }
            }
        }
        let mut next = 0u64;
        let mut len = range.len();
        if monotone && len > 0 {
            // Tighten the scan window to the positions the comparison
            // conjuncts can possibly accept. Positions stay *raw* range
            // indices (seek/lazy-space checkpoints depend on that); only
            // the start cursor and the exclusive end move.
            let (lo, hi) = bound.value_bounds();
            let (begin, step) = match range {
                Range::UIntInterval { begin, step, .. } => (*begin as i128, *step as i128),
                Range::IntInterval { begin, step, .. } => (i128::from(*begin), i128::from(*step)),
                _ => unreachable!("monotone implies an integer interval"),
            };
            if let Some(lo) = lo {
                if lo > begin {
                    let skip = (lo - begin + step - 1) / step;
                    next = if skip >= len as i128 {
                        len
                    } else {
                        skip as u64
                    };
                }
            }
            if let Some(hi) = hi {
                if hi < begin {
                    len = 0;
                } else {
                    let last = (hi - begin) / step;
                    if last + 1 < len as i128 {
                        len = (last + 1) as u64;
                    }
                }
            }
        }
        CandSource::Window {
            range,
            bound: Some(bound),
            monotone,
            next,
            len,
        }
    }

    /// Depth-first generation walk from `depth` under `partial`, emitting
    /// each complete valid value tuple. Identical output (values and
    /// order) to the reference predicate-evaluation walk.
    pub(crate) fn walk(
        &self,
        depth: usize,
        partial: &mut Config,
        values: &mut Vec<Value>,
        emit: &mut impl FnMut(&[Value]) -> Result<(), SpaceError>,
        cancel: Option<&AtomicBool>,
    ) -> Result<(), SpaceError> {
        if depth == self.params.len() {
            return emit(values);
        }
        if let Some(flag) = cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(SpaceError::Cancelled);
            }
        }
        let mut src = self.candidates(depth, partial);
        while let Some((_, v)) = src.next(partial) {
            partial.push(self.params[depth].param.name_arc(), v.clone());
            values.push(v);
            let r = self.walk(depth + 1, partial, values, emit, cancel);
            values.pop();
            partial.pop();
            r?;
        }
        Ok(())
    }

    /// Counts valid completions of the prefix at `depth` without
    /// materializing them, short-cutting unconstrained suffixes to a
    /// checked product of range sizes. Overflowing `u64` returns
    /// [`SpaceError::Overflow`] — reachable for astronomically large
    /// unconstrained spaces where the count cannot be represented.
    pub(crate) fn count_from(&self, depth: usize, partial: &mut Config) -> Result<u64, SpaceError> {
        if depth == self.params.len() {
            return Ok(1);
        }
        if self.unconstrained_tail[depth] {
            let mut prod = 1u64;
            for pp in &self.params[depth..] {
                prod = prod
                    .checked_mul(pp.param.range().len())
                    .ok_or(SpaceError::Overflow)?;
            }
            return Ok(prod);
        }
        let mut n = 0u64;
        let mut src = self.candidates(depth, partial);
        while let Some((_, v)) = src.next(partial) {
            partial.push(self.params[depth].param.name_arc(), v);
            let r = self.count_from(depth + 1, partial);
            partial.pop();
            n = n.checked_add(r?).ok_or(SpaceError::Overflow)?;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{divides, equal, greater_than, less_than, predicate, unequal};
    use crate::expr::{cst, param as p};
    use crate::param::{tp, tp_c};

    fn enumerate(group: &ParamGroup) -> Vec<Vec<Value>> {
        let plan = GroupPlan::compile(group);
        let mut out = Vec::new();
        let mut partial = Config::new();
        let mut values = Vec::new();
        plan.walk(
            0,
            &mut partial,
            &mut values,
            &mut |vals| {
                out.push(vals.to_vec());
                Ok(())
            },
            None,
        )
        .unwrap();
        out
    }

    fn reference(group: &ParamGroup) -> Vec<Vec<Value>> {
        let gs = crate::space::GroupSpace::generate_reference(group);
        (0..gs.len()).map(|i| gs.values(i).to_vec()).collect()
    }

    #[test]
    fn compiled_matches_reference_on_divisor_chain() {
        let g = ParamGroup::new(vec![
            tp_c("WPT", Range::interval(1, 64), divides(cst(64u64))),
            tp_c("LS", Range::interval(1, 64), divides(cst(64u64) / p("WPT"))),
        ]);
        assert_eq!(enumerate(&g), reference(&g));
    }

    #[test]
    fn compiled_matches_reference_with_opaque_fallback() {
        let g = ParamGroup::new(vec![
            tp("A", Range::interval(1, 12)),
            tp_c(
                "B",
                Range::interval(1, 12),
                divides(p("A"))
                    & predicate("A*B <= 24", |v, c| {
                        v.as_u64()
                            .zip(c.get("A").and_then(|a| a.as_u64()))
                            .is_some_and(|(b, a)| a * b <= 24)
                    }),
            ),
        ]);
        assert_eq!(enumerate(&g), reference(&g));
    }

    #[test]
    fn compiled_matches_reference_on_disjunction_and_negation() {
        let g = ParamGroup::new(vec![
            tp("A", Range::interval(1, 10)),
            tp_c(
                "B",
                Range::interval(1, 10),
                (less_than(p("A")) | equal(cst(7u64))).not() & unequal(p("A")),
            ),
        ]);
        assert_eq!(enumerate(&g), reference(&g));
    }

    #[test]
    fn divisor_enumeration_kicks_in_on_large_windows() {
        // 1<<20 window with a divides constraint: the compiled plan must
        // not scan it — witnessed by finishing instantly and agreeing
        // with arithmetic.
        let n = 1u64 << 20;
        let g = ParamGroup::new(vec![tp_c("LS", Range::interval(1, n), divides(cst(n)))]);
        let got = enumerate(&g);
        assert_eq!(got.len(), 21); // divisors of 2^20
        assert_eq!(got[0], vec![Value::UInt(1)]);
        assert_eq!(got[20], vec![Value::UInt(n)]);
    }

    #[test]
    fn monotone_cut_agrees_with_reference() {
        let g = ParamGroup::new(vec![
            tp("A", Range::interval(1, 9)),
            tp_c("B", Range::interval(1, 1000), less_than(p("A") * cst(3u64))),
            tp_c("C", Range::interval(1, 50), equal(p("B"))),
        ]);
        assert_eq!(enumerate(&g), reference(&g));
    }

    #[test]
    fn greater_than_and_stepped_windows() {
        let g = ParamGroup::new(vec![
            tp("A", Range::interval_step(2, 20, 3)),
            tp_c("B", Range::interval_step(1, 40, 2), greater_than(p("A"))),
        ]);
        assert_eq!(enumerate(&g), reference(&g));
    }

    #[test]
    fn count_shortcut_matches_enumeration() {
        let g = ParamGroup::new(vec![
            tp_c("A", Range::interval(1, 24), divides(cst(24u64))),
            tp("B", Range::interval(1, 7)),
            tp("C", Range::interval(1, 5)),
        ]);
        let plan = GroupPlan::compile(&g);
        let n = plan.count_from(0, &mut Config::new()).unwrap();
        assert_eq!(n as usize, enumerate(&g).len());
    }

    #[test]
    fn count_overflows_to_structured_error() {
        let g = ParamGroup::new(vec![
            tp("A", Range::interval(1, u64::MAX)),
            tp("B", Range::interval(1, u64::MAX)),
        ]);
        let plan = GroupPlan::compile(&g);
        assert_eq!(
            plan.count_from(0, &mut Config::new()),
            Err(SpaceError::Overflow)
        );
    }

    #[test]
    fn isqrt_exact() {
        for n in [0u64, 1, 2, 3, 4, 15, 16, 17, 1 << 40, u64::MAX] {
            let r = isqrt(n);
            assert!(r as u128 * r as u128 <= n as u128);
            assert!((r as u128 + 1) * (r as u128 + 1) > n as u128);
        }
    }

    #[test]
    fn divisors_ascending_and_clipped() {
        assert_eq!(divisors_in_window(12, 1, 12, 1), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors_in_window(12, 2, 6, 2), vec![2, 4, 6]);
        assert_eq!(divisors_in_window(1, 2, 100, 1), Vec::<u64>::new());
    }
}
