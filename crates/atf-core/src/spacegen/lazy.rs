//! Lazy streaming spaces: enumerate valid configurations on demand instead
//! of materializing them.
//!
//! A [`LazyGroup`] runs one counting pass at construction (same compiled
//! walk as materialized generation, but nothing is stored except a
//! *checkpoint* — the per-depth candidate positions — every `block_size`
//! valid configs). Random access restores the nearest checkpoint and
//! re-enumerates at most one block, which lands in a small LRU block cache.
//! Memory is O(valid/block_size) for checkpoints plus O(blocks · block_size)
//! for the cache — bounded regardless of how many valid configurations the
//! group has.
//!
//! [`LazySpace`] is the cross product of lazy groups and implements the
//! same indexable interface as the materialized
//! [`SearchSpace`](crate::space::SearchSpace) (`len`/`get`/`decompose`/
//! `compose`/`iter`), so random, exhaustive, and model-based search all
//! work unchanged on spaces too large to materialize. `SearchSpace: From
//! <LazySpace>` plugs a lazy space straight into a
//! [`TuningSession`](crate::session::TuningSession).

use super::compile::{CandSource, GroupPlan};
use crate::config::Config;
use crate::param::ParamGroup;
use crate::space::SpaceError;
use crate::value::Value;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

/// How many blocks the per-group LRU cache retains.
const CACHE_BLOCKS: usize = 8;

/// Default block size (configs between checkpoints).
pub const DEFAULT_BLOCK_SIZE: u64 = 1024;

/// A resumable iterative enumerator over one group's valid configurations.
/// Equivalent to the recursive generation walk, but with an explicit frame
/// stack so the position after any emitted config can be snapshotted and
/// restored.
pub(crate) struct GroupCursor<'p> {
    plan: &'p GroupPlan,
    partial: Config,
    values: Vec<Value>,
    frames: Vec<Frame<'p>>,
    started: bool,
    done: bool,
}

struct Frame<'p> {
    src: CandSource<'p>,
    /// Position of the currently chosen candidate (for snapshots).
    cur: u64,
}

impl<'p> GroupCursor<'p> {
    pub(crate) fn new(plan: &'p GroupPlan) -> Self {
        GroupCursor {
            plan,
            partial: Config::new(),
            values: Vec::with_capacity(plan.len()),
            frames: Vec::with_capacity(plan.len()),
            started: false,
            done: false,
        }
    }

    fn push_value(&mut self, depth: usize, v: Value) {
        self.partial
            .push(self.plan.param(depth).name_arc(), v.clone());
        self.values.push(v);
    }

    fn pop_value(&mut self) {
        self.values.pop();
        self.partial.pop();
    }

    /// Fills frames from `d0` to the last depth with the first valid
    /// completion, backtracking within `d0..` as needed. On `false` the
    /// state is restored to `frames.len() == d0`.
    fn descend(&mut self, d0: usize) -> bool {
        debug_assert_eq!(self.frames.len(), d0);
        let n = self.plan.len();
        let mut d = d0;
        'outer: loop {
            let mut src = self.plan.candidates(d, &self.partial);
            if let Some((pos, v)) = src.next(&self.partial) {
                self.frames.push(Frame { src, cur: pos });
                self.push_value(d, v);
                if d + 1 == n {
                    return true;
                }
                d += 1;
                continue 'outer;
            }
            // No candidate at depth d: advance an earlier frame.
            loop {
                if d == d0 {
                    return false;
                }
                d -= 1;
                self.pop_value();
                let f = self.frames.last_mut().expect("frame at depth d");
                if let Some((pos, v)) = f.src.next(&self.partial) {
                    f.cur = pos;
                    self.push_value(d, v);
                    d += 1;
                    continue 'outer;
                }
                self.frames.pop();
            }
        }
    }

    /// Advances to the next valid configuration; returns its value tuple.
    pub(crate) fn next(&mut self) -> Option<&[Value]> {
        if self.done {
            return None;
        }
        let n = self.plan.len();
        if !self.started {
            self.started = true;
            if !self.descend(0) {
                self.done = true;
                return None;
            }
            return Some(&self.values);
        }
        loop {
            let d = self.frames.len() - 1;
            self.pop_value();
            let f = self.frames.last_mut().expect("frame at depth d");
            if let Some((pos, v)) = f.src.next(&self.partial) {
                f.cur = pos;
                self.push_value(d, v);
                if d + 1 == n || self.descend(d + 1) {
                    return Some(&self.values);
                }
                continue; // deeper subtree empty: advance depth d again
            }
            self.frames.pop();
            if self.frames.is_empty() {
                self.done = true;
                return None;
            }
        }
    }

    /// The per-depth candidate positions of the configuration the cursor
    /// currently points at. Valid only right after [`Self::next`] returned
    /// `Some`.
    pub(crate) fn snapshot(&self) -> Vec<u64> {
        debug_assert_eq!(self.frames.len(), self.plan.len());
        self.frames.iter().map(|f| f.cur).collect()
    }

    /// Repositions the cursor at a previously snapshotted configuration and
    /// returns its value tuple. The positions are trusted — they were valid
    /// when snapshotted, and candidate sources are deterministic per prefix.
    pub(crate) fn restore(&mut self, positions: &[u64]) -> &[Value] {
        self.partial = Config::new();
        self.values.clear();
        self.frames.clear();
        self.started = true;
        self.done = false;
        for (d, &pos) in positions.iter().enumerate() {
            let mut src = self.plan.candidates(d, &self.partial);
            let v = src.seek(pos);
            self.frames.push(Frame { src, cur: pos });
            self.push_value(d, v);
        }
        &self.values
    }
}

/// One parameter group enumerated lazily: a compiled plan, block
/// checkpoints from the counting pass, and a bounded LRU block cache.
/// Cloning shares the cache.
#[derive(Clone)]
pub struct LazyGroup {
    plan: Arc<GroupPlan>,
    names: Arc<[Arc<str>]>,
    len: u64,
    block_size: u64,
    /// Cursor positions of configs `0, B, 2B, ...`.
    checkpoints: Arc<[Vec<u64>]>,
    cache: Arc<Mutex<BlockCache>>,
}

/// One materialized block of configurations, shared between the cache and
/// readers.
type Block = Arc<Vec<Box<[Value]>>>;

#[derive(Default)]
struct BlockCache {
    /// `(block index, configs)` in LRU order (front = oldest).
    blocks: VecDeque<(u64, Block)>,
}

impl LazyGroup {
    /// Builds the lazy view of `group`: one counting pass recording a
    /// checkpoint every `block_size` valid configurations.
    pub fn build(group: &ParamGroup, block_size: u64) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let plan = GroupPlan::compile(group);
        let mut checkpoints = Vec::new();
        let mut len = 0u64;
        {
            let mut cursor = GroupCursor::new(&plan);
            while cursor.next().is_some() {
                if len.is_multiple_of(block_size) {
                    checkpoints.push(cursor.snapshot());
                }
                len += 1;
            }
        }
        let names = plan.names();
        LazyGroup {
            plan: Arc::new(plan),
            names,
            len,
            block_size,
            checkpoints: checkpoints.into(),
            cache: Arc::new(Mutex::new(BlockCache::default())),
        }
    }

    /// Number of valid configurations.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` if the group has no valid configuration.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The parameter names of this group, in declaration order.
    pub fn names(&self) -> &[Arc<str>] {
        &self.names
    }

    fn block(&self, block: u64) -> Block {
        let mut cache = self.cache.lock().expect("lazy block cache lock");
        if let Some(i) = cache.blocks.iter().position(|(b, _)| *b == block) {
            let hit = cache.blocks.remove(i).expect("position valid");
            cache.blocks.push_back(hit.clone());
            return hit.1;
        }
        let start = block * self.block_size;
        let count = self.block_size.min(self.len - start) as usize;
        let mut configs = Vec::with_capacity(count);
        let mut cursor = GroupCursor::new(&self.plan);
        let first = cursor.restore(&self.checkpoints[block as usize]);
        configs.push(first.to_vec().into_boxed_slice());
        while configs.len() < count {
            let vals = cursor.next().expect("count pass said configs exist");
            configs.push(vals.to_vec().into_boxed_slice());
        }
        let entry = Arc::new(configs);
        cache.blocks.push_back((block, entry.clone()));
        while cache.blocks.len() > CACHE_BLOCKS {
            cache.blocks.pop_front();
        }
        entry
    }

    /// The `i`-th valid configuration's values.
    pub fn values(&self, i: u64) -> Vec<Value> {
        assert!(i < self.len, "lazy group index {i} out of bounds");
        let block = self.block(i / self.block_size);
        block[(i % self.block_size) as usize].to_vec()
    }

    /// Appends the `i`-th valid configuration's entries to `out`.
    pub fn write_config(&self, i: u64, out: &mut Config) {
        assert!(i < self.len, "lazy group index {i} out of bounds");
        let block = self.block(i / self.block_size);
        let vals = &block[(i % self.block_size) as usize];
        for (name, value) in self.names.iter().zip(vals.iter()) {
            out.push(name.clone(), value.clone());
        }
    }
}

impl fmt::Debug for LazyGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LazyGroup({:?}; {} valid configs, block {})",
            self.names.iter().map(|n| n.as_ref()).collect::<Vec<_>>(),
            self.len,
            self.block_size
        )
    }
}

/// A lazily enumerated search space: the (virtual) cross product of
/// [`LazyGroup`]s, indexable exactly like the materialized
/// [`SearchSpace`](crate::space::SearchSpace).
#[derive(Clone, Debug)]
pub struct LazySpace {
    groups: Vec<LazyGroup>,
    len: u128,
}

impl LazySpace {
    /// Builds lazy views of all groups with the default block size.
    pub fn generate(groups: &[ParamGroup]) -> Result<Self, SpaceError> {
        Self::generate_with_block(groups, DEFAULT_BLOCK_SIZE)
    }

    /// Builds lazy views with an explicit block size (configs between
    /// checkpoints — smaller blocks mean faster random access and more
    /// checkpoint memory).
    pub fn generate_with_block(groups: &[ParamGroup], block_size: u64) -> Result<Self, SpaceError> {
        let lazy: Vec<LazyGroup> = groups
            .iter()
            .map(|g| LazyGroup::build(g, block_size))
            .collect();
        Self::from_groups(lazy)
    }

    /// Assembles a lazy space from already-built lazy groups.
    pub fn from_groups(groups: Vec<LazyGroup>) -> Result<Self, SpaceError> {
        let mut len: u128 = if groups.is_empty() { 0 } else { 1 };
        for g in &groups {
            len = len
                .checked_mul(g.len() as u128)
                .ok_or(SpaceError::Overflow)?;
        }
        Ok(LazySpace { groups, len })
    }

    /// Total number of valid configurations.
    pub fn len(&self) -> u128 {
        self.len
    }

    /// `true` if the space contains no valid configuration.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The lazy group views.
    pub fn groups(&self) -> &[LazyGroup] {
        &self.groups
    }

    /// The per-group sizes — the dimensions search techniques navigate.
    pub fn dims(&self) -> Vec<u64> {
        self.groups.iter().map(|g| g.len()).collect()
    }

    /// The configuration at per-group coordinates `coords`.
    pub fn get_by_coords(&self, coords: &[u64]) -> Config {
        assert_eq!(coords.len(), self.groups.len(), "coordinate arity mismatch");
        let mut cfg = Config::new();
        for (g, &i) in self.groups.iter().zip(coords) {
            g.write_config(i, &mut cfg);
        }
        cfg
    }

    /// The configuration at flat index `index`.
    pub fn get(&self, index: u128) -> Config {
        self.get_by_coords(&self.decompose(index))
    }

    /// Decomposes a flat index into per-group coordinates.
    pub fn decompose(&self, mut index: u128) -> Vec<u64> {
        assert!(
            index < self.len,
            "index {index} out of bounds ({})",
            self.len
        );
        let mut coords = vec![0u64; self.groups.len()];
        for (c, g) in coords.iter_mut().zip(&self.groups).rev() {
            let n = g.len() as u128;
            *c = (index % n) as u64;
            index /= n;
        }
        coords
    }

    /// Recomposes per-group coordinates into a flat index.
    pub fn compose(&self, coords: &[u64]) -> u128 {
        assert_eq!(coords.len(), self.groups.len(), "coordinate arity mismatch");
        let mut index = 0u128;
        for (g, &c) in self.groups.iter().zip(coords) {
            debug_assert!(c < g.len());
            index = index * g.len() as u128 + c as u128;
        }
        index
    }

    /// Iterates over all configurations in index order.
    pub fn iter(&self) -> impl Iterator<Item = Config> + '_ {
        (0..self.len).map(|i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::divides;
    use crate::expr::{cst, param as p};
    use crate::param::{tp, tp_c};
    use crate::range::Range;
    use crate::space::SearchSpace;

    fn saxpy_groups(n: u64) -> Vec<ParamGroup> {
        vec![ParamGroup::new(vec![
            tp_c("WPT", Range::interval(1, n), divides(cst(n))),
            tp_c("LS", Range::interval(1, n), divides(cst(n) / p("WPT"))),
        ])]
    }

    #[test]
    fn lazy_agrees_with_materialized() {
        let groups = saxpy_groups(64);
        let lazy = LazySpace::generate_with_block(&groups, 7).unwrap();
        let eager = SearchSpace::generate(&groups);
        assert_eq!(lazy.len(), eager.len());
        assert_eq!(lazy.dims(), eager.dims());
        for i in 0..lazy.len() {
            assert_eq!(lazy.get(i), eager.get(i), "config {i}");
            let coords = lazy.decompose(i);
            assert_eq!(coords, eager.decompose(i));
            assert_eq!(lazy.compose(&coords), i);
        }
    }

    #[test]
    fn random_access_after_cache_eviction() {
        let groups = saxpy_groups(256);
        let lazy = LazySpace::generate_with_block(&groups, 4).unwrap();
        let eager = SearchSpace::generate(&groups);
        // Jump around far more blocks than the cache holds.
        let n = lazy.len();
        let mut i = 0u128;
        for k in 0..200u128 {
            i = (i * 31 + k * 17 + 7) % n;
            assert_eq!(lazy.get(i), eager.get(i), "config {i}");
        }
    }

    #[test]
    fn multi_group_lazy_space() {
        let g1 = ParamGroup::new(vec![
            tp("A", Range::interval(1, 16)),
            tp_c("B", Range::interval(1, 16), divides(p("A"))),
        ]);
        let g2 = ParamGroup::new(vec![tp("C", Range::set([1u64, 2, 4]))]);
        let lazy = LazySpace::generate(&[g1.clone(), g2.clone()]).unwrap();
        let eager = SearchSpace::generate(&[g1, g2]);
        assert_eq!(lazy.len(), eager.len());
        for i in (0..lazy.len()).step_by(5) {
            assert_eq!(lazy.get(i), eager.get(i));
        }
    }

    #[test]
    fn empty_lazy_space() {
        let g = ParamGroup::new(vec![tp_c(
            "X",
            Range::interval(1, 10),
            crate::constraint::less_than(cst(0u64)),
        )]);
        let lazy = LazySpace::generate(&[g]).unwrap();
        assert!(lazy.is_empty());
        assert_eq!(lazy.iter().count(), 0);
    }
}
