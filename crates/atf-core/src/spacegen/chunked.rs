//! Chunked intra-group parallel generation.
//!
//! The sequential walk fixes the group's *leading* parameter first; the
//! subtrees below distinct leading values are independent. Chunking
//! partitions the leading parameter's valid candidates into contiguous
//! chunks, enumerates each chunk's subtrees on a worker pool, and
//! concatenates the chunk outputs **in chunk order** — so the result is
//! bit-identical to sequential generation at any thread count.
//!
//! This replaces the earlier one-thread-per-group scheme: a single
//! heavily-constrained group (the common case — XgemmDirect is one group
//! of ten parameters) now parallelizes internally instead of pinning one
//! core.

use super::compile::GroupPlan;
use crate::config::Config;
use crate::param::ParamGroup;
use crate::space::{GroupSpace, SpaceError};
use crate::trace::{TraceEvent, TraceSink};
use crate::value::Value;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Chunks per worker thread: over-partitioning keeps the pool busy when
/// leading candidates have very uneven subtree sizes (small divisors of a
/// big target have far more completions than large ones).
const CHUNKS_PER_THREAD: usize = 4;

/// Number of generation threads to use by default: the machine's available
/// parallelism, capped to keep worker startup cheap on very wide hosts.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// One worker-produced chunk: its slot in sequential order and the
/// generated configurations (or the error that stopped it).
type ChunkResult = (usize, Result<Vec<Box<[Value]>>, SpaceError>);

/// Generates one group's valid sub-space with `threads` workers over
/// leading-parameter chunks. Emits one `space_chunk` trace event per chunk
/// (from the workers, in completion order) and returns configurations in
/// exactly sequential order.
pub fn generate_group_chunked(
    group: &ParamGroup,
    threads: usize,
    limit: u64,
    cancel: Option<&AtomicBool>,
    trace: &dyn TraceSink,
    group_index: usize,
) -> Result<GroupSpace, SpaceError> {
    let plan = GroupPlan::compile(group);
    let names = plan.names();

    // Leading-parameter candidates under the empty prefix.
    let mut leading: Vec<Value> = Vec::new();
    {
        let empty = Config::new();
        let mut src = plan.candidates(0, &empty);
        while let Some((_, v)) = src.next(&empty) {
            leading.push(v);
        }
    }

    if threads <= 1 || leading.len() <= 1 || plan.len() == 1 {
        // Sequential fallback: single parameter, nothing to fan out, or a
        // one-thread pool.
        let mut configs = Vec::new();
        let mut partial = Config::new();
        let mut values = Vec::with_capacity(plan.len());
        plan.walk(
            0,
            &mut partial,
            &mut values,
            &mut |vals| {
                if configs.len() as u64 >= limit {
                    return Err(SpaceError::TooLarge { limit });
                }
                configs.push(vals.to_vec().into_boxed_slice());
                Ok(())
            },
            cancel,
        )?;
        return Ok(GroupSpace::from_parts(names, configs));
    }

    // Partition the leading candidates into contiguous chunks.
    let chunk_count = (threads * CHUNKS_PER_THREAD).min(leading.len());
    let per_chunk = leading.len().div_ceil(chunk_count);
    let chunks: Vec<&[Value]> = leading.chunks(per_chunk).collect();

    let next_chunk = AtomicUsize::new(0);
    let emitted = AtomicU64::new(0);
    let mut slots: Vec<Result<Vec<Box<[Value]>>, SpaceError>> =
        (0..chunks.len()).map(|_| Ok(Vec::new())).collect();

    std::thread::scope(|scope| {
        let workers = threads.min(chunks.len());
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let plan = &plan;
            let chunks = &chunks;
            let next_chunk = &next_chunk;
            let emitted = &emitted;
            handles.push(scope.spawn(move || {
                let mut results: Vec<ChunkResult> = Vec::new();
                loop {
                    let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                    if c >= chunks.len() {
                        return results;
                    }
                    let started = Instant::now();
                    let mut out: Vec<Box<[Value]>> = Vec::new();
                    let mut r = Ok(());
                    'values: for v in chunks[c] {
                        let mut partial = Config::new();
                        partial.push(plan.param(0).name_arc(), v.clone());
                        let mut values = Vec::with_capacity(plan.len());
                        values.push(v.clone());
                        let walked = plan.walk(
                            1,
                            &mut partial,
                            &mut values,
                            &mut |vals| {
                                if emitted.fetch_add(1, Ordering::Relaxed) >= limit {
                                    return Err(SpaceError::TooLarge { limit });
                                }
                                out.push(vals.to_vec().into_boxed_slice());
                                Ok(())
                            },
                            cancel,
                        );
                        if let Err(e) = walked {
                            r = Err(e);
                            break 'values;
                        }
                    }
                    trace.emit(&TraceEvent::space_chunk(
                        group_index,
                        c,
                        out.len() as u64,
                        u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
                    ));
                    results.push((c, r.map(|()| out)));
                }
            }));
        }
        for h in handles {
            for (c, r) in h.join().expect("chunk worker panicked") {
                slots[c] = r;
            }
        }
    });

    // Deterministic concatenation in chunk order.
    let mut configs = Vec::new();
    for slot in slots {
        configs.extend(slot?);
    }
    if configs.len() as u64 > limit {
        return Err(SpaceError::TooLarge { limit });
    }
    Ok(GroupSpace::from_parts(names, configs))
}

/// Generates all groups' sub-spaces, each with intra-group chunked
/// parallelism, in declaration order. One `space_gen` event per group
/// summarizes its chunks.
pub fn generate_groups_chunked(
    groups: &[ParamGroup],
    threads: usize,
    trace: &dyn TraceSink,
) -> Vec<GroupSpace> {
    groups
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let started = Instant::now();
            let gs = generate_group_chunked(g, threads, u64::MAX, None, trace, i)
                .expect("no limit configured");
            trace.emit(&TraceEvent::space_gen(
                i,
                g.len(),
                gs.len(),
                u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
            ));
            gs
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{divides, less_than};
    use crate::expr::{cst, param as p};
    use crate::param::{tp, tp_c};
    use crate::range::Range;
    use crate::trace::NullSink;

    fn chain_group(n: u64) -> ParamGroup {
        ParamGroup::new(vec![
            tp_c("WPT", Range::interval(1, n), divides(cst(n))),
            tp_c("LS", Range::interval(1, n), divides(cst(n) / p("WPT"))),
            tp_c("V", Range::interval(1, 8), less_than(p("LS") + cst(2u64))),
        ])
    }

    fn sequential(group: &ParamGroup) -> Vec<Vec<Value>> {
        let gs = GroupSpace::generate(group);
        (0..gs.len()).map(|i| gs.values(i).to_vec()).collect()
    }

    #[test]
    fn chunked_bit_identical_at_various_thread_counts() {
        let g = chain_group(96);
        let want = sequential(&g);
        for threads in [1, 2, 3, 8] {
            let gs = generate_group_chunked(&g, threads, u64::MAX, None, &NullSink, 0).unwrap();
            let got: Vec<Vec<Value>> = (0..gs.len()).map(|i| gs.values(i).to_vec()).collect();
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn chunked_respects_limit() {
        let g = ParamGroup::new(vec![
            tp("A", Range::interval(1, 100)),
            tp("B", Range::interval(1, 100)),
        ]);
        let err = generate_group_chunked(&g, 4, 10, None, &NullSink, 0).unwrap_err();
        assert_eq!(err, SpaceError::TooLarge { limit: 10 });
    }

    #[test]
    fn chunked_respects_cancellation() {
        let flag = AtomicBool::new(true);
        let g = ParamGroup::new(vec![
            tp("A", Range::interval(1, 100)),
            tp("B", Range::interval(1, 100)),
        ]);
        let err = generate_group_chunked(&g, 4, u64::MAX, Some(&flag), &NullSink, 0).unwrap_err();
        assert_eq!(err, SpaceError::Cancelled);
    }

    #[test]
    fn chunk_events_cover_all_configs() {
        let sink = crate::trace::MemorySink::new();
        let g = chain_group(64);
        let gs = generate_group_chunked(&g, 4, u64::MAX, None, &sink, 3).unwrap();
        let events = sink.take();
        let chunk_events: Vec<_> = events.iter().filter(|e| e.event == "space_chunk").collect();
        assert!(!chunk_events.is_empty());
        let total: u64 = chunk_events.iter().map(|e| e.size.unwrap()).sum();
        assert_eq!(total, gs.len());
        assert!(chunk_events.iter().all(|e| e.group == Some(3)));
    }
}
