//! Spec-hash-keyed persistent space cache.
//!
//! Generating a heavily-constrained space is the dominant cost of opening a
//! session (minutes for XgemmDirect-class spaces). The cache persists
//! generated group spaces keyed by a content hash of the *canonicalized
//! parameter specification* — names, ranges, and constraint strings — so a
//! daemon restart followed by re-opening a session with an identical spec
//! loads the space from disk instead of regenerating it.
//!
//! Invalidation is by key: any change to a parameter name, range bound,
//! step, set element, or constraint string changes the canonical text and
//! therefore the key, leaving stale entries unreferenced (they are never
//! read again; the directory can simply be deleted to reclaim space). Keys
//! concatenate two independent FNV-1a 64 hashes of the canonical text for
//! an effectively 128-bit key, and the stored file repeats the key so a
//! colliding or corrupt file is rejected on load and regenerated.
//!
//! Writes are atomic (temp file + fsync + rename), matching the journal
//! checkpoint discipline — a crash mid-store leaves either the old entry or
//! none, never a torn one.
//!
//! The cache can be bounded ([`SpaceCache::with_limits`]) by entry count
//! and total bytes; every store then evicts least-recently-used entries
//! (recency = file mtime, refreshed on every cache hit) until both caps
//! hold. An unbounded cache behaves exactly as before.

use crate::space::GroupSpace;
use crate::spec::ParameterSpec;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const CACHE_VERSION: u32 = 1;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The canonical text form of a parameter list — the hash input. Field
/// order is fixed and every range/constraint detail is spelled out, so
/// equal canonical text means an identical search space.
fn canonical(parameters: &[ParameterSpec]) -> String {
    let mut s = String::new();
    for p in parameters {
        s.push_str("param=");
        s.push_str(&p.name);
        if let Some(iv) = &p.interval {
            s.push_str(&format!(";interval={}:{}:{}", iv.begin, iv.end, iv.step));
        }
        if let Some(set) = &p.set {
            s.push_str(";set=");
            for (i, v) in set.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&v.to_string());
            }
        }
        if let Some(c) = &p.constraint {
            s.push_str(";constraint=");
            s.push_str(c);
        }
        s.push('\n');
    }
    s
}

/// The cache key for a parameter specification: two independent FNV-1a 64
/// hashes of the canonical text, hex-concatenated.
pub fn spec_key(parameters: &[ParameterSpec]) -> String {
    let text = canonical(parameters);
    let a = fnv1a(0xcbf2_9ce4_8422_2325, text.as_bytes());
    let b = fnv1a(0x6c62_272e_07bb_0142, text.as_bytes());
    format!("{a:016x}{b:016x}")
}

#[derive(Debug, Serialize, Deserialize)]
struct CacheFile {
    version: u32,
    key: String,
    groups: Vec<CacheGroup>,
}

#[derive(Debug, Serialize, Deserialize)]
struct CacheGroup {
    names: Vec<String>,
    configs: Vec<Vec<String>>,
}

/// Encodes a value as a tagged token that round-trips exactly (floats via
/// bit pattern).
fn encode_value(v: &Value) -> String {
    match v {
        Value::Bool(b) => format!("b:{}", u8::from(*b)),
        Value::Int(i) => format!("i:{i}"),
        Value::UInt(u) => format!("u:{u}"),
        Value::Float(f) => format!("f:{:016x}", f.to_bits()),
        Value::Symbol(s) => format!("s:{s}"),
    }
}

fn decode_value(s: &str) -> Option<Value> {
    let (tag, body) = s.split_once(':')?;
    match tag {
        "b" => match body {
            "0" => Some(Value::Bool(false)),
            "1" => Some(Value::Bool(true)),
            _ => None,
        },
        "i" => body.parse::<i64>().ok().map(Value::Int),
        "u" => body.parse::<u64>().ok().map(Value::UInt),
        "f" => u64::from_str_radix(body, 16)
            .ok()
            .map(|bits| Value::Float(f64::from_bits(bits))),
        "s" => Some(Value::Symbol(body.into())),
        _ => None,
    }
}

/// A directory of persisted group spaces, one JSON file per spec key.
#[derive(Clone, Debug)]
pub struct SpaceCache {
    dir: PathBuf,
    max_entries: Option<usize>,
    max_bytes: Option<u64>,
}

impl SpaceCache {
    /// A cache rooted at `dir` (created lazily on first store), unbounded.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SpaceCache {
            dir: dir.into(),
            max_entries: None,
            max_bytes: None,
        }
    }

    /// Caps the cache by entry count and/or total bytes (builder-style).
    /// Every store evicts least-recently-used entries until both caps
    /// hold; `None` leaves a dimension unbounded.
    pub fn with_limits(mut self, max_entries: Option<usize>, max_bytes: Option<u64>) -> Self {
        self.max_entries = max_entries;
        self.max_bytes = max_bytes;
        self
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.space.json"))
    }

    /// Loads the group spaces stored under `key`. Any miss, version
    /// mismatch, key mismatch, or decode failure returns `None` — the
    /// caller regenerates and overwrites.
    pub fn load(&self, key: &str) -> Option<Vec<GroupSpace>> {
        let path = self.entry_path(key);
        let text = std::fs::read_to_string(&path).ok()?;
        // A hit refreshes the entry's mtime — the LRU recency signal.
        if let Ok(f) = std::fs::File::open(&path) {
            let _ = f.set_modified(std::time::SystemTime::now());
        }
        let file: CacheFile = serde_json::from_str(&text).ok()?;
        if file.version != CACHE_VERSION || file.key != key {
            return None;
        }
        let mut groups = Vec::with_capacity(file.groups.len());
        for g in &file.groups {
            let names: Arc<[Arc<str>]> = g.names.iter().map(|n| Arc::from(n.as_str())).collect();
            let mut configs = Vec::with_capacity(g.configs.len());
            for c in &g.configs {
                if c.len() != names.len() {
                    return None;
                }
                let vals: Option<Vec<Value>> = c.iter().map(|s| decode_value(s)).collect();
                configs.push(vals?.into_boxed_slice());
            }
            groups.push(GroupSpace::from_parts(names, configs));
        }
        Some(groups)
    }

    /// Persists `groups` under `key`, atomically.
    pub fn store(&self, key: &str, groups: &[GroupSpace]) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let file = CacheFile {
            version: CACHE_VERSION,
            key: key.to_string(),
            groups: groups
                .iter()
                .map(|g| CacheGroup {
                    names: g.names().iter().map(|n| n.to_string()).collect(),
                    configs: (0..g.len())
                        .map(|i| g.values(i).iter().map(encode_value).collect())
                        .collect(),
                })
                .collect(),
        };
        let body = serde_json::to_string(&file)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let tmp = self
            .dir
            .join(format!(".{key}.space.json.tmp.{}", std::process::id()));
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(body.as_bytes())?;
            f.sync_all()?;
        }
        match std::fs::rename(&tmp, self.entry_path(key)) {
            Ok(()) => {
                // Eviction is best-effort: a failed scan must not fail the
                // store that just succeeded.
                let _ = self.evict_lru();
                Ok(())
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Evicts least-recently-used entries until the configured entry-count
    /// and total-byte caps both hold; returns how many files were removed.
    /// No-op for an unbounded cache. Recency is the entry file's mtime,
    /// refreshed by every [`load`](Self::load) hit, so a hot entry
    /// survives stores that evict its colder neighbours.
    pub fn evict_lru(&self) -> std::io::Result<usize> {
        if self.max_entries.is_none() && self.max_bytes.is_none() {
            return Ok(0);
        }
        let mut entries: Vec<(PathBuf, std::time::SystemTime, u64)> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            // Only committed entries count; in-flight temp files (dotted)
            // belong to a concurrent store and are left alone.
            if name.starts_with('.') || !name.ends_with(".space.json") {
                continue;
            }
            let meta = entry.metadata()?;
            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            entries.push((entry.path(), mtime, meta.len()));
        }
        // Oldest first; path as tiebreak so same-mtime eviction order is
        // deterministic.
        entries.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        let mut count = entries.len();
        let mut bytes: u64 = entries.iter().map(|(_, _, len)| len).sum();
        let mut evicted = 0usize;
        for (path, _, len) in &entries {
            let over_entries = self.max_entries.is_some_and(|cap| count > cap);
            let over_bytes = self.max_bytes.is_some_and(|cap| bytes > cap);
            if !over_entries && !over_bytes {
                break;
            }
            if std::fs::remove_file(path).is_ok() {
                evicted += 1;
                count -= 1;
                bytes = bytes.saturating_sub(*len);
            }
        }
        Ok(evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::auto_group;
    use crate::space::SearchSpace;
    use crate::spec::{build_params, IntervalSpec};

    fn spec(n: u64) -> Vec<ParameterSpec> {
        vec![
            ParameterSpec {
                name: "WPT".into(),
                interval: Some(IntervalSpec {
                    begin: 1,
                    end: n,
                    step: 1,
                }),
                set: None,
                constraint: Some(format!("divides({n})")),
            },
            ParameterSpec {
                name: "LS".into(),
                interval: Some(IntervalSpec {
                    begin: 1,
                    end: n,
                    step: 1,
                }),
                set: None,
                constraint: Some(format!("divides({n} / WPT)")),
            },
        ]
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("atf-spacecache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn keys_are_stable_and_spec_sensitive() {
        assert_eq!(spec_key(&spec(64)), spec_key(&spec(64)));
        assert_ne!(spec_key(&spec(64)), spec_key(&spec(65)));
        let mut renamed = spec(64);
        renamed[0].name = "WPT2".into();
        assert_ne!(spec_key(&spec(64)), spec_key(&renamed));
        let mut unconstrained = spec(64);
        unconstrained[1].constraint = None;
        assert_ne!(spec_key(&spec(64)), spec_key(&unconstrained));
    }

    #[test]
    fn store_load_round_trip() {
        let dir = tmp_dir("roundtrip");
        let cache = SpaceCache::new(&dir);
        let specs = spec(32);
        let key = spec_key(&specs);
        assert!(cache.load(&key).is_none());

        let params = build_params(&specs).unwrap();
        let groups = auto_group(params);
        let generated: Vec<GroupSpace> = groups.iter().map(GroupSpace::generate).collect();
        cache.store(&key, &generated).unwrap();

        let loaded = cache.load(&key).expect("hit after store");
        let a = SearchSpace::from_group_spaces(generated);
        let b = SearchSpace::from_group_spaces(loaded);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.get(i), b.get(i), "config {i}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_miss() {
        let dir = tmp_dir("corrupt");
        let cache = SpaceCache::new(&dir);
        let key = spec_key(&spec(8));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(cache.entry_path(&key), b"{not json").unwrap();
        assert!(cache.load(&key).is_none());
        std::fs::write(
            cache.entry_path(&key),
            b"{\"version\":1,\"key\":\"mismatch\",\"groups\":[]}",
        )
        .unwrap();
        assert!(cache.load(&key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_caps_entry_count_lru_first() {
        let dir = tmp_dir("evict-count");
        let cache = SpaceCache::new(&dir).with_limits(Some(2), None);
        let keys: Vec<String> = (4u64..8).map(|n| spec_key(&spec(n))).collect();
        for (i, n) in (4u64..8).enumerate() {
            let specs = spec(n);
            let groups: Vec<GroupSpace> = auto_group(build_params(&specs).unwrap())
                .iter()
                .map(GroupSpace::generate)
                .collect();
            cache.store(&keys[i], &groups).unwrap();
            // Spread mtimes so LRU order is unambiguous regardless of
            // filesystem timestamp granularity.
            let f = std::fs::File::open(cache.entry_path(&keys[i])).unwrap();
            f.set_modified(std::time::UNIX_EPOCH + std::time::Duration::from_secs(100 + i as u64))
                .unwrap();
        }
        let _ = cache.evict_lru().unwrap();
        // Only the two most recently touched entries survive.
        assert!(cache.load(&keys[0]).is_none());
        assert!(cache.load(&keys[1]).is_none());
        assert!(cache.load(&keys[2]).is_some());
        assert!(cache.load(&keys[3]).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_caps_total_bytes_and_hits_refresh_recency() {
        let dir = tmp_dir("evict-bytes");
        let unbounded = SpaceCache::new(&dir);
        let keys: Vec<String> = (4u64..7).map(|n| spec_key(&spec(n))).collect();
        for (i, n) in (4u64..7).enumerate() {
            let specs = spec(n);
            let groups: Vec<GroupSpace> = auto_group(build_params(&specs).unwrap())
                .iter()
                .map(GroupSpace::generate)
                .collect();
            unbounded.store(&keys[i], &groups).unwrap();
            let f = std::fs::File::open(unbounded.entry_path(&keys[i])).unwrap();
            f.set_modified(std::time::UNIX_EPOCH + std::time::Duration::from_secs(100 + i as u64))
                .unwrap();
        }
        // A hit on the oldest entry promotes it past its siblings.
        assert!(unbounded.load(&keys[0]).is_some());
        // Cap one byte below the current total: exactly one eviction, and
        // it must take the least recently *used* entry — keys[1], not the
        // just-promoted keys[0].
        let total: u64 = (0..3)
            .map(|i| {
                std::fs::metadata(unbounded.entry_path(&keys[i]))
                    .unwrap()
                    .len()
            })
            .sum();
        let bounded = SpaceCache::new(&dir).with_limits(None, Some(total - 1));
        assert_eq!(bounded.evict_lru().unwrap(), 1);
        assert!(bounded.load(&keys[1]).is_none(), "LRU entry evicted");
        assert!(bounded.load(&keys[0]).is_some(), "hit kept it alive");
        assert!(bounded.load(&keys[2]).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let dir = tmp_dir("evict-off");
        let cache = SpaceCache::new(&dir);
        let specs = spec(8);
        let groups: Vec<GroupSpace> = auto_group(build_params(&specs).unwrap())
            .iter()
            .map(GroupSpace::generate)
            .collect();
        cache.store(&spec_key(&specs), &groups).unwrap();
        assert_eq!(cache.evict_lru().unwrap(), 0);
        assert!(cache.load(&spec_key(&specs)).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn value_tokens_round_trip() {
        for v in [
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::UInt(u64::MAX),
            Value::Float(0.1),
            Value::Float(f64::NEG_INFINITY),
            Value::Symbol("vec4".into()),
        ] {
            let token = encode_value(&v);
            let back = decode_value(&token).expect("decodes");
            match (&v, &back) {
                (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(v, back),
            }
        }
        assert!(decode_value("x:1").is_none());
        assert!(decode_value("noprefix").is_none());
    }
}
