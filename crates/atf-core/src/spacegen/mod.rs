//! The search-space construction engine.
//!
//! Replaces the naive per-candidate predicate re-evaluation walk behind
//! [`SearchSpace::generate*`](crate::space::SearchSpace) with four layered
//! mechanisms:
//!
//! - **Constraint compilation** ([`compile`]): alias-built constraints
//!   (`divides`, `less_than`, ...) expose their structure via
//!   [`ConstraintKind`](crate::constraint::ConstraintKind); the compiler
//!   binds each operand expression once per generation *prefix* instead of
//!   once per candidate, enumerates divisors instead of scanning windows
//!   where a `divides` atom allows it, and stops scans early with monotone
//!   propagators. Opaque predicates fall back to per-candidate evaluation —
//!   the soundness fallback — so arbitrary constraints keep working, just
//!   without the speedup.
//! - **Chunked intra-group parallelism** ([`chunked`]): the leading
//!   parameter's candidates are partitioned into chunks enumerated
//!   concurrently, with chunk-order concatenation, so output is
//!   bit-identical to sequential generation at any thread count.
//! - **Lazy streaming spaces** ([`lazy`]): [`LazySpace`] enumerates valid
//!   configurations on demand behind the same indexable interface as the
//!   materialized space, with bounded memory (block checkpoints + a small
//!   LRU block cache).
//! - **A persistent space cache** ([`cache`]): generated spaces are keyed
//!   by a content hash of the canonicalized parameter spec and persisted
//!   next to the tuning database, so a service restart re-opens sessions
//!   without regenerating identical spaces.

mod cache;
mod chunked;
mod compile;
mod lazy;

pub use cache::{spec_key, SpaceCache};
pub use chunked::{default_threads, generate_group_chunked, generate_groups_chunked};
pub use lazy::{LazyGroup, LazySpace, DEFAULT_BLOCK_SIZE};

pub(crate) use compile::GroupPlan;
