//! The OpenTuner-style ensemble search: a multi-armed bandit that picks,
//! for every step, one of several sub-techniques and credits it when its
//! proposal improves the best cost.
//!
//! OpenTuner's meta-technique is an AUC (area-under-curve) credit-assignment
//! bandit over a window of recent outcomes with an exploration bonus
//! (Ansel et al., PACT 2014). This module reimplements that scheme: each arm
//! scores `AUC_w(arm) + C * sqrt(2 ln(uses_total) / uses(arm))`, where
//! `AUC_w` weights recent improvements linearly by recency within a sliding
//! window. The paper uses this engine as ATF's third search technique over
//! the *valid* space index (Section IV-C), and it also powers the OpenTuner
//! baseline over the unconstrained space.

use super::{
    DifferentialEvolution, GeneticAlgorithm, GreedyMutation, NelderMead, ParticleSwarm,
    PatternSearch, Point, RandomSearch, SearchTechnique, SpaceDims, Torczon,
};
use std::collections::VecDeque;

/// Default exploration constant of the UCB-style bonus.
pub const DEFAULT_EXPLORATION: f64 = 0.3;

/// Default sliding-window length for AUC credit.
pub const DEFAULT_WINDOW: usize = 50;

/// AUC-credit bandit state for one arm.
#[derive(Clone, Debug, Default)]
struct ArmStats {
    /// Recent outcomes, `true` = the arm's proposal improved the best cost.
    history: VecDeque<bool>,
    uses: u64,
}

impl ArmStats {
    fn record(&mut self, improved: bool, window: usize) {
        self.history.push_back(improved);
        while self.history.len() > window {
            self.history.pop_front();
        }
        self.uses += 1;
    }

    /// Area under the credit curve: recent improvements weigh more.
    fn auc(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        let n = self.history.len();
        let denom = (n * (n + 1) / 2) as f64;
        let score: f64 = self
            .history
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| (i + 1) as f64)
            .sum();
        score / denom
    }
}

/// The multi-armed-bandit scheduler (exposed separately for testing and for
/// composing custom ensembles).
#[derive(Clone, Debug)]
pub struct AucBandit {
    arms: Vec<ArmStats>,
    window: usize,
    exploration: f64,
    total_uses: u64,
}

impl AucBandit {
    /// A bandit over `n_arms` arms.
    pub fn new(n_arms: usize, window: usize, exploration: f64) -> Self {
        assert!(n_arms > 0, "bandit needs at least one arm");
        AucBandit {
            arms: vec![ArmStats::default(); n_arms],
            window,
            exploration,
            total_uses: 0,
        }
    }

    /// Selects the arm with the best AUC + exploration score; unused arms
    /// are always tried first.
    pub fn select(&self) -> usize {
        let all: Vec<usize> = (0..self.arms.len()).collect();
        self.select_among(&all).expect("bandit has ≥ 1 arm")
    }

    /// Selects the best-scoring arm among `allowed` only (`None` if the
    /// slice is empty). Used by the ensemble under parallel evaluation,
    /// where arms busy with a full batch are temporarily ineligible —
    /// selection must skip them *without* recording anything, so bandit
    /// statistics stay untouched by scheduling constraints.
    pub fn select_among(&self, allowed: &[usize]) -> Option<usize> {
        // Any arm never used yet gets priority (infinite exploration bonus).
        if let Some(&i) = allowed.iter().find(|&&i| self.arms[i].uses == 0) {
            return Some(i);
        }
        let ln_total = (self.total_uses.max(1) as f64).ln();
        let mut best = None;
        let mut best_score = f64::NEG_INFINITY;
        for &i in allowed {
            let a = &self.arms[i];
            let score = a.auc() + self.exploration * (2.0 * ln_total / a.uses as f64).sqrt();
            if score > best_score {
                best_score = score;
                best = Some(i);
            }
        }
        best
    }

    /// Records the outcome of an arm's proposal.
    pub fn record(&mut self, arm: usize, improved: bool) {
        self.arms[arm].record(improved, self.window);
        self.total_uses += 1;
    }

    /// Current AUC score of an arm (for diagnostics).
    pub fn auc(&self, arm: usize) -> f64 {
        self.arms[arm].auc()
    }

    /// Number of times an arm was used.
    pub fn uses(&self, arm: usize) -> u64 {
        self.arms[arm].uses
    }
}

/// The ensemble search technique: a bandit over sub-techniques sharing one
/// global best-cost signal.
pub struct Ensemble {
    techniques: Vec<Box<dyn SearchTechnique>>,
    bandit: AucBandit,
    /// Arms that produced the outstanding proposals, in proposal order.
    /// Reports arrive in the same order, so popping the front routes each
    /// cost to the right arm — and because this is a FIFO, each *arm* also
    /// sees its own reports in its own proposal order.
    queue: VecDeque<usize>,
    /// Outstanding proposal count per arm (drives per-arm `can_propose`).
    arm_outstanding: Vec<usize>,
    best: f64,
}

impl Ensemble {
    /// The OpenTuner-like default ensemble, mirroring OpenTuner's
    /// `AUCBanditMetaTechniqueA` family: differential evolution, greedy
    /// mutation, Nelder-Mead, Torczon, pattern search, and uniform random —
    /// seeded deterministically from `seed`.
    pub fn opentuner_default(seed: u64) -> Self {
        Self::new(vec![
            Box::new(DifferentialEvolution::with_seed(seed ^ 0x6)),
            Box::new(GreedyMutation::with_seed(seed ^ 0x4)),
            Box::new(NelderMead::with_seed(seed ^ 0x1)),
            Box::new(Torczon::with_seed(seed ^ 0x2)),
            Box::new(PatternSearch::with_seed(seed ^ 0x3)),
            Box::new(RandomSearch::with_seed(seed ^ 0x5)),
        ])
    }

    /// A larger ensemble additionally containing the particle-swarm and
    /// genetic-algorithm techniques.
    pub fn extended(seed: u64) -> Self {
        Self::new(vec![
            Box::new(DifferentialEvolution::with_seed(seed ^ 0x6)),
            Box::new(GreedyMutation::with_seed(seed ^ 0x4)),
            Box::new(NelderMead::with_seed(seed ^ 0x1)),
            Box::new(Torczon::with_seed(seed ^ 0x2)),
            Box::new(PatternSearch::with_seed(seed ^ 0x3)),
            Box::new(ParticleSwarm::with_seed(seed ^ 0x7)),
            Box::new(GeneticAlgorithm::with_seed(seed ^ 0x8)),
            Box::new(RandomSearch::with_seed(seed ^ 0x5)),
        ])
    }

    /// An ensemble over custom sub-techniques.
    pub fn new(techniques: Vec<Box<dyn SearchTechnique>>) -> Self {
        assert!(!techniques.is_empty(), "ensemble needs ≥ 1 technique");
        let n = techniques.len();
        Ensemble {
            techniques,
            bandit: AucBandit::new(n, DEFAULT_WINDOW, DEFAULT_EXPLORATION),
            queue: VecDeque::new(),
            arm_outstanding: vec![0; n],
            best: f64::INFINITY,
        }
    }

    /// Overrides the bandit parameters.
    pub fn bandit_params(mut self, window: usize, exploration: f64) -> Self {
        self.bandit = AucBandit::new(self.techniques.len(), window, exploration);
        self
    }

    /// Names of the sub-techniques, aligned with arm indices.
    pub fn technique_names(&self) -> Vec<&'static str> {
        self.techniques.iter().map(|t| t.name()).collect()
    }

    /// Per-arm use counts (diagnostics).
    pub fn arm_uses(&self) -> Vec<u64> {
        (0..self.techniques.len())
            .map(|i| self.bandit.uses(i))
            .collect()
    }
}

impl SearchTechnique for Ensemble {
    fn initialize(&mut self, dims: SpaceDims) {
        for t in &mut self.techniques {
            t.initialize(dims.clone());
        }
        self.queue.clear();
        self.arm_outstanding = vec![0; self.techniques.len()];
        self.best = f64::INFINITY;
    }

    fn finalize(&mut self) {
        for t in &mut self.techniques {
            t.finalize();
        }
    }

    fn get_next_point(&mut self) -> Option<Point> {
        // Try eligible arms in bandit preference order until one proposes a
        // point (sub-techniques of this crate never exhaust, but custom
        // ones may). Arms busy with a full batch are skipped without
        // touching their bandit statistics.
        for _ in 0..self.techniques.len() {
            let eligible: Vec<usize> = (0..self.techniques.len())
                .filter(|&i| self.techniques[i].can_propose(self.arm_outstanding[i]))
                .collect();
            let arm = self.bandit.select_among(&eligible)?;
            if let Some(p) = self.techniques[arm].get_next_point() {
                self.queue.push_back(arm);
                self.arm_outstanding[arm] += 1;
                return Some(p);
            }
            // Arm exhausted: record a non-improvement so its score decays
            // and other arms get selected.
            self.bandit.record(arm, false);
        }
        None
    }

    fn report_cost(&mut self, cost: f64) {
        let Some(arm) = self.queue.pop_front() else {
            return;
        };
        self.arm_outstanding[arm] -= 1;
        self.techniques[arm].report_cost(cost);
        let improved = cost < self.best;
        if improved {
            self.best = cost;
        }
        self.bandit.record(arm, improved);
    }

    /// The ensemble can propose while *any* arm can: the bandit then
    /// selects among the currently eligible arms only.
    fn can_propose(&self, _outstanding: usize) -> bool {
        (0..self.techniques.len()).any(|i| self.techniques[i].can_propose(self.arm_outstanding[i]))
    }

    fn name(&self) -> &'static str {
        "opentuner-ensemble"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::test_util::*;

    #[test]
    fn auc_weights_recency() {
        let mut a = ArmStats::default();
        for _ in 0..5 {
            a.record(false, 10);
        }
        let low = a.auc();
        a.record(true, 10);
        let high = a.auc();
        assert!(high > low);
        // An early improvement followed by failures scores lower than a
        // recent improvement.
        let mut early = ArmStats::default();
        early.record(true, 10);
        for _ in 0..5 {
            early.record(false, 10);
        }
        let mut late = ArmStats::default();
        for _ in 0..5 {
            late.record(false, 10);
        }
        late.record(true, 10);
        assert!(late.auc() > early.auc());
    }

    #[test]
    fn window_bounds_history() {
        let mut a = ArmStats::default();
        for _ in 0..100 {
            a.record(true, 8);
        }
        assert_eq!(a.history.len(), 8);
        assert_eq!(a.uses, 100);
    }

    #[test]
    fn bandit_prefers_improving_arm() {
        let mut b = AucBandit::new(3, 20, 0.1);
        // Arm 1 improves often; others never.
        for _ in 0..30 {
            b.record(0, false);
            b.record(1, true);
            b.record(2, false);
        }
        assert_eq!(b.select(), 1);
    }

    #[test]
    fn bandit_explores_unused_arms_first() {
        let mut b = AucBandit::new(3, 10, 0.3);
        assert_eq!(b.select(), 0);
        b.record(0, true);
        assert_eq!(b.select(), 1);
        b.record(1, false);
        assert_eq!(b.select(), 2);
    }

    #[test]
    fn ensemble_converges_on_bowl() {
        let mut t = Ensemble::opentuner_default(42);
        let (_, c) = drive(
            &mut t,
            SpaceDims::new(vec![128, 128]),
            1200,
            bowl(vec![40, 90]),
        );
        assert!(c <= 9.0, "ensemble far from optimum: cost {c}");
    }

    #[test]
    fn ensemble_uses_multiple_arms() {
        let mut t = Ensemble::opentuner_default(7);
        t.initialize(SpaceDims::new(vec![64, 64]));
        for i in 0..200 {
            let _ = t.get_next_point().unwrap();
            t.report_cost(((i * 31) % 17) as f64);
        }
        let uses = t.arm_uses();
        assert_eq!(uses.iter().sum::<u64>(), 200);
        assert!(
            uses.iter().filter(|&&u| u > 0).count() >= 3,
            "bandit collapsed to too few arms: {uses:?}"
        );
    }

    #[test]
    fn exhausted_arms_are_skipped() {
        // An ensemble of one exhaustive technique over a 2-point space
        // returns None after 2 proposals.
        let mut t = Ensemble::new(vec![Box::new(super::super::Exhaustive::new())]);
        t.initialize(SpaceDims::new(vec![2]));
        assert!(t.get_next_point().is_some());
        t.report_cost(1.0);
        assert!(t.get_next_point().is_some());
        t.report_cost(2.0);
        assert!(t.get_next_point().is_none());
    }
}
