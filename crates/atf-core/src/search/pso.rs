//! Particle-swarm optimization (Kennedy & Eberhart) in ask/tell form — a
//! further population technique in the OpenTuner family of methods
//! ("PSO" is among OpenTuner's technique library; paper, Section IV-C).
//!
//! Particles carry continuous positions and velocities; each step evaluates
//! one particle's current position, updates its personal best and the swarm
//! best, then moves it with the standard inertia/cognitive/social rule.

use super::{Point, SearchTechnique, SpaceDims};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Default inertia weight.
pub const DEFAULT_INERTIA: f64 = 0.72;
/// Default cognitive (personal-best) acceleration.
pub const DEFAULT_COGNITIVE: f64 = 1.49;
/// Default social (swarm-best) acceleration.
pub const DEFAULT_SOCIAL: f64 = 1.49;
/// Default swarm size.
pub const DEFAULT_SWARM: usize = 16;

#[derive(Clone, Debug)]
struct Particle {
    position: Vec<f64>,
    velocity: Vec<f64>,
    best_position: Vec<f64>,
    best_cost: f64,
}

/// Particle-swarm search over the grid's continuous relaxation.
#[derive(Clone, Debug)]
pub struct ParticleSwarm {
    rng: ChaCha8Rng,
    dims: Option<SpaceDims>,
    swarm: Vec<Particle>,
    global_best: Option<(Vec<f64>, f64)>,
    /// Next particle whose pending *report* will be applied (reports arrive
    /// in proposal order).
    cursor: usize,
    /// Next particle to *propose*; runs at most one lap ahead of `cursor`,
    /// so a particle is never re-proposed before its velocity update.
    ask_cursor: usize,
    inertia: f64,
    cognitive: f64,
    social: f64,
    swarm_size: usize,
}

impl ParticleSwarm {
    /// Creates the technique with a fixed seed and standard coefficients.
    pub fn with_seed(seed: u64) -> Self {
        ParticleSwarm {
            rng: ChaCha8Rng::seed_from_u64(seed),
            dims: None,
            swarm: Vec::new(),
            global_best: None,
            cursor: 0,
            ask_cursor: 0,
            inertia: DEFAULT_INERTIA,
            cognitive: DEFAULT_COGNITIVE,
            social: DEFAULT_SOCIAL,
            swarm_size: DEFAULT_SWARM,
        }
    }

    /// Sets the swarm size (≥ 2).
    pub fn swarm_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "swarm must have ≥ 2 particles");
        self.swarm_size = n;
        self
    }

    /// Sets the inertia/cognitive/social coefficients.
    pub fn coefficients(mut self, inertia: f64, cognitive: f64, social: f64) -> Self {
        assert!(inertia >= 0.0 && cognitive >= 0.0 && social >= 0.0);
        self.inertia = inertia;
        self.cognitive = cognitive;
        self.social = social;
        self
    }

    /// Moves particle `i` with the standard velocity update (after its
    /// current position was evaluated).
    #[allow(clippy::needless_range_loop)] // indexes three vectors in lockstep
    fn advance(&mut self, i: usize) {
        let dims = self.dims.clone().expect("initialized");
        let gbest = self
            .global_best
            .as_ref()
            .map(|(p, _)| p.clone())
            .unwrap_or_else(|| self.swarm[i].best_position.clone());
        let (r1, r2): (f64, f64) = (self.rng.gen(), self.rng.gen());
        let p = &mut self.swarm[i];
        for d in 0..dims.dims() {
            let hi = (dims.size(d) - 1) as f64;
            let v = self.inertia * p.velocity[d]
                + self.cognitive * r1 * (p.best_position[d] - p.position[d])
                + self.social * r2 * (gbest[d] - p.position[d]);
            // Velocity clamp: half the dimension span.
            let vmax = (hi / 2.0).max(1.0);
            p.velocity[d] = v.clamp(-vmax, vmax);
            let mut x = p.position[d] + p.velocity[d];
            // Reflecting walls.
            if hi == 0.0 {
                x = 0.0;
            } else {
                while x < 0.0 || x > hi {
                    x = if x < 0.0 { -x } else { 2.0 * hi - x };
                    p.velocity[d] = -p.velocity[d];
                }
            }
            p.position[d] = x;
        }
    }
}

impl Default for ParticleSwarm {
    fn default() -> Self {
        Self::with_seed(0x9507)
    }
}

impl SearchTechnique for ParticleSwarm {
    fn initialize(&mut self, dims: SpaceDims) {
        let n = self.swarm_size.min(dims.len().min(1 << 20) as usize).max(2);
        self.swarm.clear();
        for _ in 0..n {
            let position: Vec<f64> = (0..dims.dims())
                .map(|d| self.rng.gen_range(0.0..dims.size(d) as f64))
                .collect();
            let velocity: Vec<f64> = (0..dims.dims())
                .map(|d| {
                    let span = dims.size(d) as f64;
                    self.rng.gen_range(-span / 4.0..span / 4.0)
                })
                .collect();
            self.swarm.push(Particle {
                best_position: position.clone(),
                position,
                velocity,
                best_cost: f64::INFINITY,
            });
        }
        self.dims = Some(dims);
        self.global_best = None;
        self.cursor = 0;
        self.ask_cursor = 0;
    }

    fn get_next_point(&mut self) -> Option<Point> {
        let dims = self.dims.as_ref().expect("initialize not called");
        let p = dims.round(&self.swarm[self.ask_cursor].position);
        self.ask_cursor = (self.ask_cursor + 1) % self.swarm.len();
        Some(p)
    }

    fn report_cost(&mut self, cost: f64) {
        let i = self.cursor;
        {
            let p = &mut self.swarm[i];
            if cost < p.best_cost {
                p.best_cost = cost;
                p.best_position = p.position.clone();
            }
        }
        let p_best = self.swarm[i].best_cost;
        if self.global_best.as_ref().is_none_or(|(_, c)| p_best < *c) {
            self.global_best = Some((self.swarm[i].best_position.clone(), p_best));
        }
        self.advance(i);
        self.cursor = (self.cursor + 1) % self.swarm.len();
    }

    /// The whole swarm may be in flight at once — but no particle is
    /// proposed a second time before its pending report moves it.
    fn can_propose(&self, outstanding: usize) -> bool {
        outstanding < self.swarm.len().max(1)
    }

    fn name(&self) -> &'static str {
        "particle-swarm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::test_util::*;

    #[test]
    fn converges_on_bowl() {
        let mut t = ParticleSwarm::with_seed(41);
        let (_, c) = drive(
            &mut t,
            SpaceDims::new(vec![256, 256]),
            1500,
            bowl(vec![200, 55]),
        );
        assert!(c <= 9.0, "PSO far from optimum: cost {c}");
    }

    #[test]
    fn positions_stay_in_bounds() {
        let dims = SpaceDims::new(vec![7, 1, 33]);
        let mut t = ParticleSwarm::with_seed(2);
        t.initialize(dims.clone());
        for i in 0..300 {
            let p = t.get_next_point().unwrap();
            for (d, &c) in p.iter().enumerate() {
                assert!(c < dims.size(d), "out of bounds {p:?}");
            }
            t.report_cost(((i * 17) % 23) as f64);
        }
    }

    #[test]
    fn single_point_space() {
        let mut t = ParticleSwarm::with_seed(3);
        t.initialize(SpaceDims::new(vec![1]));
        for _ in 0..10 {
            assert_eq!(t.get_next_point(), Some(vec![0]));
            t.report_cost(1.0);
        }
    }

    #[test]
    fn global_best_tracks_minimum() {
        let mut t = ParticleSwarm::with_seed(4).swarm_size(4);
        t.initialize(SpaceDims::new(vec![100]));
        let costs = [5.0, 3.0, 9.0, 7.0];
        for &c in &costs {
            let _ = t.get_next_point().unwrap();
            t.report_cost(c);
        }
        assert_eq!(t.global_best.as_ref().map(|(_, c)| *c), Some(3.0));
    }

    #[test]
    fn deterministic() {
        let run = |seed| {
            let mut t = ParticleSwarm::with_seed(seed);
            t.initialize(SpaceDims::new(vec![32, 32]));
            (0..40)
                .map(|i| {
                    let p = t.get_next_point().unwrap();
                    t.report_cost((i % 5) as f64);
                    p
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(6), run(6));
    }
}
