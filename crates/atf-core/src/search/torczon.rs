//! Torczon multi-directional search — the second hill-climber family of the
//! OpenTuner ensemble (paper, Section IV-C: "Torczon hillclimbers").
//!
//! Unlike Nelder-Mead, every trial step reflects the *whole* simplex through
//! the best vertex, which makes the method robust on noisy/discrete
//! landscapes. Each iteration evaluates a batch of candidate vertices
//! sequentially through the ask/tell interface:
//! reflection → (if improved) expansion, else contraction.

use super::{Point, SearchTechnique, SpaceDims};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const EXPANSION: f64 = 2.0;
const CONTRACTION: f64 = 0.5;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Evaluating initial vertex `k`.
    Building,
    /// Evaluating reflected vertex `k`.
    Reflecting,
    /// Evaluating expanded vertex `k`.
    Expanding,
    /// Evaluating contracted vertex `k`.
    Contracting,
}

/// Torczon's multi-directional simplex search (ask/tell form).
#[derive(Clone, Debug)]
pub struct Torczon {
    rng: ChaCha8Rng,
    dims: Option<SpaceDims>,
    /// Current simplex: vertex 0 is the best after each completed iteration.
    simplex: Vec<(Vec<f64>, f64)>,
    /// Candidate batch being evaluated (same length as `simplex` - 1).
    batch: Vec<(Vec<f64>, f64)>,
    /// Saved reflected batch while expanding.
    saved_reflection: Vec<(Vec<f64>, f64)>,
    phase: Phase,
    /// Next index within the current batch (or simplex when building) whose
    /// *report* will be applied.
    cursor: usize,
    /// Next index to *propose*; runs ahead of `cursor` so a whole phase
    /// batch can be evaluated in parallel. Reset with `cursor`.
    ask_cursor: usize,
}

impl Torczon {
    /// Creates the technique with a fixed seed.
    pub fn with_seed(seed: u64) -> Self {
        Torczon {
            rng: ChaCha8Rng::seed_from_u64(seed),
            dims: None,
            simplex: Vec::new(),
            batch: Vec::new(),
            saved_reflection: Vec::new(),
            phase: Phase::Building,
            cursor: 0,
            ask_cursor: 0,
        }
    }

    fn new_simplex(&mut self) {
        let dims = self.dims.clone().expect("initialized");
        let base: Vec<f64> = (0..dims.dims())
            .map(|d| self.rng.gen_range(0..dims.size(d)) as f64)
            .collect();
        self.simplex = vec![(base.clone(), f64::NAN)];
        for d in 0..dims.dims() {
            let mut v = base.clone();
            let step = ((dims.size(d) as f64) / 4.0).max(1.0);
            if v[d] + step < dims.size(d) as f64 {
                v[d] += step;
            } else {
                v[d] -= step;
            }
            self.simplex.push((v, f64::NAN));
        }
        self.phase = Phase::Building;
        self.cursor = 0;
        self.ask_cursor = 0;
    }

    /// Transformed batch: each non-best vertex mapped through the best by
    /// factor `t` (-1 = reflect, 2 = expand, 0.5 = contract).
    fn transform(&self, t: f64) -> Vec<(Vec<f64>, f64)> {
        let best = &self.simplex[0].0;
        self.simplex[1..]
            .iter()
            .map(|(v, _)| {
                let w: Vec<f64> = best.iter().zip(v).map(|(b, x)| b + t * (x - b)).collect();
                (w, f64::NAN)
            })
            .collect()
    }

    fn diameter(&self) -> f64 {
        let n = self.dims.as_ref().expect("initialized").dims();
        (0..n)
            .map(|d| {
                let lo = self
                    .simplex
                    .iter()
                    .map(|(v, _)| v[d])
                    .fold(f64::INFINITY, f64::min);
                let hi = self
                    .simplex
                    .iter()
                    .map(|(v, _)| v[d])
                    .fold(f64::NEG_INFINITY, f64::max);
                hi - lo
            })
            .fold(0.0, f64::max)
    }

    /// Sorts the simplex (best first) and begins a reflection batch; restarts
    /// on collapse.
    fn next_iteration(&mut self) {
        self.simplex
            .sort_by(|a, b| a.1.partial_cmp(&b.1).expect("comparable"));
        if self.diameter() < 0.5 {
            self.new_simplex();
            return;
        }
        self.batch = self.transform(-1.0);
        self.phase = Phase::Reflecting;
        self.cursor = 0;
        self.ask_cursor = 0;
    }

    fn batch_min(batch: &[(Vec<f64>, f64)]) -> f64 {
        batch.iter().map(|(_, c)| *c).fold(f64::INFINITY, f64::min)
    }

    /// Replaces the non-best simplex vertices by `batch` and starts over.
    fn adopt_batch(&mut self, batch: Vec<(Vec<f64>, f64)>) {
        for (slot, v) in self.simplex[1..].iter_mut().zip(batch) {
            *slot = v;
        }
        self.next_iteration();
    }

    fn current_point(&mut self) -> Vec<f64> {
        let k = self.ask_cursor;
        self.ask_cursor += 1;
        match self.phase {
            Phase::Building => self.simplex[k].0.clone(),
            _ => self.batch[k].0.clone(),
        }
    }
}

impl Default for Torczon {
    fn default() -> Self {
        Self::with_seed(0x70c2)
    }
}

impl SearchTechnique for Torczon {
    fn initialize(&mut self, dims: SpaceDims) {
        self.dims = Some(dims);
        self.new_simplex();
        self.batch.clear();
        self.saved_reflection.clear();
    }

    fn get_next_point(&mut self) -> Option<Point> {
        let x = self.current_point();
        Some(self.dims.as_ref().expect("initialize not called").round(&x))
    }

    fn report_cost(&mut self, cost: f64) {
        match self.phase {
            Phase::Building => {
                self.simplex[self.cursor].1 = cost;
                self.cursor += 1;
                if self.cursor == self.simplex.len() {
                    self.next_iteration();
                }
            }
            Phase::Reflecting => {
                self.batch[self.cursor].1 = cost;
                self.cursor += 1;
                if self.cursor == self.batch.len() {
                    let best = self.simplex[0].1;
                    if Self::batch_min(&self.batch) < best {
                        // Improvement: try expanding in the same directions.
                        self.saved_reflection = std::mem::take(&mut self.batch);
                        self.batch = self.transform(-EXPANSION);
                        self.phase = Phase::Expanding;
                        self.cursor = 0;
                        self.ask_cursor = 0;
                    } else {
                        // No improvement: contract toward the best vertex.
                        self.batch = self.transform(CONTRACTION);
                        self.phase = Phase::Contracting;
                        self.cursor = 0;
                        self.ask_cursor = 0;
                    }
                }
            }
            Phase::Expanding => {
                self.batch[self.cursor].1 = cost;
                self.cursor += 1;
                if self.cursor == self.batch.len() {
                    let expanded = std::mem::take(&mut self.batch);
                    let reflected = std::mem::take(&mut self.saved_reflection);
                    if Self::batch_min(&expanded) < Self::batch_min(&reflected) {
                        self.adopt_batch(expanded);
                    } else {
                        self.adopt_batch(reflected);
                    }
                }
            }
            Phase::Contracting => {
                self.batch[self.cursor].1 = cost;
                self.cursor += 1;
                if self.cursor == self.batch.len() {
                    let contracted = std::mem::take(&mut self.batch);
                    self.adopt_batch(contracted);
                }
            }
        }
    }

    /// Every phase evaluates its whole batch (the simplex when building) in
    /// parallel: propose until the phase's batch is exhausted, then wait for
    /// all reports before the next transformation.
    fn can_propose(&self, _outstanding: usize) -> bool {
        let limit = match self.phase {
            Phase::Building => self.simplex.len(),
            _ => self.batch.len(),
        };
        self.ask_cursor < limit
    }

    fn name(&self) -> &'static str {
        "torczon"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::test_util::*;

    #[test]
    fn converges_on_bowl() {
        let mut t = Torczon::with_seed(13);
        let (_, c) = drive(
            &mut t,
            SpaceDims::new(vec![128, 128]),
            500,
            bowl(vec![90, 20]),
        );
        assert!(c <= 41.0, "Torczon far from optimum: cost {c}");
    }

    #[test]
    fn one_dimension() {
        let mut t = Torczon::with_seed(2);
        let (_, c) = drive(&mut t, SpaceDims::new(vec![512]), 300, |p: &Point| {
            (p[0] as f64 - 100.0).powi(2)
        });
        assert!(c <= 100.0, "cost {c}");
    }

    #[test]
    fn never_stops_proposing() {
        let mut t = Torczon::with_seed(1);
        t.initialize(SpaceDims::new(vec![4, 4]));
        for i in 0..100 {
            let p = t.get_next_point().expect("proposal");
            assert!(p[0] < 4 && p[1] < 4);
            t.report_cost((i % 7) as f64);
        }
    }

    #[test]
    fn restarts_on_constant_landscape() {
        let mut t = Torczon::with_seed(6);
        t.initialize(SpaceDims::new(vec![64]));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(t.get_next_point().unwrap());
            t.report_cost(5.0);
        }
        assert!(seen.len() > 3);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut t = Torczon::with_seed(99);
            t.initialize(SpaceDims::new(vec![40, 40]));
            (0..25)
                .map(|i| {
                    let p = t.get_next_point().unwrap();
                    t.report_cost((i % 4) as f64);
                    p
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
