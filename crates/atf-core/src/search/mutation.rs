//! Greedy-mutation hill climber: mutate random coordinates of the best
//! configuration found so far; adopt on improvement. OpenTuner's evolutionary
//! component in miniature, and a strong technique on rugged auto-tuning
//! landscapes.

use super::{Point, SearchTechnique, SpaceDims};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// Greedy mutation of the incumbent best point.
#[derive(Clone, Debug)]
pub struct GreedyMutation {
    rng: ChaCha8Rng,
    dims: Option<SpaceDims>,
    best: Option<(Point, f64)>,
    /// Proposals awaiting their cost reports, in proposal order. Several
    /// speculative mutants of the (possibly stale) incumbent may be
    /// outstanding at once under parallel evaluation.
    pending: VecDeque<Point>,
    /// Mutation rate: expected fraction of coordinates perturbed per step.
    rate: f64,
    /// Non-improving steps since the incumbent last changed.
    stagnation: u64,
    /// Random-restart threshold (0 disables).
    restart_after: u64,
}

impl GreedyMutation {
    /// Creates the technique with a fixed seed.
    pub fn with_seed(seed: u64) -> Self {
        GreedyMutation {
            rng: ChaCha8Rng::seed_from_u64(seed),
            dims: None,
            best: None,
            pending: VecDeque::new(),
            rate: 0.35,
            stagnation: 0,
            restart_after: 400,
        }
    }

    /// Sets the expected fraction of coordinates perturbed per step.
    pub fn rate(mut self, rate: f64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "mutation rate must be in (0, 1]");
        self.rate = rate;
        self
    }

    /// Random-restart after `n` non-improving steps (0 disables).
    pub fn restart_after(mut self, n: u64) -> Self {
        self.restart_after = n;
        self
    }

    #[allow(clippy::needless_range_loop)] // `d` indexes dims and q together
    fn mutate(&mut self, p: &Point) -> Point {
        let dims = self.dims.as_ref().expect("initialized");
        let mut q = p.clone();
        let mut touched = false;
        for d in 0..dims.dims() {
            let size = dims.size(d);
            if size > 1 && self.rng.gen_bool(self.rate) {
                q[d] = self.rng.gen_range(0..size);
                touched = true;
            }
        }
        if !touched {
            // Force at least one perturbation on a mutable dimension.
            let mutable: Vec<usize> = (0..dims.dims()).filter(|&d| dims.size(d) > 1).collect();
            if let Some(&d) = mutable.get(self.rng.gen_range(0..mutable.len().max(1))) {
                q[d] = self.rng.gen_range(0..dims.size(d));
            }
        }
        q
    }
}

impl Default for GreedyMutation {
    fn default() -> Self {
        Self::with_seed(0x6e47)
    }
}

impl SearchTechnique for GreedyMutation {
    fn initialize(&mut self, dims: SpaceDims) {
        self.dims = Some(dims);
        self.best = None;
        self.pending.clear();
        self.stagnation = 0;
    }

    fn get_next_point(&mut self) -> Option<Point> {
        let dims = self.dims.clone().expect("initialize not called");
        let p = match &self.best {
            None => dims.random_point(&mut self.rng),
            Some((b, _)) => {
                let b = b.clone();
                self.mutate(&b)
            }
        };
        self.pending.push_back(p.clone());
        Some(p)
    }

    fn report_cost(&mut self, cost: f64) {
        let Some(p) = self.pending.pop_front() else {
            return;
        };
        match &self.best {
            Some((_, bc)) if cost >= *bc => {
                self.stagnation += 1;
                if self.restart_after > 0 && self.stagnation >= self.restart_after {
                    self.best = None;
                    self.stagnation = 0;
                }
            }
            _ => {
                self.best = Some((p, cost));
                self.stagnation = 0;
            }
        }
    }

    /// Speculative lookahead: mutants of the incumbent are independent of
    /// each other, so any number may be outstanding at once.
    fn can_propose(&self, _outstanding: usize) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "greedy-mutation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::test_util::*;

    #[test]
    fn converges_on_bowl() {
        let mut t = GreedyMutation::with_seed(19);
        let (_, c) = drive(
            &mut t,
            SpaceDims::new(vec![64, 64]),
            1500,
            bowl(vec![10, 60]),
        );
        assert!(c <= 16.0, "greedy mutation far from optimum: cost {c}");
    }

    #[test]
    fn all_dims_size_one() {
        let mut t = GreedyMutation::with_seed(1);
        t.initialize(SpaceDims::new(vec![1, 1, 1]));
        for _ in 0..10 {
            assert_eq!(t.get_next_point(), Some(vec![0, 0, 0]));
            t.report_cost(1.0);
        }
    }

    #[test]
    fn mutation_stays_in_bounds() {
        let mut t = GreedyMutation::with_seed(7).rate(1.0);
        let dims = SpaceDims::new(vec![5, 2, 9]);
        t.initialize(dims.clone());
        for i in 0..200 {
            let p = t.get_next_point().unwrap();
            for (d, &c) in p.iter().enumerate() {
                assert!(c < dims.size(d));
            }
            t.report_cost((i % 9) as f64);
        }
    }

    #[test]
    fn restart_clears_incumbent() {
        let mut t = GreedyMutation::with_seed(2).restart_after(5);
        t.initialize(SpaceDims::new(vec![100]));
        let _ = t.get_next_point().unwrap();
        t.report_cost(0.0); // incumbent cost 0 — nothing can improve on it
        for _ in 0..10 {
            let _ = t.get_next_point().unwrap();
            t.report_cost(1.0);
        }
        // Without a restart the incumbent would still be the cost-0 point
        // (1.0 never improves on 0.0); the restart cleared it, so a 1.0
        // report was adopted as the fresh incumbent.
        assert!(t.best.as_ref().is_some_and(|(_, c)| *c == 1.0));
    }
}
