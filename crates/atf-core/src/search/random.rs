//! Uniform random search — the simplest baseline technique and a component
//! of the ensemble search.

use super::{Point, SearchTechnique, SpaceDims};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Uniform random sampling of the valid space (with replacement).
#[derive(Clone, Debug)]
pub struct RandomSearch {
    rng: ChaCha8Rng,
    dims: Option<SpaceDims>,
}

impl RandomSearch {
    /// Creates the technique with a fixed RNG seed (deterministic runs).
    pub fn with_seed(seed: u64) -> Self {
        RandomSearch {
            rng: ChaCha8Rng::seed_from_u64(seed),
            dims: None,
        }
    }
}

impl Default for RandomSearch {
    fn default() -> Self {
        Self::with_seed(0x5eed)
    }
}

impl SearchTechnique for RandomSearch {
    fn initialize(&mut self, dims: SpaceDims) {
        self.dims = Some(dims);
    }

    fn get_next_point(&mut self) -> Option<Point> {
        let dims = self.dims.as_ref().expect("initialize not called");
        Some(dims.random_point(&mut self.rng))
    }

    fn report_cost(&mut self, _cost: f64) {}

    /// Samples are independent of reported costs, so any number may be
    /// outstanding at once.
    fn can_propose(&self, _outstanding: usize) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::test_util::*;

    #[test]
    fn deterministic_with_seed() {
        let run = |seed| {
            let mut t = RandomSearch::with_seed(seed);
            t.initialize(SpaceDims::new(vec![100, 100]));
            (0..10)
                .map(|_| t.get_next_point().unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn covers_space_reasonably() {
        let mut t = RandomSearch::with_seed(3);
        let (p, c) = drive(&mut t, SpaceDims::new(vec![10, 10]), 500, bowl(vec![4, 4]));
        // 500 samples in a 100-point space virtually surely hit the optimum.
        assert_eq!(c, 0.0);
        assert_eq!(p, vec![4, 4]);
    }

    #[test]
    fn never_exhausts() {
        let mut t = RandomSearch::default();
        t.initialize(SpaceDims::new(vec![1]));
        for _ in 0..10 {
            assert!(t.get_next_point().is_some());
            t.report_cost(0.0);
        }
    }
}
