//! A steady-state genetic algorithm in ask/tell form — evolutionary
//! recombination complements the mutation-only hill climber in the ensemble
//! (OpenTuner's library includes GA variants; paper, Section IV-C).
//!
//! Steady-state: each step proposes one child from two tournament-selected
//! parents (uniform crossover + per-coordinate mutation); after evaluation
//! the child replaces the current worst member if it improves on it.

use super::{Point, SearchTechnique, SpaceDims};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// Default population size.
pub const DEFAULT_POPULATION: usize = 24;
/// Default per-coordinate mutation rate.
pub const DEFAULT_MUTATION: f64 = 0.15;
/// Default tournament size.
pub const DEFAULT_TOURNAMENT: usize = 3;

/// Steady-state GA over grid points.
#[derive(Clone, Debug)]
pub struct GeneticAlgorithm {
    rng: ChaCha8Rng,
    dims: Option<SpaceDims>,
    population: Vec<(Point, f64)>,
    /// Members already *proposed* for their initial (seeding) evaluation.
    seed_asked: usize,
    /// Members whose seeding cost has been *reported*. Because proposals are
    /// reported in order and all seeds are proposed first, the first
    /// `population.len()` reports are exactly the seed reports.
    seed_reported: usize,
    /// Points awaiting cost reports, in proposal order. A whole generation
    /// may be outstanding at once under parallel evaluation.
    pending: VecDeque<Point>,
    pop_size: usize,
    mutation_rate: f64,
    tournament: usize,
}

impl GeneticAlgorithm {
    /// Creates the technique with a fixed seed and default parameters.
    pub fn with_seed(seed: u64) -> Self {
        GeneticAlgorithm {
            rng: ChaCha8Rng::seed_from_u64(seed),
            dims: None,
            population: Vec::new(),
            seed_asked: 0,
            seed_reported: 0,
            pending: VecDeque::new(),
            pop_size: DEFAULT_POPULATION,
            mutation_rate: DEFAULT_MUTATION,
            tournament: DEFAULT_TOURNAMENT,
        }
    }

    /// Sets the population size (≥ 2).
    pub fn population(mut self, n: usize) -> Self {
        assert!(n >= 2, "population must be ≥ 2");
        self.pop_size = n;
        self
    }

    /// Sets the per-coordinate mutation rate in (0, 1].
    pub fn mutation_rate(mut self, r: f64) -> Self {
        assert!(r > 0.0 && r <= 1.0);
        self.mutation_rate = r;
        self
    }

    /// Tournament selection: the best of `tournament` random members.
    fn select(&mut self) -> Point {
        let n = self.population.len();
        let mut best: Option<usize> = None;
        for _ in 0..self.tournament {
            let i = self.rng.gen_range(0..n);
            if best.is_none_or(|b| self.population[i].1 < self.population[b].1) {
                best = Some(i);
            }
        }
        self.population[best.expect("non-empty population")]
            .0
            .clone()
    }

    fn make_child(&mut self) -> Point {
        let a = self.select();
        let b = self.select();
        let dims = self.dims.clone().expect("initialized");
        (0..dims.dims())
            .map(|d| {
                let mut gene = if self.rng.gen_bool(0.5) { a[d] } else { b[d] };
                if dims.size(d) > 1 && self.rng.gen_bool(self.mutation_rate) {
                    gene = self.rng.gen_range(0..dims.size(d));
                }
                gene
            })
            .collect()
    }

    fn worst_index(&self) -> usize {
        let mut w = 0;
        for (i, (_, c)) in self.population.iter().enumerate() {
            if *c > self.population[w].1 {
                w = i;
            }
        }
        w
    }
}

impl Default for GeneticAlgorithm {
    fn default() -> Self {
        Self::with_seed(0x6a)
    }
}

impl SearchTechnique for GeneticAlgorithm {
    fn initialize(&mut self, dims: SpaceDims) {
        let n = self.pop_size.min(dims.len().min(1 << 20) as usize).max(2);
        self.population.clear();
        for _ in 0..n {
            let p = dims.random_point(&mut self.rng);
            self.population.push((p, f64::INFINITY));
        }
        self.seed_asked = 0;
        self.seed_reported = 0;
        self.pending.clear();
        self.dims = Some(dims);
    }

    fn get_next_point(&mut self) -> Option<Point> {
        let p = if self.seed_asked < self.population.len() {
            let p = self.population[self.seed_asked].0.clone();
            self.seed_asked += 1;
            p
        } else {
            self.make_child()
        };
        self.pending.push_back(p.clone());
        Some(p)
    }

    fn report_cost(&mut self, cost: f64) {
        let Some(p) = self.pending.pop_front() else {
            return;
        };
        if self.seed_reported < self.population.len() {
            let i = self.seed_reported;
            self.population[i].1 = cost;
            self.seed_reported += 1;
        } else {
            let w = self.worst_index();
            if cost < self.population[w].1 {
                self.population[w] = (p, cost);
            }
        }
    }

    /// One generation may be evaluated in parallel: up to `population`
    /// proposals outstanding at once (children bred before all seed costs
    /// arrive select among the already-seeded members).
    fn can_propose(&self, outstanding: usize) -> bool {
        outstanding < self.population.len().max(1)
    }

    fn name(&self) -> &'static str {
        "genetic-algorithm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::test_util::*;

    #[test]
    fn converges_on_bowl() {
        let mut t = GeneticAlgorithm::with_seed(51);
        let (_, c) = drive(
            &mut t,
            SpaceDims::new(vec![128, 128]),
            2000,
            bowl(vec![30, 110]),
        );
        assert!(c <= 16.0, "GA far from optimum: cost {c}");
    }

    #[test]
    fn children_stay_in_bounds() {
        let dims = SpaceDims::new(vec![4, 9, 2]);
        let mut t = GeneticAlgorithm::with_seed(1);
        t.initialize(dims.clone());
        for i in 0..200 {
            let p = t.get_next_point().unwrap();
            for (d, &c) in p.iter().enumerate() {
                assert!(c < dims.size(d));
            }
            t.report_cost(((i * 7) % 13) as f64);
        }
    }

    #[test]
    fn worst_member_is_replaced_by_better_child() {
        let mut t = GeneticAlgorithm::with_seed(2).population(3);
        t.initialize(SpaceDims::new(vec![100]));
        for c in [5.0, 9.0, 7.0] {
            let _ = t.get_next_point().unwrap();
            t.report_cost(c);
        }
        // Child better than the worst (9.0) must replace it.
        let child = t.get_next_point().unwrap();
        t.report_cost(1.0);
        let costs: Vec<f64> = t.population.iter().map(|(_, c)| *c).collect();
        assert!(costs.contains(&1.0) && !costs.contains(&9.0));
        assert!(t.population.iter().any(|(p, _)| *p == child));
        // Worse child is discarded.
        let _ = t.get_next_point().unwrap();
        t.report_cost(99.0);
        assert!(!t.population.iter().any(|(_, c)| *c == 99.0));
    }

    #[test]
    fn deterministic() {
        let run = |seed| {
            let mut t = GeneticAlgorithm::with_seed(seed);
            t.initialize(SpaceDims::new(vec![50, 50]));
            (0..60)
                .map(|i| {
                    let p = t.get_next_point().unwrap();
                    t.report_cost((i % 11) as f64);
                    p
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn tiny_space() {
        let mut t = GeneticAlgorithm::with_seed(3);
        t.initialize(SpaceDims::new(vec![1, 2]));
        for i in 0..30 {
            let p = t.get_next_point().unwrap();
            assert!(p[0] < 1 && p[1] < 2);
            t.report_cost(i as f64);
        }
    }
}
