//! Nelder-Mead downhill simplex, in the ask/tell (sequential) form required
//! by the `search_technique` interface. One of the sub-techniques of the
//! OpenTuner-style ensemble (paper, Section IV-C: "many variants of
//! Nelder-Mead search (a.k.a. simplex method)").
//!
//! The simplex lives in the continuous relaxation of the grid; proposed
//! vertices are rounded onto the grid when emitted. When the simplex
//! collapses below one grid cell it restarts from a random location, so the
//! technique never stops proposing points.

use super::{Point, SearchTechnique, SpaceDims};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const ALPHA: f64 = 1.0; // reflection
const GAMMA: f64 = 2.0; // expansion
const RHO: f64 = 0.5; // contraction
const SIGMA: f64 = 0.5; // shrink

#[derive(Clone, Debug)]
enum Phase {
    /// Evaluating initial simplex vertex `k`.
    Building(usize),
    Reflect,
    Expand,
    ContractOutside,
    ContractInside,
    /// Evaluating shrunk vertex `k` (vertex 0, the best, is kept).
    Shrink(usize),
}

/// Ask/tell Nelder-Mead simplex search over the valid-space grid.
#[derive(Clone, Debug)]
pub struct NelderMead {
    rng: ChaCha8Rng,
    dims: Option<SpaceDims>,
    /// Simplex vertices and costs; `costs[i]` is `NaN` while unevaluated.
    simplex: Vec<(Vec<f64>, f64)>,
    phase: Phase,
    /// Next vertex to *propose* during the multi-point Building/Shrink
    /// phases; the phase's own index is the *report* cursor. Letting the
    /// ask cursor run ahead is what allows a whole simplex to be evaluated
    /// in parallel. Reset at each phase start.
    ask_cursor: usize,
    /// The continuous point awaiting its cost.
    pending: Option<Vec<f64>>,
    /// Saved reflection point/cost between phases.
    reflected: Option<(Vec<f64>, f64)>,
}

impl NelderMead {
    /// Creates the technique with a fixed seed.
    pub fn with_seed(seed: u64) -> Self {
        NelderMead {
            rng: ChaCha8Rng::seed_from_u64(seed),
            dims: None,
            simplex: Vec::new(),
            phase: Phase::Building(0),
            ask_cursor: 0,
            pending: None,
            reflected: None,
        }
    }

    fn n(&self) -> usize {
        self.dims.as_ref().expect("initialized").dims()
    }

    /// Builds a fresh random simplex: a random base vertex plus one offset
    /// vertex per dimension at ~1/4 of the dimension size.
    fn new_simplex(&mut self) {
        let dims = self.dims.clone().expect("initialized");
        let base: Vec<f64> = (0..dims.dims())
            .map(|d| self.rng.gen_range(0..dims.size(d)) as f64)
            .collect();
        let mut simplex = vec![(base.clone(), f64::NAN)];
        for d in 0..dims.dims() {
            let mut v = base.clone();
            let step = ((dims.size(d) as f64) / 4.0).max(1.0);
            // Offset toward the interior so the vertex stays in range.
            if v[d] + step < dims.size(d) as f64 {
                v[d] += step;
            } else {
                v[d] -= step;
            }
            simplex.push((v, f64::NAN));
        }
        self.simplex = simplex;
        self.phase = Phase::Building(0);
        self.ask_cursor = 0;
        self.reflected = None;
    }

    fn centroid_excl_worst(&self) -> Vec<f64> {
        let n = self.n();
        let mut c = vec![0.0; n];
        for (v, _) in &self.simplex[..self.simplex.len() - 1] {
            for (ci, vi) in c.iter_mut().zip(v) {
                *ci += vi;
            }
        }
        for ci in &mut c {
            *ci /= (self.simplex.len() - 1) as f64;
        }
        c
    }

    fn sort_simplex(&mut self) {
        self.simplex
            .sort_by(|a, b| a.1.partial_cmp(&b.1).expect("costs are comparable"));
    }

    /// Simplex diameter in grid units (max coordinate spread).
    fn diameter(&self) -> f64 {
        let n = self.n();
        (0..n)
            .map(|d| {
                let lo = self
                    .simplex
                    .iter()
                    .map(|(v, _)| v[d])
                    .fold(f64::INFINITY, f64::min);
                let hi = self
                    .simplex
                    .iter()
                    .map(|(v, _)| v[d])
                    .fold(f64::NEG_INFINITY, f64::max);
                hi - lo
            })
            .fold(0.0, f64::max)
    }

    /// Starts the next reflect step (after sorting), restarting when the
    /// simplex has collapsed onto (less than) a single grid cell.
    fn next_iteration(&mut self) {
        self.sort_simplex();
        if self.diameter() < 0.5 {
            self.new_simplex();
            return;
        }
        let centroid = self.centroid_excl_worst();
        let worst = &self.simplex.last().expect("non-empty").0;
        let xr: Vec<f64> = centroid
            .iter()
            .zip(worst)
            .map(|(c, w)| c + ALPHA * (c - w))
            .collect();
        self.phase = Phase::Reflect;
        self.pending = Some(xr);
    }

    fn point_for(&mut self) -> Vec<f64> {
        match self.phase {
            Phase::Building(_) | Phase::Shrink(_) => {
                let x = self.simplex[self.ask_cursor].0.clone();
                self.ask_cursor += 1;
                x
            }
            _ => self.pending.clone().expect("pending point set"),
        }
    }
}

impl Default for NelderMead {
    fn default() -> Self {
        Self::with_seed(0x5e1d)
    }
}

impl SearchTechnique for NelderMead {
    fn initialize(&mut self, dims: SpaceDims) {
        self.dims = Some(dims);
        self.new_simplex();
        self.pending = None;
    }

    fn get_next_point(&mut self) -> Option<Point> {
        let x = self.point_for();
        let dims = self.dims.as_ref().expect("initialize not called");
        Some(dims.round(&x))
    }

    fn report_cost(&mut self, cost: f64) {
        match self.phase {
            Phase::Building(k) => {
                self.simplex[k].1 = cost;
                if k + 1 < self.simplex.len() {
                    self.phase = Phase::Building(k + 1);
                } else {
                    self.next_iteration();
                }
            }
            Phase::Reflect => {
                let xr = self.pending.take().expect("reflect pending");
                let best = self.simplex[0].1;
                let second_worst = self.simplex[self.simplex.len() - 2].1;
                let worst = self.simplex.last().expect("non-empty").1;
                if cost < best {
                    // Try expanding further along the reflection direction.
                    let centroid = self.centroid_excl_worst();
                    let xe: Vec<f64> = centroid
                        .iter()
                        .zip(&xr)
                        .map(|(c, r)| c + GAMMA * (r - c))
                        .collect();
                    self.reflected = Some((xr, cost));
                    self.phase = Phase::Expand;
                    self.pending = Some(xe);
                } else if cost < second_worst {
                    *self.simplex.last_mut().expect("non-empty") = (xr, cost);
                    self.next_iteration();
                } else {
                    let centroid = self.centroid_excl_worst();
                    if cost < worst {
                        // Contract outside: between centroid and reflection.
                        let xc: Vec<f64> = centroid
                            .iter()
                            .zip(&xr)
                            .map(|(c, r)| c + RHO * (r - c))
                            .collect();
                        self.reflected = Some((xr, cost));
                        self.phase = Phase::ContractOutside;
                        self.pending = Some(xc);
                    } else {
                        // Contract inside: between centroid and worst vertex.
                        let w = self.simplex.last().expect("non-empty").0.clone();
                        let xc: Vec<f64> = centroid
                            .iter()
                            .zip(&w)
                            .map(|(c, w)| c + RHO * (w - c))
                            .collect();
                        self.reflected = Some((xr, cost));
                        self.phase = Phase::ContractInside;
                        self.pending = Some(xc);
                    }
                }
            }
            Phase::Expand => {
                let xe = self.pending.take().expect("expand pending");
                let (xr, fr) = self.reflected.take().expect("reflection saved");
                *self.simplex.last_mut().expect("non-empty") =
                    if cost < fr { (xe, cost) } else { (xr, fr) };
                self.next_iteration();
            }
            Phase::ContractOutside => {
                let xc = self.pending.take().expect("contract pending");
                let (_, fr) = self.reflected.take().expect("reflection saved");
                if cost <= fr {
                    *self.simplex.last_mut().expect("non-empty") = (xc, cost);
                    self.next_iteration();
                } else {
                    self.start_shrink();
                }
            }
            Phase::ContractInside => {
                let xc = self.pending.take().expect("contract pending");
                self.reflected = None;
                let worst = self.simplex.last().expect("non-empty").1;
                if cost < worst {
                    *self.simplex.last_mut().expect("non-empty") = (xc, cost);
                    self.next_iteration();
                } else {
                    self.start_shrink();
                }
            }
            Phase::Shrink(k) => {
                self.simplex[k].1 = cost;
                if k + 1 < self.simplex.len() {
                    self.phase = Phase::Shrink(k + 1);
                } else {
                    self.next_iteration();
                }
            }
        }
    }

    /// Building/Shrink evaluate a whole simplex in parallel (up to one
    /// proposal per vertex of the phase); the single-point phases
    /// (reflect/expand/contract) stay strictly serial.
    fn can_propose(&self, outstanding: usize) -> bool {
        match self.phase {
            Phase::Building(_) | Phase::Shrink(_) => self.ask_cursor < self.simplex.len(),
            _ => outstanding == 0,
        }
    }

    fn name(&self) -> &'static str {
        "nelder-mead"
    }
}

impl NelderMead {
    fn start_shrink(&mut self) {
        // Shrink all vertices toward the best one; re-evaluate vertices 1..n.
        let best = self.simplex[0].0.clone();
        for (v, c) in &mut self.simplex[1..] {
            for (vi, bi) in v.iter_mut().zip(&best) {
                *vi = bi + SIGMA * (*vi - bi);
            }
            *c = f64::NAN;
        }
        self.phase = Phase::Shrink(1);
        self.ask_cursor = 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::test_util::*;

    #[test]
    fn converges_on_smooth_bowl() {
        let mut t = NelderMead::with_seed(21);
        let (_, c) = drive(
            &mut t,
            SpaceDims::new(vec![128, 128]),
            400,
            bowl(vec![100, 30]),
        );
        assert!(c <= 25.0, "Nelder-Mead far from optimum: cost {c}");
    }

    #[test]
    fn one_dimensional_space_works() {
        let mut t = NelderMead::with_seed(3);
        let (_, c) = drive(&mut t, SpaceDims::new(vec![1000]), 300, |p: &Point| {
            (p[0] as f64 - 700.0).abs()
        });
        assert!(c <= 10.0, "cost {c}");
    }

    #[test]
    fn tiny_space_never_stops() {
        let mut t = NelderMead::with_seed(4);
        t.initialize(SpaceDims::new(vec![2, 2]));
        for i in 0..50 {
            let p = t.get_next_point().expect("always proposes");
            assert!(p[0] < 2 && p[1] < 2);
            t.report_cost((i % 3) as f64);
        }
    }

    #[test]
    fn restarts_after_collapse() {
        // Constant landscape: the simplex shrinks to a point, must restart
        // rather than loop on a single vertex forever.
        let mut t = NelderMead::with_seed(5);
        t.initialize(SpaceDims::new(vec![64]));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            let p = t.get_next_point().unwrap();
            seen.insert(p.clone());
            t.report_cost(1.0);
        }
        assert!(seen.len() > 3, "never escaped collapsed simplex");
    }

    #[test]
    fn deterministic_with_seed() {
        let run = |seed| {
            let mut t = NelderMead::with_seed(seed);
            t.initialize(SpaceDims::new(vec![32, 32]));
            (0..30)
                .map(|i| {
                    let p = t.get_next_point().unwrap();
                    t.report_cost((i * 7 % 5) as f64);
                    p
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(8), run(8));
    }
}
