//! Pattern (compass) search: probe ± step along every dimension, move to the
//! best improvement, halve the step on failure. A classic direct-search
//! member of the OpenTuner ensemble family.

use super::{Point, SearchTechnique, SpaceDims};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Compass pattern search (ask/tell form).
#[derive(Clone, Debug)]
pub struct PatternSearch {
    rng: ChaCha8Rng,
    dims: Option<SpaceDims>,
    /// Current centre and its cost (`None` until first report).
    centre: Option<(Point, f64)>,
    /// Per-dimension step sizes.
    steps: Vec<u64>,
    /// Probes of the current sweep, with costs filled in as reported.
    probes: Vec<(Point, f64)>,
    /// Next probe whose *report* will be applied.
    cursor: usize,
    /// Next probe to *propose*; runs ahead of `cursor` so a whole sweep can
    /// be evaluated in parallel. Reset with `cursor`.
    ask_cursor: usize,
    /// Point awaiting a cost report (centre evaluation or probe).
    awaiting_centre: bool,
    /// The not-yet-evaluated centre of a fresh (re)start.
    pending_centre: Option<Point>,
}

impl PatternSearch {
    /// Creates the technique with a fixed seed.
    pub fn with_seed(seed: u64) -> Self {
        PatternSearch {
            rng: ChaCha8Rng::seed_from_u64(seed),
            dims: None,
            centre: None,
            steps: Vec::new(),
            probes: Vec::new(),
            cursor: 0,
            ask_cursor: 0,
            awaiting_centre: false,
            pending_centre: None,
        }
    }

    fn restart(&mut self) {
        let dims = self.dims.clone().expect("initialized");
        let c = dims.random_point(&mut self.rng);
        self.steps = dims.sizes().iter().map(|&s| (s / 4).max(1)).collect();
        self.centre = None;
        self.probes.clear();
        self.cursor = 0;
        self.ask_cursor = 0;
        self.awaiting_centre = true;
        self.pending_centre = Some(c);
    }

    fn build_probes(&mut self) {
        let dims = self.dims.as_ref().expect("initialized");
        let (c, _) = self.centre.as_ref().expect("centre evaluated");
        let mut probes = Vec::with_capacity(2 * dims.dims());
        for d in 0..dims.dims() {
            let step = self.steps[d];
            if c[d] + step < dims.size(d) {
                let mut p = c.clone();
                p[d] += step;
                probes.push((p, f64::NAN));
            }
            if c[d] >= step {
                let mut p = c.clone();
                p[d] -= step;
                probes.push((p, f64::NAN));
            }
        }
        self.probes = probes;
        self.cursor = 0;
        self.ask_cursor = 0;
    }

    /// Ends a sweep: move to the best improving probe, or halve steps; when
    /// all steps are exhausted, restart elsewhere.
    fn finish_sweep(&mut self) {
        let centre_cost = self.centre.as_ref().expect("centre").1;
        let best = self
            .probes
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("comparable"))
            .cloned();
        match best {
            Some((p, c)) if c < centre_cost => {
                self.centre = Some((p, c));
            }
            _ => {
                let mut all_one = true;
                for s in &mut self.steps {
                    if *s > 1 {
                        *s /= 2;
                        all_one = false;
                    }
                }
                if all_one {
                    self.restart();
                    return;
                }
            }
        }
        self.build_probes();
        if self.probes.is_empty() {
            // Degenerate space (all dims size 1): restart keeps us live.
            self.restart();
        }
    }
}

impl Default for PatternSearch {
    fn default() -> Self {
        Self::with_seed(0x9a77)
    }
}

impl SearchTechnique for PatternSearch {
    fn initialize(&mut self, dims: SpaceDims) {
        self.dims = Some(dims);
        self.restart();
    }

    fn get_next_point(&mut self) -> Option<Point> {
        if self.awaiting_centre {
            return self.pending_centre.clone();
        }
        let p = self.probes[self.ask_cursor].0.clone();
        self.ask_cursor += 1;
        Some(p)
    }

    fn report_cost(&mut self, cost: f64) {
        if self.awaiting_centre {
            let p = self.pending_centre.take().expect("pending centre");
            self.centre = Some((p, cost));
            self.awaiting_centre = false;
            self.build_probes();
            if self.probes.is_empty() {
                self.restart();
            }
            return;
        }
        self.probes[self.cursor].1 = cost;
        self.cursor += 1;
        if self.cursor == self.probes.len() {
            self.finish_sweep();
        }
    }

    /// A sweep's probes are evaluated in parallel; the centre of a fresh
    /// (re)start is evaluated strictly serially, since the probes depend on
    /// its cost.
    fn can_propose(&self, outstanding: usize) -> bool {
        if self.awaiting_centre {
            outstanding == 0
        } else {
            self.ask_cursor < self.probes.len()
        }
    }

    fn name(&self) -> &'static str {
        "pattern-search"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::test_util::*;

    #[test]
    fn converges_on_bowl() {
        let mut t = PatternSearch::with_seed(17);
        let (_, c) = drive(
            &mut t,
            SpaceDims::new(vec![256, 256]),
            400,
            bowl(vec![200, 31]),
        );
        assert_eq!(c, 0.0, "pattern search should nail a smooth bowl");
    }

    #[test]
    fn single_point_space_restarts_safely() {
        let mut t = PatternSearch::with_seed(1);
        t.initialize(SpaceDims::new(vec![1, 1]));
        for _ in 0..20 {
            let p = t.get_next_point().expect("proposal");
            assert_eq!(p, vec![0, 0]);
            t.report_cost(1.0);
        }
    }

    #[test]
    fn probes_stay_in_bounds() {
        let mut t = PatternSearch::with_seed(2);
        t.initialize(SpaceDims::new(vec![3, 17]));
        for i in 0..200 {
            let p = t.get_next_point().unwrap();
            assert!(p[0] < 3 && p[1] < 17, "out of bounds {p:?}");
            t.report_cost(((i * 13) % 10) as f64);
        }
    }

    #[test]
    fn restarts_when_steps_exhaust() {
        let mut t = PatternSearch::with_seed(3);
        t.initialize(SpaceDims::new(vec![8]));
        let mut seen = std::collections::HashSet::new();
        // Constant landscape → steps shrink → restart; must keep proposing.
        for _ in 0..100 {
            seen.insert(t.get_next_point().unwrap());
            t.report_cost(1.0);
        }
        assert!(seen.len() >= 2);
    }
}
