//! Exhaustive search — "iterates straightforwardly over the search space"
//! and "finds the provably best configuration" (paper, Sections II/IV-A).

use super::{Point, SearchTechnique, SpaceDims};

/// Exhaustive enumeration of the valid search space in index order.
///
/// `report_cost` is a no-op, exactly as in the paper; `get_next_point`
/// returns each configuration once and then `None`.
#[derive(Clone, Debug, Default)]
pub struct Exhaustive {
    dims: Option<SpaceDims>,
    next: Option<Point>,
    done: bool,
}

impl Exhaustive {
    /// Creates the exhaustive search technique.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SearchTechnique for Exhaustive {
    fn initialize(&mut self, dims: SpaceDims) {
        self.next = Some(vec![0; dims.dims()]);
        self.dims = Some(dims);
        self.done = false;
    }

    fn get_next_point(&mut self) -> Option<Point> {
        if self.done {
            return None;
        }
        let dims = self.dims.as_ref().expect("initialize not called");
        let current = self.next.clone()?;
        // Odometer increment for the next call.
        let mut p = current.clone();
        let mut d = p.len();
        loop {
            if d == 0 {
                self.done = true;
                self.next = None;
                break;
            }
            d -= 1;
            p[d] += 1;
            if p[d] < dims.size(d) {
                self.next = Some(p);
                break;
            }
            p[d] = 0;
        }
        Some(current)
    }

    fn report_cost(&mut self, _cost: f64) {}

    /// Proposals are independent of reported costs, so any number of
    /// enumeration indices may be outstanding at once.
    fn can_propose(&self, _outstanding: usize) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "exhaustive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn visits_every_point_exactly_once() {
        let mut t = Exhaustive::new();
        t.initialize(SpaceDims::new(vec![3, 4, 2]));
        let mut seen = HashSet::new();
        while let Some(p) = t.get_next_point() {
            t.report_cost(1.0);
            assert!(seen.insert(p.clone()), "duplicate point {p:?}");
        }
        assert_eq!(seen.len(), 24);
        assert!(t.get_next_point().is_none()); // stays exhausted
    }

    #[test]
    fn single_point_space() {
        let mut t = Exhaustive::new();
        t.initialize(SpaceDims::new(vec![1]));
        assert_eq!(t.get_next_point(), Some(vec![0]));
        assert!(t.get_next_point().is_none());
    }

    #[test]
    fn index_order_matches_mixed_radix() {
        let mut t = Exhaustive::new();
        t.initialize(SpaceDims::new(vec![2, 3]));
        let pts: Vec<_> = std::iter::from_fn(|| t.get_next_point()).collect();
        assert_eq!(
            pts,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2]
            ]
        );
    }

    #[test]
    fn reinitialize_resets() {
        let mut t = Exhaustive::new();
        t.initialize(SpaceDims::new(vec![2]));
        let _ = t.get_next_point();
        let _ = t.get_next_point();
        assert!(t.get_next_point().is_none());
        t.initialize(SpaceDims::new(vec![2]));
        assert_eq!(t.get_next_point(), Some(vec![0]));
    }

    #[test]
    fn finds_true_optimum() {
        use super::super::test_util::*;
        let mut t = Exhaustive::new();
        let (p, c) = drive(&mut t, SpaceDims::new(vec![10, 10]), 1000, bowl(vec![7, 3]));
        assert_eq!(p, vec![7, 3]);
        assert_eq!(c, 0.0);
    }
}
