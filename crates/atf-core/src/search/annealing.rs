//! Simulated annealing — "has proven to be effective for auto-tuning OpenCL
//! and CUDA applications if search spaces are too large to be explored
//! exhaustively" (paper, Sections II/IV-B; Kirkpatrick et al. 1983).
//!
//! In each step the technique proposes a random neighbour `c'` of the
//! current configuration `c`; after the cost `t'` is reported, `c'` becomes
//! the new current configuration with probability
//! `P(t, t', T) = exp(-(t' - t) / T)` if `t' ≥ t` and 1 otherwise. The value
//! `T = 4` was reported as suitable for OpenCL and CUDA (CLTune); costs are
//! normalized by the best cost seen so far, so that `T` is scale-free (raw
//! kernel runtimes may be nanoseconds or minutes).

use super::{Point, SearchTechnique, SpaceDims, PENALTY_COST};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// The paper's default annealing temperature (from CLTune).
pub const DEFAULT_TEMPERATURE: f64 = 4.0;

/// Simulated-annealing search.
#[derive(Clone, Debug)]
pub struct SimulatedAnnealing {
    rng: ChaCha8Rng,
    dims: Option<SpaceDims>,
    /// Initial temperature `T`.
    t0: f64,
    /// Multiplicative cooling per accepted-or-rejected step; 1.0 = the
    /// paper's constant-temperature variant.
    cooling: f64,
    /// Current temperature.
    temperature: f64,
    /// Current configuration and its cost.
    current: Option<(Point, f64)>,
    /// Proposals awaiting their cost reports, in proposal order. Under
    /// speculative (parallel) proposing several neighbours of the same —
    /// possibly stale — current point may be outstanding at once; reports
    /// arrive in this order and are reconciled one by one.
    pending: VecDeque<Point>,
    /// Best cost seen (for cost normalization).
    best_seen: f64,
    /// Steps since the last improvement of `best_seen` (drives restarts).
    stagnation: u64,
    /// Random-restart threshold: restart from a fresh random point after
    /// this many non-improving steps (0 disables).
    restart_after: u64,
}

impl SimulatedAnnealing {
    /// Annealing with the paper's settings (`T = 4`, no cooling) and a fixed
    /// seed.
    pub fn with_seed(seed: u64) -> Self {
        SimulatedAnnealing {
            rng: ChaCha8Rng::seed_from_u64(seed),
            dims: None,
            t0: DEFAULT_TEMPERATURE,
            cooling: 1.0,
            temperature: DEFAULT_TEMPERATURE,
            current: None,
            pending: VecDeque::new(),
            best_seen: f64::INFINITY,
            stagnation: 0,
            restart_after: 500,
        }
    }

    /// Sets the initial temperature (default 4, per the paper).
    pub fn temperature(mut self, t: f64) -> Self {
        assert!(t > 0.0, "temperature must be positive");
        self.t0 = t;
        self.temperature = t;
        self
    }

    /// Sets a multiplicative cooling factor applied after every step
    /// (e.g. 0.995). The paper's variant keeps `T` constant (factor 1).
    pub fn cooling(mut self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "cooling factor must be in (0, 1]"
        );
        self.cooling = factor;
        self
    }

    /// Random-restart after `n` consecutive steps without improving the best
    /// cost (0 disables restarts).
    pub fn restart_after(mut self, n: u64) -> Self {
        self.restart_after = n;
        self
    }

    /// Acceptance probability for moving from cost `t` to cost `t_new` at
    /// temperature `temp`, with costs normalized by `scale` (the best cost
    /// seen). Public for testing and documentation.
    pub fn acceptance_probability(t: f64, t_new: f64, temp: f64, scale: f64) -> f64 {
        if t_new <= t {
            1.0
        } else {
            let scale = if scale.is_finite() && scale > 0.0 {
                scale
            } else {
                1.0
            };
            (-((t_new - t) / scale) / temp).exp()
        }
    }

    /// Proposes a random neighbour of `p`: one dimension is perturbed by a
    /// geometrically distributed step (small steps common, large rare), so
    /// the walk can both fine-tune and escape local basins.
    fn neighbour(&mut self, p: &Point) -> Point {
        let dims = self.dims.as_ref().expect("initialized");
        let mut q = p.clone();
        // Perturb 1 dimension (occasionally 2 if available).
        let n_perturb = if dims.dims() > 1 && self.rng.gen_bool(0.25) {
            2
        } else {
            1
        };
        for _ in 0..n_perturb {
            let d = self.rng.gen_range(0..dims.dims());
            let size = dims.size(d);
            if size == 1 {
                continue;
            }
            // Scale-free (log-uniform) step magnitude: on large dimensions
            // (e.g. a single-group valid space with millions of indices) the
            // walk must mix short fine-tuning moves with long-range jumps,
            // or it never leaves the basin it started in.
            let max_exp = 63 - (size - 1).max(1).leading_zeros() as u64; // ⌊log2⌋
            let exp = self.rng.gen_range(0..=max_exp);
            let lo = 1u64 << exp;
            let hi = (lo * 2 - 1).min(size - 1);
            let step = self.rng.gen_range(lo..=hi.max(lo));
            let cur = q[d];
            q[d] = if self.rng.gen_bool(0.5) {
                // Wrap-around keeps the stationary distribution uniform.
                (cur + step) % size
            } else {
                (cur + size - (step % size)) % size
            };
        }
        q
    }
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        Self::with_seed(0xa17f)
    }
}

impl SearchTechnique for SimulatedAnnealing {
    fn initialize(&mut self, dims: SpaceDims) {
        self.dims = Some(dims);
        self.current = None;
        self.pending.clear();
        self.temperature = self.t0;
        self.best_seen = f64::INFINITY;
        self.stagnation = 0;
    }

    fn get_next_point(&mut self) -> Option<Point> {
        let p = match &self.current {
            None => {
                let dims = self.dims.as_ref().expect("initialize not called");
                dims.random_point(&mut self.rng)
            }
            Some((cur, _)) => {
                let cur = cur.clone();
                self.neighbour(&cur)
            }
        };
        self.pending.push_back(p.clone());
        Some(p)
    }

    fn report_cost(&mut self, cost: f64) {
        let Some(p) = self.pending.pop_front() else {
            return; // spurious report; ignore
        };
        if cost < self.best_seen {
            self.best_seen = cost;
            self.stagnation = 0;
        } else {
            self.stagnation += 1;
        }
        match &self.current {
            None => self.current = Some((p, cost)),
            Some((_, t)) => {
                let accept = if cost >= PENALTY_COST {
                    false // never walk onto failed configurations
                } else {
                    let pr =
                        Self::acceptance_probability(*t, cost, self.temperature, self.best_seen);
                    pr >= 1.0 || self.rng.gen_bool(pr)
                };
                if accept {
                    self.current = Some((p, cost));
                }
            }
        }
        self.temperature = (self.temperature * self.cooling).max(1e-6);
        if self.restart_after > 0 && self.stagnation >= self.restart_after {
            self.current = None; // restart from a fresh random point
            self.temperature = self.t0;
            self.stagnation = 0;
        }
    }

    /// Speculative lookahead: several neighbours of the (possibly stale)
    /// current point may be outstanding at once; reports are reconciled in
    /// proposal order, so the walk stays well-defined.
    fn can_propose(&self, _outstanding: usize) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "simulated-annealing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::test_util::*;

    #[test]
    fn acceptance_probability_laws() {
        // Better or equal: always accept.
        assert_eq!(
            SimulatedAnnealing::acceptance_probability(5.0, 4.0, 4.0, 1.0),
            1.0
        );
        assert_eq!(
            SimulatedAnnealing::acceptance_probability(5.0, 5.0, 4.0, 1.0),
            1.0
        );
        // Worse: exp(-(Δ/scale)/T), monotone in Δ and T.
        let p1 = SimulatedAnnealing::acceptance_probability(1.0, 2.0, 4.0, 1.0);
        let p2 = SimulatedAnnealing::acceptance_probability(1.0, 3.0, 4.0, 1.0);
        assert!(p2 < p1 && p1 < 1.0);
        let hot = SimulatedAnnealing::acceptance_probability(1.0, 2.0, 8.0, 1.0);
        assert!(hot > p1);
        // The paper's formula exactly: Δ=1, T=4 → e^{-0.25}.
        assert!((p1 - (-0.25f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn scale_invariance() {
        // Costs in nanoseconds vs seconds give identical probabilities when
        // normalized by the best seen.
        let a = SimulatedAnnealing::acceptance_probability(1e-9, 2e-9, 4.0, 1e-9);
        let b = SimulatedAnnealing::acceptance_probability(1.0, 2.0, 4.0, 1.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn finds_good_point_on_bowl() {
        let mut t = SimulatedAnnealing::with_seed(11);
        let (p, c) = drive(
            &mut t,
            SpaceDims::new(vec![64, 64]),
            800,
            bowl(vec![50, 13]),
        );
        assert!(c <= 8.0, "annealing ended far from optimum: {p:?} cost {c}");
    }

    #[test]
    fn handles_penalty_costs() {
        // A landscape where half the space "fails"; annealing must still
        // find the valid minimum and never crash on the penalty.
        let mut t = SimulatedAnnealing::with_seed(5);
        let (_, c) = drive(&mut t, SpaceDims::new(vec![128]), 600, |p: &Point| {
            if p[0] % 2 == 1 {
                PENALTY_COST
            } else {
                (p[0] as f64 - 64.0).abs()
            }
        });
        assert!(c <= 6.0, "cost {c}");
    }

    #[test]
    fn neighbour_stays_in_bounds() {
        let mut t = SimulatedAnnealing::with_seed(1);
        let dims = SpaceDims::new(vec![7, 1, 13]);
        t.initialize(dims.clone());
        let p = vec![3, 0, 12];
        for _ in 0..200 {
            let q = t.neighbour(&p);
            for (d, &c) in q.iter().enumerate() {
                assert!(c < dims.size(d));
            }
        }
    }

    #[test]
    fn restart_resets_current() {
        let mut t = SimulatedAnnealing::with_seed(2).restart_after(3);
        t.initialize(SpaceDims::new(vec![100]));
        // Feed constant costs → stagnation → restart path must not panic and
        // must keep proposing points.
        for _ in 0..20 {
            let _ = t.get_next_point().unwrap();
            t.report_cost(1.0);
        }
        assert!(t.get_next_point().is_some());
    }

    #[test]
    fn deterministic_with_seed() {
        let run = |seed| {
            let mut t = SimulatedAnnealing::with_seed(seed);
            t.initialize(SpaceDims::new(vec![50, 50]));
            let mut pts = Vec::new();
            for i in 0..20 {
                let p = t.get_next_point().unwrap();
                pts.push(p.clone());
                t.report_cost((i % 5) as f64);
            }
            pts
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn cooling_reduces_temperature() {
        let mut t = SimulatedAnnealing::with_seed(1).cooling(0.5);
        t.initialize(SpaceDims::new(vec![10]));
        let _ = t.get_next_point();
        t.report_cost(1.0);
        let _ = t.get_next_point();
        t.report_cost(2.0);
        assert!(t.temperature < DEFAULT_TEMPERATURE);
    }
}
