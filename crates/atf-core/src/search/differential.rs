//! Differential evolution (Storn & Price) in ask/tell form. OpenTuner's
//! default meta-technique includes `DifferentialEvolutionAlt`, so this
//! technique is part of the faithful ensemble (paper, Section IV-C).
//!
//! Classic `DE/rand/1/bin`: for each population member `x_i`, a trial vector
//! `t = x_a + F (x_b - x_c)` (distinct random members) is crossed over with
//! `x_i` coordinate-wise (rate `CR`); the trial replaces `x_i` when it
//! measures better. Steady-state evaluation fits the one-point-at-a-time
//! tuner loop naturally.

use super::{Point, SearchTechnique, SpaceDims};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// Default differential weight.
pub const DEFAULT_F: f64 = 0.7;
/// Default crossover rate.
pub const DEFAULT_CR: f64 = 0.8;
/// Default population size (clamped to the space size).
pub const DEFAULT_POPULATION: usize = 20;

/// `DE/rand/1/bin` differential evolution over the grid's continuous
/// relaxation.
#[derive(Clone, Debug)]
pub struct DifferentialEvolution {
    rng: ChaCha8Rng,
    dims: Option<SpaceDims>,
    population: Vec<(Vec<f64>, f64)>,
    /// Members already *proposed* for their initial (seeding) evaluation.
    seed_asked: usize,
    /// Members whose seeding cost has been *reported*. All seeds are
    /// proposed before any trial, and reports arrive in proposal order, so
    /// the first `population.len()` reports are exactly the seed reports.
    seed_reported: usize,
    /// Target member of the next trial *proposal*.
    trial_ask: usize,
    /// Target member of the next trial *report*.
    trial_report: usize,
    /// Outstanding proposals in proposal order: `None` is a seeding
    /// evaluation, `Some(trial)` carries the continuous trial vector.
    pending: VecDeque<Option<Vec<f64>>>,
    f: f64,
    cr: f64,
    pop_size: usize,
}

impl DifferentialEvolution {
    /// Creates the technique with a fixed seed and default parameters.
    pub fn with_seed(seed: u64) -> Self {
        DifferentialEvolution {
            rng: ChaCha8Rng::seed_from_u64(seed),
            dims: None,
            population: Vec::new(),
            seed_asked: 0,
            seed_reported: 0,
            trial_ask: 0,
            trial_report: 0,
            pending: VecDeque::new(),
            f: DEFAULT_F,
            cr: DEFAULT_CR,
            pop_size: DEFAULT_POPULATION,
        }
    }

    /// Sets the differential weight `F` (typically 0.4–1.0).
    pub fn weight(mut self, f: f64) -> Self {
        assert!(f > 0.0 && f <= 2.0, "F must be in (0, 2]");
        self.f = f;
        self
    }

    /// Sets the crossover rate `CR` in (0, 1].
    pub fn crossover(mut self, cr: f64) -> Self {
        assert!(cr > 0.0 && cr <= 1.0, "CR must be in (0, 1]");
        self.cr = cr;
        self
    }

    /// Sets the population size (≥ 4 for the rand/1 mutation to have
    /// distinct donors).
    pub fn population(mut self, n: usize) -> Self {
        assert!(n >= 4, "population must be ≥ 4");
        self.pop_size = n;
        self
    }

    fn random_continuous(&mut self) -> Vec<f64> {
        let dims = self.dims.as_ref().expect("initialized");
        (0..dims.dims())
            .map(|d| self.rng.gen_range(0.0..dims.size(d) as f64))
            .collect()
    }

    /// Builds the trial vector for population member `i`.
    fn trial_for(&mut self, i: usize) -> Vec<f64> {
        let n = self.population.len();
        debug_assert!(n >= 4);
        // Three distinct donors, all different from i.
        let mut pick = || loop {
            let j = self.rng.gen_range(0..n);
            if j != i {
                break j;
            }
        };
        let (a, b, c) = {
            let a = pick();
            let b = loop {
                let x = pick();
                if x != a {
                    break x;
                }
            };
            let c = loop {
                let x = pick();
                if x != a && x != b {
                    break x;
                }
            };
            (a, b, c)
        };
        let dims = self.dims.clone().expect("initialized");
        let target = self.population[i].0.clone();
        let (xa, xb, xc) = (
            self.population[a].0.clone(),
            self.population[b].0.clone(),
            self.population[c].0.clone(),
        );
        let forced = self.rng.gen_range(0..dims.dims()); // ≥1 mutated coord
        (0..dims.dims())
            .map(|d| {
                if d == forced || self.rng.gen_bool(self.cr) {
                    let v = xa[d] + self.f * (xb[d] - xc[d]);
                    // Reflect into range to keep diversity at the borders.
                    let hi = (dims.size(d) - 1) as f64;
                    if hi == 0.0 {
                        0.0
                    } else {
                        let mut v = v;
                        while v < 0.0 || v > hi {
                            v = if v < 0.0 { -v } else { 2.0 * hi - v };
                        }
                        v
                    }
                } else {
                    target[d]
                }
            })
            .collect()
    }
}

impl Default for DifferentialEvolution {
    fn default() -> Self {
        Self::with_seed(0xde)
    }
}

impl SearchTechnique for DifferentialEvolution {
    fn initialize(&mut self, dims: SpaceDims) {
        let pop = self.pop_size.min(dims.len().min(1 << 20) as usize).max(4);
        self.dims = Some(dims);
        self.population.clear();
        self.population.reserve(pop);
        for _ in 0..pop {
            let x = self.random_continuous();
            self.population.push((x, f64::NAN));
        }
        self.seed_asked = 0;
        self.seed_reported = 0;
        self.trial_ask = 0;
        self.trial_report = 0;
        self.pending.clear();
    }

    fn get_next_point(&mut self) -> Option<Point> {
        let x = if self.seed_asked < self.population.len() {
            let x = self.population[self.seed_asked].0.clone();
            self.seed_asked += 1;
            self.pending.push_back(None);
            x
        } else {
            let t = self.trial_for(self.trial_ask);
            self.trial_ask = (self.trial_ask + 1) % self.population.len();
            self.pending.push_back(Some(t.clone()));
            t
        };
        Some(self.dims.as_ref().expect("initialize not called").round(&x))
    }

    fn report_cost(&mut self, cost: f64) {
        match self.pending.pop_front() {
            None => {} // spurious report; ignore
            Some(None) => {
                let i = self.seed_reported;
                self.population[i].1 = cost;
                self.seed_reported += 1;
            }
            Some(Some(trial)) => {
                let i = self.trial_report;
                if cost <= self.population[i].1 {
                    self.population[i] = (trial, cost);
                }
                self.trial_report = (i + 1) % self.population.len();
            }
        }
    }

    /// One generation may be in flight at once — no member gets a second
    /// trial before its previous trial's report lands.
    fn can_propose(&self, outstanding: usize) -> bool {
        outstanding < self.population.len().max(1)
    }

    fn name(&self) -> &'static str {
        "differential-evolution"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::test_util::*;

    #[test]
    fn converges_on_bowl() {
        let mut t = DifferentialEvolution::with_seed(31);
        let (_, c) = drive(
            &mut t,
            SpaceDims::new(vec![128, 128]),
            1500,
            bowl(vec![100, 20]),
        );
        assert!(c <= 4.0, "DE far from optimum: cost {c}");
    }

    #[test]
    fn handles_tiny_spaces() {
        // Space smaller than the population: must still work.
        let mut t = DifferentialEvolution::with_seed(2);
        t.initialize(SpaceDims::new(vec![2, 2]));
        for i in 0..50 {
            let p = t.get_next_point().expect("proposal");
            assert!(p[0] < 2 && p[1] < 2);
            t.report_cost((i % 3) as f64);
        }
    }

    #[test]
    fn one_dimensional() {
        let mut t = DifferentialEvolution::with_seed(5);
        let (_, c) = drive(&mut t, SpaceDims::new(vec![4096]), 1200, |p: &Point| {
            (p[0] as f64 - 3000.0).abs()
        });
        assert!(c <= 30.0, "cost {c}");
    }

    #[test]
    fn deterministic_with_seed() {
        let run = |seed| {
            let mut t = DifferentialEvolution::with_seed(seed);
            t.initialize(SpaceDims::new(vec![64, 64]));
            (0..60)
                .map(|i| {
                    let p = t.get_next_point().unwrap();
                    t.report_cost((i % 7) as f64);
                    p
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn trial_improvement_replaces_member() {
        let mut t = DifferentialEvolution::with_seed(1).population(4);
        t.initialize(SpaceDims::new(vec![100]));
        // Seed the population with cost 10 each.
        for _ in 0..4 {
            let _ = t.get_next_point().unwrap();
            t.report_cost(10.0);
        }
        // First trial with a better cost must replace member 0.
        let trial = t.get_next_point().unwrap();
        t.report_cost(1.0);
        let stored = &t.population[0];
        assert_eq!(stored.1, 1.0);
        assert_eq!(
            t.dims.as_ref().unwrap().round(&stored.0),
            trial,
            "trial vector adopted"
        );
    }

    #[test]
    #[should_panic(expected = "population must be ≥ 4")]
    fn population_floor() {
        let _ = DifferentialEvolution::with_seed(1).population(3);
    }
}
