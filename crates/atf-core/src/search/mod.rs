//! Search techniques and their generic interface.
//!
//! All techniques implement the paper's `search_technique` interface
//! (Section IV): `initialize(search_space)`, `finalize()`,
//! `get_next_config()`, `report_cost(cost)`. ATF repeatedly takes a
//! configuration from the technique, measures it with the cost function, and
//! reports the cost back, until the abort condition fires.
//!
//! Techniques navigate the *valid* space through its per-group coordinates
//! ([`SpaceDims`]): one dimension per parameter group, each a contiguous
//! integer range `0..size`. With a single group this degenerates to the
//! paper's "one integer parameter `TP ∈ [1, S]`" encoding used for the
//! OpenTuner engine (Section IV-C); with several groups the techniques get a
//! multi-dimensional grid for free. `report_cost` receives the scalar
//! projection of the measured cost ([`crate::cost::CostValue::as_scalar`]);
//! failed measurements are reported as [`PENALTY_COST`].

pub mod annealing;
pub mod bandit;
pub mod differential;
pub mod exhaustive;
pub mod genetic;
pub mod mutation;
pub mod nelder_mead;
pub mod pattern;
pub mod pso;
pub mod random;
pub mod torczon;

pub use annealing::SimulatedAnnealing;
pub use bandit::{AucBandit, Ensemble};
pub use differential::DifferentialEvolution;
pub use exhaustive::Exhaustive;
pub use genetic::GeneticAlgorithm;
pub use mutation::GreedyMutation;
pub use nelder_mead::NelderMead;
pub use pattern::PatternSearch;
pub use pso::ParticleSwarm;
pub use random::RandomSearch;
pub use torczon::Torczon;

use rand::Rng;

/// The scalar cost reported to techniques for configurations whose
/// measurement failed (compile error, invalid launch, ...). Finite so that
/// arithmetic acceptance rules (annealing) behave, but far above any real
/// cost.
pub const PENALTY_COST: f64 = 1e30;

/// Coordinates of one configuration: one index per dimension of
/// [`SpaceDims`].
pub type Point = Vec<u64>;

/// The shape of the (valid) search space presented to techniques: the size
/// of each dimension. All sizes are ≥ 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpaceDims {
    sizes: Vec<u64>,
}

impl SpaceDims {
    /// Creates the dimensions from per-dimension sizes.
    ///
    /// # Panics
    /// Panics if any dimension is empty — an empty space cannot be searched.
    pub fn new(sizes: Vec<u64>) -> Self {
        assert!(!sizes.is_empty(), "search space must have ≥ 1 dimension");
        assert!(
            sizes.iter().all(|&s| s > 0),
            "all search-space dimensions must be non-empty"
        );
        SpaceDims { sizes }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.sizes.len()
    }

    /// Size of dimension `d`.
    pub fn size(&self, d: usize) -> u64 {
        self.sizes[d]
    }

    /// All sizes.
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// Total number of points (product of sizes).
    pub fn len(&self) -> u128 {
        self.sizes.iter().map(|&s| s as u128).product()
    }

    /// `true` if the space has exactly one point.
    pub fn is_empty(&self) -> bool {
        false // by construction all dims are non-empty
    }

    /// A uniformly random point.
    pub fn random_point<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        self.sizes.iter().map(|&s| rng.gen_range(0..s)).collect()
    }

    /// Clamps integer coordinates into range.
    pub fn clamp(&self, point: &mut Point) {
        for (c, &s) in point.iter_mut().zip(&self.sizes) {
            *c = (*c).min(s - 1);
        }
    }

    /// Rounds and clamps a continuous point onto the grid (used by the
    /// simplex-based techniques, which work in a continuous relaxation).
    pub fn round(&self, x: &[f64]) -> Point {
        x.iter()
            .zip(&self.sizes)
            .map(|(&v, &s)| {
                let r = v.round();
                if r < 0.0 {
                    0
                } else if r >= s as f64 {
                    s - 1
                } else {
                    r as u64
                }
            })
            .collect()
    }
}

/// The paper's generic `search_technique` interface.
///
/// Contract: after [`SearchTechnique::initialize`], the tuner calls
/// `get_next_point` → (measure) → `report_cost` until the abort condition
/// fires or `get_next_point` returns `None` (space exhausted from the
/// technique's perspective). `finalize` is called once at the end.
///
/// With parallel evaluation several proposals may be *outstanding* (handed
/// out, cost not yet reported) at once. Two guarantees shield techniques
/// from the resulting chaos:
///
/// * the driver never calls `get_next_point` with `k` proposals outstanding
///   unless [`can_propose(k)`](SearchTechnique::can_propose) returns `true`;
/// * costs are always reported **in proposal order** — the `i`-th
///   `report_cost` call belongs to the `i`-th point returned by
///   `get_next_point`, regardless of the order measurements actually
///   finished in.
///
/// The default `can_propose` only allows proposing with nothing
/// outstanding, which reproduces the strict serial alternation — existing
/// third-party techniques keep working unchanged.
pub trait SearchTechnique: Send {
    /// Called once before exploration with the search-space shape.
    fn initialize(&mut self, dims: SpaceDims);

    /// Called once after exploration (free memory, close handles, ...).
    fn finalize(&mut self) {}

    /// The next configuration (as coordinates) to measure, or `None` if the
    /// technique has nothing further to propose.
    fn get_next_point(&mut self) -> Option<Point>;

    /// Reports the scalar cost of the oldest outstanding point (costs
    /// arrive in proposal order; see the trait docs).
    fn report_cost(&mut self, cost: f64);

    /// Whether the technique can propose another point while `outstanding`
    /// earlier proposals still await their cost reports.
    ///
    /// The driver consults this before every `get_next_point` call. The
    /// default (`outstanding == 0`) keeps the serial ask/report
    /// alternation; techniques supporting batched or speculative proposals
    /// override it (e.g. a population technique allows a whole generation
    /// outstanding at once).
    fn can_propose(&self, outstanding: usize) -> bool {
        outstanding == 0
    }

    /// Technique name for logs and experiment records.
    fn name(&self) -> &'static str;
}

impl<T: SearchTechnique + ?Sized> SearchTechnique for Box<T> {
    fn initialize(&mut self, dims: SpaceDims) {
        (**self).initialize(dims)
    }
    fn finalize(&mut self) {
        (**self).finalize()
    }
    fn get_next_point(&mut self) -> Option<Point> {
        (**self).get_next_point()
    }
    fn report_cost(&mut self, cost: f64) {
        (**self).report_cost(cost)
    }
    fn can_propose(&self, outstanding: usize) -> bool {
        (**self).can_propose(outstanding)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;

    /// Drives a technique against a synthetic cost landscape and returns the
    /// best (point, cost) found within `budget` evaluations.
    pub fn drive(
        tech: &mut dyn SearchTechnique,
        dims: SpaceDims,
        budget: usize,
        mut cost: impl FnMut(&Point) -> f64,
    ) -> (Point, f64) {
        tech.initialize(dims.clone());
        let mut best: Option<(Point, f64)> = None;
        for _ in 0..budget {
            let Some(p) = tech.get_next_point() else {
                break;
            };
            for (d, &c) in p.iter().enumerate() {
                assert!(c < dims.size(d), "technique proposed out-of-range point");
            }
            let c = cost(&p);
            tech.report_cost(c);
            if best.as_ref().is_none_or(|(_, bc)| c < *bc) {
                best = Some((p, c));
            }
        }
        tech.finalize();
        best.expect("technique proposed no point")
    }

    /// A bowl-shaped landscape with minimum at `target`.
    pub fn bowl(target: Vec<u64>) -> impl FnMut(&Point) -> f64 {
        move |p: &Point| {
            p.iter()
                .zip(&target)
                .map(|(&a, &b)| {
                    let d = a as f64 - b as f64;
                    d * d
                })
                .sum::<f64>()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn dims_basics() {
        let d = SpaceDims::new(vec![4, 5, 6]);
        assert_eq!(d.dims(), 3);
        assert_eq!(d.len(), 120);
        assert_eq!(d.size(1), 5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_dim_rejected() {
        SpaceDims::new(vec![4, 0]);
    }

    #[test]
    fn random_point_in_range() {
        let d = SpaceDims::new(vec![3, 1, 100]);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            let p = d.random_point(&mut rng);
            assert!(p[0] < 3 && p[1] < 1 && p[2] < 100);
        }
    }

    #[test]
    fn round_clamps() {
        let d = SpaceDims::new(vec![10]);
        assert_eq!(d.round(&[-3.2]), vec![0]);
        assert_eq!(d.round(&[4.4]), vec![4]);
        assert_eq!(d.round(&[4.6]), vec![5]);
        assert_eq!(d.round(&[99.0]), vec![9]);
    }

    #[test]
    fn clamp_point() {
        let d = SpaceDims::new(vec![10, 2]);
        let mut p = vec![50, 1];
        d.clamp(&mut p);
        assert_eq!(p, vec![9, 1]);
    }
}
