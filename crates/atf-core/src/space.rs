//! Search-space generation and indexed access.
//!
//! This module implements the paper's central algorithmic contribution
//! (Sections II, V, VI-A): the space of *valid* configurations is generated
//! by a depth-first walk that fixes parameters one at a time in declaration
//! order and filters each parameter's range *in the context of the partial
//! configuration*. Work is proportional to the number of valid prefixes —
//! not to the size of the unconstrained cross product, which for CLBlast's
//! XgemmDirect at 2¹⁰×2¹⁰ exceeds 10¹⁹ configurations while the valid space
//! is ~10⁷.
//!
//! The walk itself is driven by the [`crate::spacegen`] engine: constraints
//! are *compiled* into per-prefix bounds (operand expressions evaluated once
//! per prefix, divisor enumeration, monotone scan cut-offs) with a sound
//! per-candidate fallback for opaque predicates, and
//! [`SearchSpace::generate_parallel`] chunks each group's leading parameter
//! across a worker pool — parallelism no longer stops at one thread per
//! group, and output is bit-identical to sequential generation at any
//! thread count.
//!
//! Parameter *groups* (Section V) are independent; the full space is their
//! cross product, which is never materialized: [`SearchSpace::get`]
//! decomposes a flat index in the mixed radix of the group sizes in
//! O(#groups). Groups may also be backed lazily
//! ([`crate::spacegen::LazySpace`]) so spaces too large to materialize
//! still support indexed access.

use crate::config::Config;
use crate::param::ParamGroup;
use crate::spacegen::{self, GroupPlan, LazyGroup, LazySpace};
use crate::trace::{NullSink, TraceEvent, TraceSink};
use crate::value::Value;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Errors during search-space generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpaceError {
    /// Generation exceeded the configured limit on materialized
    /// configurations (guards against cross-product explosions).
    TooLarge {
        /// The limit that was exceeded.
        limit: u64,
    },
    /// Generation was cancelled via the cooperative cancellation flag.
    Cancelled,
    /// A count overflowed its integer type — the space is astronomically
    /// large (e.g. several unconstrained `u64`-sized ranges). Structured
    /// rather than a wrap or panic so callers can report the space as
    /// "too large to count" and continue.
    Overflow,
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::TooLarge { limit } => {
                write!(
                    f,
                    "search space exceeds the limit of {limit} configurations"
                )
            }
            SpaceError::Cancelled => write!(f, "search-space generation was cancelled"),
            SpaceError::Overflow => {
                write!(f, "search-space size overflows the counting integer type")
            }
        }
    }
}

impl std::error::Error for SpaceError {}

/// The materialized valid sub-space of one parameter group.
#[derive(Clone)]
pub struct GroupSpace {
    names: Arc<[Arc<str>]>,
    configs: Vec<Box<[Value]>>,
}

impl GroupSpace {
    /// Generates the valid sub-space of `group` with the compiled
    /// constrained-range walk.
    pub fn generate(group: &ParamGroup) -> Self {
        Self::generate_with(group, u64::MAX, None).expect("no limit configured")
    }

    /// Generates with a limit on the number of materialized configurations
    /// and an optional cooperative cancellation flag.
    pub fn generate_with(
        group: &ParamGroup,
        limit: u64,
        cancel: Option<&AtomicBool>,
    ) -> Result<Self, SpaceError> {
        let plan = GroupPlan::compile(group);
        let mut configs = Vec::new();
        let mut partial = Config::new();
        let mut values: Vec<Value> = Vec::with_capacity(group.len());
        plan.walk(
            0,
            &mut partial,
            &mut values,
            &mut |vals| {
                if configs.len() as u64 >= limit {
                    return Err(SpaceError::TooLarge { limit });
                }
                configs.push(vals.to_vec().into_boxed_slice());
                Ok(())
            },
            cancel,
        )?;
        Ok(GroupSpace {
            names: plan.names(),
            configs,
        })
    }

    /// Reference generator: the original per-candidate
    /// predicate-evaluation DFS, kept as the equivalence oracle for the
    /// compiled engine (every constraint is `check`ed per candidate, no
    /// compilation, no fast paths).
    pub fn generate_reference(group: &ParamGroup) -> Self {
        let names: Arc<[Arc<str>]> = group.params().iter().map(|p| p.name_arc()).collect();
        let mut configs = Vec::new();
        let mut partial = Config::new();
        let mut values: Vec<Value> = Vec::with_capacity(group.len());
        dfs(group, 0, &mut partial, &mut values, &mut |vals| {
            configs.push(vals.to_vec().into_boxed_slice());
        });
        GroupSpace { names, configs }
    }

    /// Assembles a group space from raw parts (cache loads, chunked
    /// generation). `configs` must be aligned with `names`.
    pub fn from_parts(names: Arc<[Arc<str>]>, configs: Vec<Box<[Value]>>) -> Self {
        debug_assert!(configs.iter().all(|c| c.len() == names.len()));
        GroupSpace { names, configs }
    }

    /// Counts the valid configurations of `group` without materializing
    /// them, short-cutting unconstrained suffixes to a product of range
    /// sizes. This is what makes exact space-size tables feasible at sizes
    /// where the materialized space would not fit in memory. Returns
    /// [`SpaceError::Overflow`] when the count exceeds `u64`.
    pub fn count(group: &ParamGroup) -> Result<u64, SpaceError> {
        GroupPlan::compile(group).count_from(0, &mut Config::new())
    }

    /// Number of valid configurations in this group.
    pub fn len(&self) -> u64 {
        self.configs.len() as u64
    }

    /// `true` if the group has no valid configuration.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The parameter names of this group, in declaration order.
    pub fn names(&self) -> &[Arc<str>] {
        &self.names
    }

    /// The `i`-th valid configuration's values (aligned with [`Self::names`]).
    pub fn values(&self, i: u64) -> &[Value] {
        &self.configs[i as usize]
    }

    /// Appends the `i`-th valid configuration's entries to `out`.
    pub fn write_config(&self, i: u64, out: &mut Config) {
        for (name, value) in self.names.iter().zip(self.configs[i as usize].iter()) {
            out.push(name.clone(), value.clone());
        }
    }
}

impl fmt::Debug for GroupSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GroupSpace({:?}; {} valid configs)",
            self.names.iter().map(|n| n.as_ref()).collect::<Vec<_>>(),
            self.configs.len()
        )
    }
}

/// The original depth-first walk over constrained ranges: evaluates the
/// full constraint predicate for every candidate value. Retained solely as
/// the reference oracle behind [`GroupSpace::generate_reference`].
fn dfs(
    group: &ParamGroup,
    depth: usize,
    partial: &mut Config,
    values: &mut Vec<Value>,
    emit: &mut impl FnMut(&[Value]),
) {
    if depth == group.len() {
        emit(values);
        return;
    }
    let p = &group.params()[depth];
    for v in p.range().iter() {
        let ok = match p.constraint() {
            Some(c) => c.check(&v, partial),
            None => true,
        };
        if !ok {
            continue;
        }
        partial.push(p.name_arc(), v.clone());
        values.push(v);
        dfs(group, depth + 1, partial, values, emit);
        values.pop();
        partial.pop();
    }
}

/// Generates one group's sub-space, emitting its timed `space_gen` event.
fn timed_group_generate(index: usize, group: &ParamGroup, trace: &dyn TraceSink) -> GroupSpace {
    let started = Instant::now();
    let gs = GroupSpace::generate(group);
    trace.emit(&TraceEvent::space_gen(
        index,
        group.len(),
        gs.len(),
        u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
    ));
    gs
}

/// One group's backing store inside a [`SearchSpace`]: fully materialized
/// configs, or a lazy streaming view with bounded memory.
#[derive(Clone, Debug)]
enum GroupRepr {
    Materialized(GroupSpace),
    Lazy(LazyGroup),
}

impl GroupRepr {
    fn len(&self) -> u64 {
        match self {
            GroupRepr::Materialized(g) => g.len(),
            GroupRepr::Lazy(g) => g.len(),
        }
    }

    fn write_config(&self, i: u64, out: &mut Config) {
        match self {
            GroupRepr::Materialized(g) => g.write_config(i, out),
            GroupRepr::Lazy(g) => g.write_config(i, out),
        }
    }
}

/// The full search space: the (virtual) cross product of the group spaces.
#[derive(Clone, Debug)]
pub struct SearchSpace {
    groups: Vec<GroupRepr>,
    len: u128,
}

impl SearchSpace {
    /// Generates the search space sequentially.
    pub fn generate(groups: &[ParamGroup]) -> Self {
        Self::generate_traced(groups, &NullSink)
    }

    /// [`generate`](Self::generate) with telemetry: one `space_gen` trace
    /// event per parameter group, carrying the group's index, parameter
    /// count, valid-configuration count, and generation time.
    pub fn generate_traced(groups: &[ParamGroup], trace: &dyn TraceSink) -> Self {
        let gs: Vec<_> = groups
            .iter()
            .enumerate()
            .map(|(i, g)| timed_group_generate(i, g, trace))
            .collect();
        Self::from_group_spaces(gs)
    }

    /// Generates the search space in parallel by chunking each group's
    /// leading parameter across a worker pool
    /// ([`crate::spacegen::generate_groups_chunked`]). Output is
    /// bit-identical to [`Self::generate`] at any thread count.
    pub fn generate_parallel(groups: &[ParamGroup]) -> Self {
        Self::generate_parallel_traced(groups, &NullSink)
    }

    /// [`generate_parallel`](Self::generate_parallel) with telemetry: one
    /// `space_chunk` event per chunk (completion order) and one
    /// `space_gen` event per group.
    pub fn generate_parallel_traced(groups: &[ParamGroup], trace: &dyn TraceSink) -> Self {
        Self::from_group_spaces(spacegen::generate_groups_chunked(
            groups,
            spacegen::default_threads(),
            trace,
        ))
    }

    /// Generates with a per-group limit on materialized configurations.
    pub fn generate_with_limit(groups: &[ParamGroup], limit: u64) -> Result<Self, SpaceError> {
        let gs = groups
            .iter()
            .map(|g| GroupSpace::generate_with(g, limit, None))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::from_group_spaces(gs))
    }

    /// Assembles a search space from already-generated group spaces.
    pub fn from_group_spaces(groups: Vec<GroupSpace>) -> Self {
        let len = groups.iter().map(|g| g.len() as u128).product::<u128>();
        let len = if groups.is_empty() { 0 } else { len };
        SearchSpace {
            groups: groups.into_iter().map(GroupRepr::Materialized).collect(),
            len,
        }
    }

    /// Counts the valid configurations without materializing anything.
    /// [`SpaceError::Overflow`] signals a space too large to count in
    /// `u128` (or a group too large for `u64`).
    pub fn count(groups: &[ParamGroup]) -> Result<u128, SpaceError> {
        if groups.is_empty() {
            return Ok(0);
        }
        let mut total = 1u128;
        for g in groups {
            total = total
                .checked_mul(GroupSpace::count(g)? as u128)
                .ok_or(SpaceError::Overflow)?;
        }
        Ok(total)
    }

    /// Total number of valid configurations (`S` in the paper).
    pub fn len(&self) -> u128 {
        self.len
    }

    /// `true` if the space contains no valid configuration.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The per-group sizes — the dimensions search techniques navigate.
    pub fn dims(&self) -> Vec<u64> {
        self.groups.iter().map(|g| g.len()).collect()
    }

    /// The configuration at per-group coordinates `coords`
    /// (`coords.len() == self.dims().len()`).
    pub fn get_by_coords(&self, coords: &[u64]) -> Config {
        assert_eq!(coords.len(), self.groups.len(), "coordinate arity mismatch");
        let mut cfg = Config::new();
        for (g, &i) in self.groups.iter().zip(coords) {
            g.write_config(i, &mut cfg);
        }
        cfg
    }

    /// The configuration at flat index `index` (`0 <= index < len`), by
    /// mixed-radix decomposition over the group sizes — O(#groups), no
    /// materialized cross product. This is exactly the indexing that lets
    /// the OpenTuner-style engine treat the valid space as one integer
    /// parameter `TP ∈ [1, S]` (paper, Section IV-C).
    pub fn get(&self, index: u128) -> Config {
        self.get_by_coords(&self.decompose(index))
    }

    /// Decomposes a flat index into per-group coordinates.
    pub fn decompose(&self, mut index: u128) -> Vec<u64> {
        assert!(
            index < self.len,
            "index {index} out of bounds ({})",
            self.len
        );
        let mut coords = vec![0u64; self.groups.len()];
        for (c, g) in coords.iter_mut().zip(&self.groups).rev() {
            let n = g.len() as u128;
            *c = (index % n) as u64;
            index /= n;
        }
        coords
    }

    /// Recomposes per-group coordinates into a flat index (inverse of
    /// [`Self::decompose`]).
    pub fn compose(&self, coords: &[u64]) -> u128 {
        assert_eq!(coords.len(), self.groups.len(), "coordinate arity mismatch");
        let mut index = 0u128;
        for (g, &c) in self.groups.iter().zip(coords) {
            debug_assert!(c < g.len());
            index = index * g.len() as u128 + c as u128;
        }
        index
    }

    /// Iterates over all configurations in index order.
    pub fn iter(&self) -> impl Iterator<Item = Config> + '_ {
        (0..self.len).map(|i| self.get(i))
    }
}

/// A lazily enumerated space plugs straight in as a session's search
/// space — indexed access streams blocks on demand instead of touching a
/// materialized table.
impl From<LazySpace> for SearchSpace {
    fn from(lazy: LazySpace) -> Self {
        let len = lazy.len();
        SearchSpace {
            groups: lazy
                .groups()
                .iter()
                .map(|g| GroupRepr::Lazy(g.clone()))
                .collect(),
            len,
        }
    }
}

/// Reference generator: enumerate the **unconstrained cross product** and
/// filter complete configurations afterwards — the CLTune strategy the paper
/// measures against (Section VI-A). Exposed for tests (equivalence oracle)
/// and for the baseline/bench crates.
///
/// Returns `Err(TooLarge)` once more than `limit` *candidate* configurations
/// have been enumerated — with interdependent parameters this blows up
/// combinatorially, which is the paper's point.
pub fn cross_product_filter(
    groups: &[ParamGroup],
    limit: u64,
    cancel: Option<&AtomicBool>,
) -> Result<Vec<Config>, SpaceError> {
    // Flatten all parameters; candidate = one value per parameter.
    let params: Vec<_> = groups.iter().flat_map(|g| g.params().iter()).collect();
    let mut out = Vec::new();
    let mut idx = vec![0u64; params.len()];
    if params.iter().any(|p| p.range().is_empty()) {
        return Ok(out);
    }
    let mut enumerated = 0u64;
    loop {
        if let Some(flag) = cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(SpaceError::Cancelled);
            }
        }
        enumerated += 1;
        if enumerated > limit {
            return Err(SpaceError::TooLarge { limit });
        }
        // Build the candidate configuration.
        let mut cfg = Config::new();
        for (p, &i) in params.iter().zip(&idx) {
            cfg.push(p.name_arc(), p.range().get(i));
        }
        // Post-hoc filtering: every constraint must hold over the *complete*
        // configuration (CLTune's boolean search-space filters).
        let valid = params.iter().all(|p| match p.constraint() {
            Some(c) => c.check(&cfg[p.name()], &cfg),
            None => true,
        });
        if valid {
            out.push(cfg);
        }
        // Odometer increment.
        let mut d = params.len();
        loop {
            if d == 0 {
                return Ok(out);
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < params[d].range().len() {
                break;
            }
            idx[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{divides, less_than};
    use crate::expr::{cst, param as p};
    use crate::param::{tp, tp_c};
    use crate::range::Range;

    fn saxpy_groups(n: u64) -> Vec<ParamGroup> {
        vec![ParamGroup::new(vec![
            tp_c("WPT", Range::interval(1, n), divides(cst(n))),
            tp_c("LS", Range::interval(1, n), divides(cst(n) / p("WPT"))),
        ])]
    }

    #[test]
    fn saxpy_space_small() {
        // N = 8: WPT ∈ {1,2,4,8}; LS divides 8/WPT.
        let space = SearchSpace::generate(&saxpy_groups(8));
        // WPT=1: LS ∈ div(8) = 4; WPT=2: div(4) = 3; WPT=4: div(2) = 2; WPT=8: div(1) = 1.
        assert_eq!(space.len(), 4 + 3 + 2 + 1);
        for cfg in space.iter() {
            let wpt = cfg.get_u64("WPT");
            let ls = cfg.get_u64("LS");
            assert_eq!(8 % wpt, 0);
            assert_eq!((8 / wpt) % ls, 0);
        }
    }

    #[test]
    fn matches_cross_product_filter_oracle() {
        let groups = saxpy_groups(12);
        let fast = SearchSpace::generate(&groups);
        let slow = cross_product_filter(&groups, u64::MAX, None).unwrap();
        assert_eq!(fast.len(), slow.len() as u128);
        let fast_set: Vec<_> = fast.iter().collect();
        for cfg in &slow {
            assert!(fast_set.contains(cfg), "missing {cfg:?}");
        }
    }

    #[test]
    fn compiled_matches_reference_generator() {
        let groups = saxpy_groups(24);
        for g in &groups {
            let compiled = GroupSpace::generate(g);
            let reference = GroupSpace::generate_reference(g);
            assert_eq!(compiled.len(), reference.len());
            for i in 0..compiled.len() {
                assert_eq!(compiled.values(i), reference.values(i), "config {i}");
            }
        }
    }

    #[test]
    fn count_equals_generate() {
        let groups = saxpy_groups(24);
        assert_eq!(
            SearchSpace::count(&groups).unwrap(),
            SearchSpace::generate(&groups).len()
        );
    }

    #[test]
    fn count_overflow_is_structured_and_fast() {
        // Four unconstrained u64-sized ranges: ~2^256 configurations. The
        // unconstrained-suffix shortcut must detect the overflow without
        // enumerating anything.
        let g = ParamGroup::new(vec![
            tp("A", Range::interval(0, u64::MAX - 1)),
            tp("B", Range::interval(0, u64::MAX - 1)),
            tp("C", Range::interval(0, u64::MAX - 1)),
            tp("D", Range::interval(0, u64::MAX - 1)),
        ]);
        let started = std::time::Instant::now();
        assert_eq!(GroupSpace::count(&g), Err(SpaceError::Overflow));
        assert_eq!(SearchSpace::count(&[g]), Err(SpaceError::Overflow));
        assert!(
            started.elapsed().as_secs() < 5,
            "overflow must be detected, not enumerated"
        );
    }

    #[test]
    fn huge_unconstrained_count_uses_the_shortcut() {
        // 2^40 · 2^20 = 2^60 configs: counts instantly via the product
        // shortcut (enumeration would take years).
        let g = ParamGroup::new(vec![
            tp("A", Range::interval(1, 1 << 40)),
            tp("B", Range::interval(1, 1 << 20)),
        ]);
        assert_eq!(GroupSpace::count(&g).unwrap(), 1u64 << 60);
    }

    #[test]
    fn fig1_example_two_groups() {
        // Fig. 1 of the paper: tp1..tp4, each range {1,2}; tp2 divides tp1,
        // tp4 divides tp3; {tp1,tp2} and {tp3,tp4} are independent groups.
        let g1 = ParamGroup::new(vec![
            tp("tp1", Range::set([1u64, 2])),
            tp_c("tp2", Range::set([1u64, 2]), divides(p("tp1"))),
        ]);
        let g2 = ParamGroup::new(vec![
            tp("tp3", Range::set([1u64, 2])),
            tp_c("tp4", Range::set([1u64, 2]), divides(p("tp3"))),
        ]);
        let space = SearchSpace::generate_parallel(&[g1, g2]);
        // per group: (1,1), (2,1), (2,2) → 3 valid; total 3 × 3 = 9.
        assert_eq!(space.dims(), vec![3, 3]);
        assert_eq!(space.len(), 9);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g1 = ParamGroup::new(vec![
            tp("A", Range::interval(1, 16)),
            tp_c("B", Range::interval(1, 16), divides(p("A"))),
        ]);
        let g2 = ParamGroup::new(vec![tp_c(
            "C",
            Range::interval(1, 32),
            less_than(cst(10u64)),
        )]);
        let seq = SearchSpace::generate(&[g1.clone(), g2.clone()]);
        let par = SearchSpace::generate_parallel(&[g1, g2]);
        assert_eq!(seq.len(), par.len());
        for i in 0..seq.len() {
            assert_eq!(seq.get(i), par.get(i));
        }
    }

    #[test]
    fn index_decompose_compose_roundtrip() {
        let space = SearchSpace::generate(&saxpy_groups(16));
        for i in 0..space.len() {
            let coords = space.decompose(i);
            assert_eq!(space.compose(&coords), i);
            assert_eq!(space.get(i), space.get_by_coords(&coords));
        }
    }

    #[test]
    fn lazy_backed_search_space() {
        let groups = saxpy_groups(32);
        let eager = SearchSpace::generate(&groups);
        let lazy: SearchSpace = LazySpace::generate(&groups).unwrap().into();
        assert_eq!(lazy.len(), eager.len());
        assert_eq!(lazy.dims(), eager.dims());
        for i in 0..lazy.len() {
            assert_eq!(lazy.get(i), eager.get(i));
        }
    }

    #[test]
    fn empty_space_when_unsatisfiable() {
        let g = ParamGroup::new(vec![tp_c(
            "X",
            Range::interval(1, 10),
            less_than(cst(0u64)),
        )]);
        let space = SearchSpace::generate(&[g]);
        assert!(space.is_empty());
        assert_eq!(space.len(), 0);
    }

    #[test]
    fn generation_limit_enforced() {
        let g = ParamGroup::new(vec![tp("X", Range::interval(1, 1000))]);
        let err = SearchSpace::generate_with_limit(&[g], 10).unwrap_err();
        assert_eq!(err, SpaceError::TooLarge { limit: 10 });
    }

    #[test]
    fn cross_product_filter_limit() {
        let groups = saxpy_groups(64);
        // unconstrained product is 64*64 = 4096 candidates
        let err = cross_product_filter(&groups, 100, None).unwrap_err();
        assert_eq!(err, SpaceError::TooLarge { limit: 100 });
    }

    #[test]
    fn cancel_flag_stops_generation() {
        let flag = AtomicBool::new(true);
        let g = ParamGroup::new(vec![
            tp("A", Range::interval(1, 100)),
            tp("B", Range::interval(1, 100)),
        ]);
        let err = GroupSpace::generate_with(&g, u64::MAX, Some(&flag)).unwrap_err();
        assert_eq!(err, SpaceError::Cancelled);
        let err = cross_product_filter(&[g], u64::MAX, Some(&flag)).unwrap_err();
        assert_eq!(err, SpaceError::Cancelled);
    }

    #[test]
    fn constrained_generation_beats_cross_product_asymptotically() {
        // For divisor-chain constraints the DFS touches ~Σ d(k) prefixes,
        // the cross product touches N². Just verify both agree and that the
        // valid fraction is small.
        let n = 48;
        let groups = saxpy_groups(n);
        let valid = SearchSpace::count(&groups).unwrap();
        let unconstrained: u128 = groups.iter().map(|g| g.unconstrained_size()).product();
        assert!(valid * 20 < unconstrained, "{valid} vs {unconstrained}");
    }

    #[test]
    fn get_by_coords_order_matches_declaration() {
        let space = SearchSpace::generate(&saxpy_groups(8));
        let cfg = space.get(0);
        let names: Vec<_> = cfg.names().collect();
        assert_eq!(names, vec!["WPT", "LS"]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn flat_index_out_of_bounds() {
        let space = SearchSpace::generate(&saxpy_groups(4));
        space.get(space.len());
    }
}
