//! # baselines — reimplementations of the paper's comparators
//!
//! The ATF paper (Section VI) compares against CLTune 2.6.0 and OpenTuner
//! 0.7.0. This crate reimplements the algorithmic behaviour of both so the
//! comparison experiments run on the same simulator:
//!
//! * [`cltune`] — `size_t`-only parameters, boolean constraints filtered
//!   over the **full cross product** (whose generation blows up; VI-A),
//!   `DivGlobalSize`/`MulLocalSize`-style launch modification, full or
//!   annealing search;
//! * [`opentuner`] — unconstrained spaces searched by an AUC-bandit ensemble
//!   with **penalty costs** for invalid configurations (VI-B).

pub mod cltune;
pub mod opentuner;

pub use cltune::{CltuneGenError, CltuneResult, CltuneSearch, CltuneTuner};
pub use opentuner::{OpenTunerResult, OpenTunerStyleTuner, DEFAULT_PENALTY};
