//! An OpenTuner-like tuner (Ansel et al., PACT 2014) — the paper's second
//! comparator (Section VI-B). Generic over the application domain, driven by
//! an AUC-bandit ensemble of search techniques, but **without support for
//! parameter interdependencies**: the space is the raw cross product of the
//! declared ranges, and invalid configurations are only discovered when the
//! cost function fails — handled by reporting a user-defined *penalty value*
//! (the community workaround the paper cites \[3\]).

use atf_core::config::Config;
use atf_core::cost::{CostFunction, CostValue};
use atf_core::search::{Ensemble, SearchTechnique, SpaceDims};
use atf_core::value::Value;
use std::time::{Duration, Instant};

/// The default penalty scalar reported for failed configurations.
pub const DEFAULT_PENALTY: f64 = 1e30;

/// One tuning parameter: name and explicit value list (OpenTuner's
/// `EnumParameter`/`IntegerParameter` in list form).
pub type OtParam = (String, Vec<Value>);

/// Result of an OpenTuner-style run.
#[derive(Clone, Debug)]
pub struct OpenTunerResult {
    /// Best *valid* configuration, if any was found at all — the paper
    /// observes OpenTuner finding none within 10 000 evaluations on
    /// XgemmDirect.
    pub best: Option<(Config, f64)>,
    /// Total evaluated configurations.
    pub evaluations: u64,
    /// How many evaluations were valid (measured successfully).
    pub valid_evaluations: u64,
    /// Size of the unconstrained space that was searched.
    pub space_size: u128,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl OpenTunerResult {
    /// Fraction of evaluations that produced a valid measurement.
    pub fn valid_fraction(&self) -> f64 {
        if self.evaluations == 0 {
            0.0
        } else {
            self.valid_evaluations as f64 / self.evaluations as f64
        }
    }
}

/// The OpenTuner-style tuner.
pub struct OpenTunerStyleTuner {
    params: Vec<OtParam>,
    penalty: f64,
    seed: u64,
}

impl OpenTunerStyleTuner {
    /// A tuner over the given unconstrained parameters.
    pub fn new(params: Vec<OtParam>) -> Self {
        assert!(!params.is_empty(), "no tuning parameters declared");
        assert!(
            params.iter().all(|(_, r)| !r.is_empty()),
            "every parameter needs a non-empty range"
        );
        OpenTunerStyleTuner {
            params,
            penalty: DEFAULT_PENALTY,
            seed: 0x07e2,
        }
    }

    /// Convenience: integer parameters from `(name, Vec<u64>)` lists, with
    /// names starting in `PAD` treated as booleans (the XgemmDirect flags).
    pub fn from_u64_ranges(ranges: Vec<(String, Vec<u64>)>) -> Self {
        let params = ranges
            .into_iter()
            .map(|(name, r)| {
                let vals = r
                    .into_iter()
                    .map(|v| {
                        if name.starts_with("PAD") {
                            Value::Bool(v != 0)
                        } else {
                            Value::UInt(v)
                        }
                    })
                    .collect();
                (name, vals)
            })
            .collect();
        Self::new(params)
    }

    /// Sets the penalty scalar reported to the search for failed
    /// configurations.
    pub fn penalty(mut self, penalty: f64) -> Self {
        self.penalty = penalty;
        self
    }

    /// Deterministic seed for the search ensemble.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Size of the unconstrained search space.
    pub fn space_size(&self) -> u128 {
        self.params.iter().map(|(_, r)| r.len() as u128).product()
    }

    fn config_at(&self, point: &[u64]) -> Config {
        Config::from_pairs(
            self.params
                .iter()
                .zip(point)
                .map(|((name, range), &i)| (name.as_str(), range[i as usize].clone())),
        )
    }

    /// Runs the tuner for `budget` evaluations.
    pub fn tune<CF>(&mut self, budget: u64, cost_function: &mut CF) -> OpenTunerResult
    where
        CF: CostFunction,
        CF::Cost: CostValue,
    {
        let start = Instant::now();
        let dims = SpaceDims::new(self.params.iter().map(|(_, r)| r.len() as u64).collect());
        let mut search = Ensemble::opentuner_default(self.seed);
        search.initialize(dims);

        let mut best: Option<(Config, f64)> = None;
        let mut evaluations = 0u64;
        let mut valid = 0u64;
        while evaluations < budget {
            let Some(point) = search.get_next_point() else {
                break;
            };
            let cfg = self.config_at(&point);
            evaluations += 1;
            match cost_function.evaluate(&cfg) {
                Ok(cost) => {
                    valid += 1;
                    let scalar = cost.as_scalar();
                    search.report_cost(scalar);
                    if best.as_ref().is_none_or(|(_, b)| scalar < *b) {
                        best = Some((cfg, scalar));
                    }
                }
                Err(_) => {
                    // The workaround from the paper's reference [3]: report
                    // a penalty value for configurations whose constraints
                    // fail.
                    search.report_cost(self.penalty);
                }
            }
        }
        search.finalize();
        OpenTunerResult {
            best,
            evaluations,
            valid_evaluations: valid,
            space_size: self.space_size(),
            elapsed: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atf_core::cost::{cost_fn, try_cost_fn, CostError};

    fn int_params(names: &[&str], n: u64) -> Vec<(String, Vec<u64>)> {
        names
            .iter()
            .map(|s| (s.to_string(), (1..=n).collect()))
            .collect()
    }

    #[test]
    fn finds_optimum_on_unconstrained_space() {
        let mut t = OpenTunerStyleTuner::from_u64_ranges(int_params(&["A", "B"], 32)).seed(3);
        let mut cf = cost_fn(|c: &Config| {
            (c.get_u64("A") as f64 - 20.0).powi(2) + (c.get_u64("B") as f64 - 5.0).powi(2)
        });
        let r = t.tune(800, &mut cf);
        let (cfg, cost) = r.best.expect("valid space");
        assert!(cost <= 4.0, "best {cfg:?} cost {cost}");
        assert_eq!(r.evaluations, 800);
        assert_eq!(r.valid_evaluations, 800);
    }

    #[test]
    fn penalty_mode_survives_sparse_validity() {
        // Valid only when B divides A — ~3% of the space. The tuner must
        // still find a decent valid configuration via penalties.
        let mut t = OpenTunerStyleTuner::from_u64_ranges(int_params(&["A", "B"], 64)).seed(11);
        let mut cf = try_cost_fn(|c: &Config| {
            let (a, b) = (c.get_u64("A"), c.get_u64("B"));
            if a % b != 0 {
                return Err(CostError::InvalidConfiguration("B ∤ A".into()));
            }
            Ok((a / b) as f64)
        });
        let r = t.tune(1500, &mut cf);
        assert!(r.valid_evaluations > 0);
        assert!(r.valid_fraction() < 0.9); // plenty of penalties happened
        let (_, cost) = r.best.expect("found at least one valid config");
        assert!(cost <= 4.0, "cost {cost}");
    }

    #[test]
    fn hopeless_validity_returns_none() {
        // Nothing is ever valid: mirror the paper's XgemmDirect observation.
        let mut t = OpenTunerStyleTuner::from_u64_ranges(int_params(&["A"], 1000)).seed(2);
        let mut cf = try_cost_fn(|_: &Config| -> Result<f64, CostError> {
            Err(CostError::InvalidConfiguration("never valid".into()))
        });
        let r = t.tune(500, &mut cf);
        assert!(r.best.is_none());
        assert_eq!(r.valid_evaluations, 0);
        assert_eq!(r.evaluations, 500);
        assert_eq!(r.valid_fraction(), 0.0);
    }

    #[test]
    fn boolean_pad_parameters() {
        let mut t = OpenTunerStyleTuner::from_u64_ranges(vec![
            ("PADA".to_string(), vec![0, 1]),
            ("X".to_string(), vec![1, 2, 3]),
        ]);
        let mut cf = cost_fn(|c: &Config| {
            // Boolean decode must work.
            let pad = c.get_bool("PADA");
            c.get_u64("X") as f64 + if pad { 0.0 } else { 10.0 }
        });
        let r = t.tune(60, &mut cf);
        let (cfg, cost) = r.best.unwrap();
        assert!(cfg.get_bool("PADA"));
        assert_eq!(cost, 1.0);
    }

    #[test]
    fn space_size_is_product() {
        let t = OpenTunerStyleTuner::from_u64_ranges(int_params(&["A", "B", "C"], 10));
        assert_eq!(t.space_size(), 1000);
    }

    #[test]
    fn deterministic_with_seed() {
        let run = |seed| {
            let mut t =
                OpenTunerStyleTuner::from_u64_ranges(int_params(&["A", "B"], 16)).seed(seed);
            let mut cf = cost_fn(|c: &Config| c.get_u64("A") as f64 * c.get_u64("B") as f64);
            let r = t.tune(100, &mut cf);
            r.best.map(|(c, cost)| (format!("{c:?}"), cost))
        };
        assert_eq!(run(5), run(5));
    }
}
