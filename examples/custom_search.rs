//! Extending ATF with a user-defined search technique (paper, Section IV:
//! "Further search techniques can be added to ATF by implementing the
//! `search_technique` interface").
//!
//! Implements a simple tabu-flavoured local search: hill-climb from the best
//! known point, remembering recently visited points and refusing to revisit
//! them, with random restarts when the neighbourhood is exhausted.
//!
//! Run with: `cargo run --release --example custom_search`

use atf_core::expr::{cst, param};
use atf_core::search::Point;
use atf_repro::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

/// A tabu local search implementing the `search_technique` interface.
struct TabuSearch {
    rng: ChaCha8Rng,
    dims: Option<SpaceDims>,
    best: Option<(Point, f64)>,
    pending: Option<Point>,
    visited: HashSet<Point>,
    tabu_capacity: usize,
}

impl TabuSearch {
    fn new(seed: u64, tabu_capacity: usize) -> Self {
        TabuSearch {
            rng: ChaCha8Rng::seed_from_u64(seed),
            dims: None,
            best: None,
            pending: None,
            visited: HashSet::new(),
            tabu_capacity,
        }
    }

    /// A not-recently-visited neighbour of `p` (±1..±4 in one dimension),
    /// or a random point when the local neighbourhood is tabu.
    fn fresh_neighbour(&mut self, p: &Point) -> Point {
        let dims = self.dims.clone().expect("initialized");
        for _ in 0..32 {
            let mut q = p.clone();
            let d = self.rng.gen_range(0..dims.dims());
            let size = dims.size(d);
            if size == 1 {
                continue;
            }
            let step = self.rng.gen_range(1..=4.min(size - 1));
            q[d] = if self.rng.gen_bool(0.5) {
                (q[d] + step) % size
            } else {
                (q[d] + size - step) % size
            };
            if !self.visited.contains(&q) {
                return q;
            }
        }
        dims.random_point(&mut self.rng) // restart
    }
}

impl SearchTechnique for TabuSearch {
    fn initialize(&mut self, dims: SpaceDims) {
        self.dims = Some(dims);
        self.best = None;
        self.pending = None;
        self.visited.clear();
    }

    fn get_next_point(&mut self) -> Option<Point> {
        let p = match &self.best {
            None => {
                let dims = self.dims.clone().expect("initialize not called");
                dims.random_point(&mut self.rng)
            }
            Some((b, _)) => {
                let b = b.clone();
                self.fresh_neighbour(&b)
            }
        };
        if self.visited.len() >= self.tabu_capacity {
            self.visited.clear(); // cheap aging policy
        }
        self.visited.insert(p.clone());
        self.pending = Some(p.clone());
        Some(p)
    }

    fn report_cost(&mut self, cost: f64) {
        if let Some(p) = self.pending.take() {
            if self.best.as_ref().is_none_or(|(_, b)| cost < *b) {
                self.best = Some((p, cost));
            }
        }
    }

    fn name(&self) -> &'static str {
        "tabu-local-search"
    }
}

fn main() {
    let n: u64 = 1 << 16;
    let params = vec![ParamGroup::new(vec![
        tp_c("WPT", Range::interval(1, n), divides(cst(n))),
        tp_c("LS", Range::interval(1, n), divides(cst(n) / param("WPT"))),
    ])];

    // A synthetic landscape with the optimum at WPT=8, LS=128.
    let mut cf = cost_fn(|c: &Config| {
        let wpt = c.get_u64("WPT") as f64;
        let ls = c.get_u64("LS") as f64;
        (wpt.log2() - 3.0).powi(2) + (ls.log2() - 7.0).powi(2) + 1.0
    });

    let result = Tuner::new()
        .technique(TabuSearch::new(123, 512))
        .abort_condition(abort::evaluations(600))
        .tune(&params, &mut cf)
        .expect("space non-empty");

    println!(
        "custom technique performed {} evaluations over a space of {} configurations",
        result.evaluations, result.space_size
    );
    println!(
        "best: WPT = {}, LS = {} (cost {:.3}; the optimum is WPT=8, LS=128 at cost 1.0)",
        result.best_config.get_u64("WPT"),
        result.best_config.get_u64("LS"),
        result.best_cost
    );
    assert!(result.best_cost < 3.0, "tabu search should get close");
}
