//! Quickstart: the paper's Listing 2 — auto-tuning the CLBlast saxpy kernel.
//!
//! Tunes `WPT` (work-per-thread) and `LS` (local size) of the saxpy kernel
//! on the simulated Tesla K20c, exactly following the three ATF steps:
//! 1. describe the search space with (interdependent) tuning parameters,
//! 2. use the pre-implemented OpenCL cost function,
//! 3. explore with simulated annealing under an abort condition.
//!
//! Run with: `cargo run --release --example quickstart`

use atf_core::expr::{cst, param};
use atf_ocl::{buffer_random_f32, scalar, scalar_random_f32};
use atf_repro::prelude::*;
use clblast::SaxpyKernel;

fn main() {
    // The fixed, user-defined input size (Listing 2, line 4).
    let n: u64 = 1 << 22;

    // Step 1: generate the search space.
    //   WPT ∈ [1, N] divides N;  LS ∈ [1, N] divides N / WPT.
    let saxpy_params = vec![ParamGroup::new(vec![
        tp_c("WPT", Range::interval(1, n), divides(cst(n))),
        tp_c("LS", Range::interval(1, n), divides(cst(n) / param("WPT"))),
    ])];

    // Step 2: the pre-implemented OpenCL cost function (Listing 2, 15-24):
    // device by name, random inputs uploaded once, global/local size as
    // arithmetic expressions over tuning parameters.
    let mut cf_saxpy = atf_ocl::ocl("NVIDIA", "Tesla K20c", SaxpyKernel)
        .expect("simulated Tesla K20c present")
        .arg(scalar(ocl_sim::Scalar::U64(n)))
        .arg(scalar_random_f32())
        .arg(buffer_random_f32(n as usize))
        .arg(buffer_random_f32(n as usize))
        .global_size([cst(n) / param("WPT")])
        .local_size([param("LS")])
        .build();

    // Step 3: explore the search space (simulated annealing; stop after
    // 1000 tested configurations — the simulated analogue of the paper's
    // 10-minute duration condition).
    let result = Tuner::new()
        .technique(SimulatedAnnealing::with_seed(42))
        .abort_condition(abort::evaluations(1000))
        .tune(&saxpy_params, &mut cf_saxpy)
        .expect("saxpy space is non-empty");

    println!(
        "searched space of {} valid configurations",
        result.space_size
    );
    println!(
        "evaluated {} configurations ({} valid, {} rejected by the device)",
        result.evaluations, result.valid_evaluations, result.failed_evaluations
    );
    println!(
        "best configuration: WPT = {}, LS = {}",
        result.best_config.get_u64("WPT"),
        result.best_config.get_u64("LS")
    );
    println!("simulated kernel runtime: {:.3} ms", result.best_cost / 1e6);

    // Show the improvement trajectory.
    println!("\nimprovement history:");
    for imp in &result.improvements {
        println!(
            "  eval {:>5}: {:.3} ms",
            imp.evaluation,
            imp.scalar_cost / 1e6
        );
    }
}
