//! The generic cost function (paper, Section II, Step 2): auto-tuning a
//! program written in an *arbitrary language* — here a POSIX shell script —
//! via user-provided compile/run scripts and a cost log file.
//!
//! The "program" computes a cost landscape over two parameters `BLOCK` and
//! `UNROLL` and writes `runtime,energy` (comma-separated, multi-objective)
//! to the log file; ATF minimizes lexicographically.
//!
//! Run with: `cargo run --release --example generic_process`

use atf_core::expr::param;
use atf_repro::prelude::*;
use std::io::Write;
use std::path::PathBuf;

fn write_executable(path: &PathBuf, body: &str) {
    let mut f = std::fs::File::create(path).expect("create script");
    writeln!(f, "#!/bin/sh\n{body}").expect("write script");
    #[cfg(unix)]
    {
        use std::os::unix::fs::PermissionsExt;
        std::fs::set_permissions(path, std::fs::Permissions::from_mode(0o755))
            .expect("chmod script");
    }
}

fn main() {
    let dir = std::env::temp_dir().join(format!("atf-generic-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let log = dir.join("cost.log");

    // The tunable "program": pretends BLOCK=48 / UNROLL=4 is optimal.
    // Tuning parameters arrive as environment variables ATF_TP_<NAME>.
    let source = dir.join("program.sh");
    write_executable(
        &source,
        &format!(
            r#"B=$ATF_TP_BLOCK
U=$ATF_TP_UNROLL
DB=$((B - 48)); [ $DB -lt 0 ] && DB=$((-DB))
DU=$((U - 4));  [ $DU -lt 0 ] && DU=$((-DU))
RUNTIME=$((100 + DB * 3 + DU * 25))
ENERGY=$((RUNTIME * (50 + U)))
echo "$RUNTIME,$ENERGY" > {log}"#,
            log = log.display()
        ),
    );

    // "Compile" script: a syntax check stands in for a compiler invocation.
    let compile = dir.join("compile.sh");
    write_executable(&compile, r#"sh -n "$ATF_SOURCE""#);

    // Run script: executes the program (which writes the cost log).
    let run = dir.join("run.sh");
    write_executable(&run, r#"sh "$ATF_SOURCE""#);

    let mut cf = ProcessCostFunction::new(&source, &run)
        .compile_script(&compile)
        .log_file(&log);

    // BLOCK must be a multiple of UNROLL — an interdependency a generic
    // tuner without constraints could not express.
    let params = vec![ParamGroup::new(vec![
        tp("UNROLL", Range::set([1u64, 2, 4, 8])),
        tp_c(
            "BLOCK",
            Range::interval(8, 96),
            is_multiple_of(param("UNROLL")),
        ),
    ])];

    let result = Tuner::new()
        .technique(Exhaustive::new())
        .tune(&params, &mut cf)
        .expect("space non-empty");

    println!(
        "space: {} valid configurations; evaluated {} (each = compile + run of the external program)",
        result.space_size, result.evaluations
    );
    println!(
        "best: BLOCK = {}, UNROLL = {}",
        result.best_config.get_u64("BLOCK"),
        result.best_config.get_u64("UNROLL")
    );
    println!(
        "cost (runtime, energy) = {:?} — expect [100.0, 5400.0] at BLOCK=48, UNROLL=4",
        result.best_cost
    );
    assert_eq!(result.best_config.get_u64("BLOCK"), 48);
    assert_eq!(result.best_config.get_u64("UNROLL"), 4);

    std::fs::remove_dir_all(&dir).ok();
}
