//! Tuning CLBlast's XgemmDirect for the Caffe deep-learning matrix sizes
//! (the paper's Section VI workload), on both simulated devices.
//!
//! For each input size, tunes with ATF (ensemble search over the valid
//! space) and reports the speedup over CLBlast's compiled-in default
//! configuration.
//!
//! Run with: `cargo run --release --example gemm_caffe`

use atf_core::expr::{cst, param};
use atf_ocl::{buffer_random_f32, scalar};
use atf_repro::prelude::*;
use clblast::{caffe, XgemmDirectKernel};
use ocl_sim::{DeviceModel, Scalar};

/// Builds the XgemmDirect cost function for one device and matrix shape,
/// with CLBlast's padded launch geometry expressed as ATF arithmetic:
/// `global = ceil(size/WGD) * {M,N}DIMCD`, `local = ({M,N}DIMCD)`.
fn gemm_cost_function(device: DeviceModel, m: u64, n: u64, k: u64) -> atf_ocl::OclCostFunction {
    atf_ocl::ocl_on(device, XgemmDirectKernel)
        .arg(scalar(Scalar::U64(m)))
        .arg(scalar(Scalar::U64(n)))
        .arg(scalar(Scalar::U64(k)))
        .arg(scalar(1.0f32)) // alpha
        .arg(scalar(0.0f32)) // beta
        .arg(buffer_random_f32((m * k) as usize))
        .arg(buffer_random_f32((k * n) as usize))
        .arg(buffer_random_f32((m * n) as usize))
        .global_size([
            cst(m).ceil_div(param("WGD")) * param("MDIMCD"),
            cst(n).ceil_div(param("WGD")) * param("NDIMCD"),
        ])
        .local_size([param("MDIMCD"), param("NDIMCD")])
        .seed(7)
        .build()
}

fn main() {
    let budget = 2_000; // evaluations per tuning run
    let devices = [
        ("CPU", DeviceModel::xeon_e5_2640v2_dual()),
        ("GPU", DeviceModel::tesla_k20m()),
    ];

    for (dev_label, device) in devices {
        println!("=== {dev_label}: {} ===", device.name);
        for (label, &(m, n, k)) in caffe::LABELS.iter().zip(&caffe::INPUT_SIZES) {
            // The native ATF search space: 10 interdependent parameters.
            let groups = clblast::atf_space(m, n, k);

            let mut cf = gemm_cost_function(device.clone(), m, n, k);
            let result = Tuner::new()
                .technique(Ensemble::opentuner_default(1))
                .abort_condition(abort::evaluations(budget))
                .tune(&groups, &mut cf)
                .expect("ATF space is non-empty");

            // Compare against CLBlast's compiled-in defaults.
            let mut cf_default = gemm_cost_function(device.clone(), m, n, k);
            let default_cost = cf_default
                .measure(&clblast::default_config())
                .expect("default configuration always valid");

            println!(
                "  {label} ({m:>2}x{k:>2} . {k:>2}x{n:>3}): tuned {:>9.3} us | defaults {:>9.3} us | speedup {:>5.2}x | best: WGD={} MDIMCD={} NDIMCD={} KWID={} VWMD={} VWND={}",
                result.best_cost / 1e3,
                default_cost / 1e3,
                default_cost / result.best_cost,
                result.best_config.get_u64("WGD"),
                result.best_config.get_u64("MDIMCD"),
                result.best_config.get_u64("NDIMCD"),
                result.best_config.get_u64("KWID"),
                result.best_config.get_u64("VWMD"),
                result.best_config.get_u64("VWND"),
            );
        }
    }
    println!("\n(see `cargo run -p atf-bench --release --bin fig2_speedup` for the full Figure-2 comparison against the CLTune and OpenTuner baselines)");
}
