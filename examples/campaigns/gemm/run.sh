#!/bin/sh
# One XgemmDirect evaluation on the simulated device: the workload file
# (device + m n k) arrives via ATF_SOURCE, the tuning parameters via
# ATF_TP_*, and the measured runtime goes to ATF_LOG_FILE. Build the
# bridge first: cargo build -p atf-bench --release --bin gemm_cost
exec "${ATF_GEMM_COST:-target/release/gemm_cost}"
