//! Multi-objective tuning (paper, Section II, Step 2): minimize runtime
//! first and energy second, by returning a lexicographically ordered pair
//! from the cost function.
//!
//! The energy term comes from the simulator's device power model
//! (idle power + dynamic power scaled by chip utilization); what this
//! example demonstrates is ATF's machinery: any cost type with `<` works,
//! pairs order lexicographically, and the tuner picks the best by the
//! *full* ordering while search techniques are guided by the primary
//! objective.
//!
//! Run with: `cargo run --release --example multi_objective`

use atf_core::expr::{cst, param};
use atf_ocl::{buffer_random_f32, scalar, scalar_random_f32};
use atf_repro::prelude::*;
use clblast::SaxpyKernel;

fn main() {
    let n: u64 = 1 << 20;

    let params = vec![ParamGroup::new(vec![
        tp_c("WPT", Range::interval(1, n), divides(cst(n))),
        tp_c("LS", Range::interval(1, n), divides(cst(n) / param("WPT"))),
    ])];

    let mut ocl_cf = atf_ocl::ocl("NVIDIA", "Tesla K20c", SaxpyKernel)
        .expect("device present")
        .arg(scalar(ocl_sim::Scalar::U64(n)))
        .arg(scalar_random_f32())
        .arg(buffer_random_f32(n as usize))
        .arg(buffer_random_f32(n as usize))
        .global_size([cst(n) / param("WPT")])
        .local_size([param("LS")])
        .build();

    // Wrap the measurement into a (runtime_ms, energy_uJ) pair. The energy
    // comes from the simulator's power model: idle watts plus dynamic watts
    // scaled by how much of the chip the launch keeps busy.
    let mut cf = try_cost_fn(move |config: &Config| {
        let (runtime_ns, energy_uj) = ocl_cf.measure_with_energy(config)?;
        Ok((runtime_ns / 1e6, energy_uj))
    });

    let result = Tuner::new()
        .technique(Ensemble::opentuner_default(5))
        .abort_condition(abort::evaluations(800))
        .tune(&params, &mut cf)
        .expect("non-empty space");

    let (runtime_ms, energy_uj) = result.best_cost;
    println!(
        "best: WPT = {}, LS = {}",
        result.best_config.get_u64("WPT"),
        result.best_config.get_u64("LS")
    );
    println!("runtime: {runtime_ms:.4} ms (primary objective)");
    println!("energy:  {energy_uj:.1} uJ (secondary objective)");
    println!(
        "({} configurations evaluated over a space of {})",
        result.evaluations, result.space_size
    );

    // Demonstrate the lexicographic order explicitly.
    let fast_hot = (1.0f64, 900.0f64);
    let fast_cool = (1.0f64, 400.0f64);
    let slow_cool = (2.0f64, 100.0f64);
    assert!(fast_cool < fast_hot, "same runtime: lower energy wins");
    assert!(fast_hot < slow_cool, "runtime dominates energy");
    println!("\nlexicographic order verified: (1ms, 400uJ) < (1ms, 900uJ) < (2ms, 100uJ)");
}
