//! # atf-repro — umbrella crate for the ATF reproduction workspace
//!
//! Re-exports the workspace crates under one roof so examples, integration
//! tests, and downstream users can depend on a single crate:
//!
//! * [`atf`] (= `atf_core`) — the auto-tuning framework itself;
//! * [`sim`] (= `ocl_sim`) — the simulated OpenCL platform;
//! * [`cf`] (= `atf_ocl`) — pre-implemented OpenCL/CUDA cost functions;
//! * [`kernels`] (= `clblast`) — the saxpy and XgemmDirect workloads;
//! * [`comparators`] (= `baselines`) — CLTune- and OpenTuner-like tuners.
//!
//! See `README.md` for a guided tour and `examples/` for runnable programs.

pub use atf_core as atf;
pub use atf_ocl as cf;
pub use baselines as comparators;
pub use clblast as kernels;
pub use ocl_sim as sim;

/// Commonly used items for examples and tests.
pub mod prelude {
    pub use atf_core::prelude::*;
}
