//! Integration tests for the paper's Section VI claims, at test-friendly
//! scale (the full-scale reproduction lives in the `atf-bench` binaries).

use atf_core::expr::{cst, param};
use atf_core::prelude::*;
use atf_ocl::{buffer_random_f32, scalar};
use baselines::{CltuneGenError, CltuneTuner, OpenTunerStyleTuner};
use clblast::{caffe, XgemmDirectKernel};
use ocl_sim::{DeviceModel, Scalar};

fn gemm_cf(device: DeviceModel, m: u64, n: u64, k: u64) -> atf_ocl::OclCostFunction {
    atf_ocl::ocl_on(device, XgemmDirectKernel)
        .arg(scalar(Scalar::U64(m)))
        .arg(scalar(Scalar::U64(n)))
        .arg(scalar(Scalar::U64(k)))
        .arg(scalar(1.0f32))
        .arg(scalar(0.0f32))
        .arg(buffer_random_f32((m * k) as usize))
        .arg(buffer_random_f32((k * n) as usize))
        .arg(buffer_random_f32((m * n) as usize))
        .global_size([
            cst(m).ceil_div(param("WGD")) * param("MDIMCD"),
            cst(n).ceil_div(param("WGD")) * param("NDIMCD"),
        ])
        .local_size([param("MDIMCD"), param("NDIMCD")])
        .seed(11)
        .build()
}

#[test]
fn atf_tunes_xgemm_better_than_clblast_defaults() {
    // The headline mechanism behind Figure 2: for every Caffe size, tuning
    // with ATF beats the untuned defaults on both devices.
    for device in [
        DeviceModel::xeon_e5_2640v2_dual(),
        DeviceModel::tesla_k20m(),
    ] {
        for &(m, n, k) in &caffe::INPUT_SIZES {
            let groups = clblast::xgemm_space::atf_space_wgd_max(16); // test-scale
            let mut cf = gemm_cf(device.clone(), m, n, k);
            let tuned = Tuner::new()
                .technique(Ensemble::opentuner_default(3))
                .abort_condition(abort::evaluations(400))
                .tune(&groups, &mut cf)
                .unwrap();
            let default_cost = gemm_cf(device.clone(), m, n, k)
                .measure(&clblast::default_config())
                .unwrap();
            assert!(
                tuned.best_cost <= default_cost,
                "{}x{}x{} on {}: tuned {} vs default {}",
                m,
                n,
                k,
                device.name,
                tuned.best_cost,
                default_cost
            );
        }
    }
}

#[test]
fn cltune_limited_space_is_empty_for_caffe_sizes() {
    // Section VI-A: CLBlast's range limitation + divides-rows/columns
    // constraint empties the space for every deep-learning input size, so
    // CLTune cannot tune at all and the kernel falls back to defaults.
    for &(m, n, k) in &caffe::INPUT_SIZES {
        let groups = clblast::clblast_limited_space(m, n, k);
        let space = SearchSpace::count(&groups).unwrap();
        assert_eq!(space, 0, "{m}x{n}x{k} should have an empty CLTune space");
    }
}

#[test]
fn cltune_cross_product_generation_blows_up_where_atf_does_not() {
    // Section VI-A: "even for the multiplication of small 32×32 matrices,
    // the search space generation takes too much time — we aborted after
    // 3 hours — while ATF requires less than 1 second".
    // Test-scale: unrestricted ranges 1..=32 for the 6 dimension-like
    // parameters. Cross product = 32^6 * 4^2 * 2^2 ≈ 6.9e10 candidates.
    let mut cltune = CltuneTuner::new();
    for name in ["WGD", "MDIMCD", "NDIMCD", "MDIMAD", "NDIMBD", "KWID"] {
        cltune.add_parameter(name, (1..=32).collect());
    }
    cltune.add_parameter("VWMD", vec![1, 2, 4, 8]);
    cltune.add_parameter("VWND", vec![1, 2, 4, 8]);
    cltune.add_parameter("PADA", vec![0, 1]);
    cltune.add_parameter("PADB", vec![0, 1]);
    cltune.candidate_limit(2_000_000); // a generous but finite budget
    let err = cltune.generate_space().unwrap_err();
    assert_eq!(err, CltuneGenError::TooManyCandidates { limit: 2_000_000 });

    // ATF's constrained-range generation handles the same ranges easily.
    let t0 = std::time::Instant::now();
    let atf_count = SearchSpace::count(&clblast::xgemm_space::atf_space_wgd_max(32)).unwrap();
    assert!(atf_count > 0);
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(10),
        "ATF generation took {:?}",
        t0.elapsed()
    );
}

#[test]
fn opentuner_penalty_wastes_the_budget_on_invalid_configs() {
    // Section VI-B: valid configurations are a tiny fraction of the
    // unconstrained space, so the penalty-based OpenTuner run burns its
    // evaluations on failures.
    let (m, n, k) = caffe::IS4;
    let mut ot = OpenTunerStyleTuner::from_u64_ranges(clblast::unconstrained_params(64)).seed(9);
    let mut cf = gemm_cf(DeviceModel::tesla_k20m(), m, n, k);
    let result = ot.tune(1000, &mut cf);
    assert!(
        result.valid_fraction() < 0.2,
        "valid fraction {}",
        result.valid_fraction()
    );
    // ATF with the same budget explores ONLY valid configurations.
    let groups = clblast::xgemm_space::atf_space_wgd_max(16);
    let mut cf = gemm_cf(DeviceModel::tesla_k20m(), m, n, k);
    let atf = Tuner::new()
        .technique(Ensemble::opentuner_default(9))
        .abort_condition(abort::evaluations(1000))
        .tune(&groups, &mut cf)
        .unwrap();
    // (ATF evaluations can still fail on *device* limits, but constraint
    // violations are impossible by construction.)
    let atf_valid = atf.valid_evaluations as f64 / atf.evaluations as f64;
    assert!(
        atf_valid > result.valid_fraction(),
        "ATF {atf_valid} vs OpenTuner {}",
        result.valid_fraction()
    );
    // And ATF's best beats OpenTuner's best (when OpenTuner found any).
    if let Some((_, ot_best)) = result.best {
        assert!(
            atf.best_cost <= ot_best,
            "ATF {} vs OpenTuner {}",
            atf.best_cost,
            ot_best
        );
    }
}

#[test]
fn relaxing_cltune_constraints_improves_the_best_configuration() {
    // Section VI-A: ATF can drop CLTune's WGD-divides-M/N constraints
    // (because the padded global size is expressible), enlarging the space
    // and improving the tuning result.
    let (m, n, k) = caffe::IS4; // 10 × 500: divisibility is very restrictive
    let full = SearchSpace::count(&clblast::atf_space(m, n, k)).unwrap();
    let constrained = SearchSpace::count(&clblast::atf_space_cltune_constraints(m, n, k)).unwrap();
    assert!(constrained < full / 10, "{constrained} vs {full}");

    // Exhaustive over the constrained space (it is small: WGD ∈ {1,2,5,10} ∩ div(500) = {1,2,5,10}).
    let mut cf = gemm_cf(DeviceModel::tesla_k20m(), m, n, k);
    let best_constrained = Tuner::new()
        .technique(Exhaustive::new())
        .tune(&clblast::atf_space_cltune_constraints(m, n, k), &mut cf)
        .unwrap();

    // Search over the full space with a budget.
    let mut cf = gemm_cf(DeviceModel::tesla_k20m(), m, n, k);
    let best_full = Tuner::new()
        .technique(Ensemble::opentuner_default(21))
        .abort_condition(abort::evaluations(3000))
        .tune(&clblast::atf_space(m, n, k), &mut cf)
        .unwrap();
    assert!(
        best_full.best_cost < best_constrained.best_cost,
        "full {} vs constrained {}",
        best_full.best_cost,
        best_constrained.best_cost
    );
}

#[test]
fn functional_gemm_verified_through_cost_function() {
    // Error-checking mode across a sample of valid configurations.
    let (m, n, k) = (24u64, 36, 12);
    let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 * 0.5 - 1.0).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 * 0.25 - 0.5).collect();
    let c0: Vec<f32> = vec![0.0; (m * n) as usize];
    let mut expected = c0.clone();
    clblast::reference::gemm(
        m as usize,
        n as usize,
        k as usize,
        1.0,
        &a,
        &b,
        0.0,
        &mut expected,
    );
    let expected2 = expected.clone();

    let mut cf = atf_ocl::ocl_on(DeviceModel::tesla_k20m(), XgemmDirectKernel)
        .arg(scalar(Scalar::U64(m)))
        .arg(scalar(Scalar::U64(n)))
        .arg(scalar(Scalar::U64(k)))
        .arg(scalar(1.0f32))
        .arg(scalar(0.0f32))
        .arg(atf_ocl::buffer(a))
        .arg(atf_ocl::buffer(b))
        .arg(atf_ocl::buffer(c0))
        .global_size([
            cst(m).ceil_div(param("WGD")) * param("MDIMCD"),
            cst(n).ceil_div(param("WGD")) * param("NDIMCD"),
        ])
        .local_size([param("MDIMCD"), param("NDIMCD")])
        .verify_with(move |ctx, args| {
            let ocl_sim::KernelArg::Buffer(cid) = args[7] else {
                return Err("arg 7 should be C".into());
            };
            let c = ctx.buffer(cid).borrow_f32();
            if clblast::reference::approx_eq(&c, &expected2, 12) {
                Ok(())
            } else {
                Err("XgemmDirect result mismatch".into())
            }
        })
        .build();

    let groups = clblast::xgemm_space::atf_space_wgd_max(12);
    let result = Tuner::new()
        .technique(RandomSearch::with_seed(2))
        .abort_condition(abort::evaluations(200))
        .tune(&groups, &mut cf)
        .unwrap();
    // No MeasurementFailed (wrong result) may occur; failures can only be
    // device-limit rejections. With wgd_max=12 everything launches, so all
    // 200 evaluations must be valid AND verified.
    assert_eq!(result.valid_evaluations, 200);
}
