//! Fault-injection suite: every search technique, the session layer, and
//! the tuning service must survive a deterministic schedule of hangs,
//! crashes, and flaky transients (see `atf_core::fault`), and a run
//! replayed from any journal prefix must reconstruct the exact state of the
//! uninterrupted run.

use atf_core::abort;
use atf_core::param::{tp, ParamGroup};
use atf_core::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

fn space() -> SearchSpace {
    let group = ParamGroup::new(vec![
        tp("X", Range::interval(1, 12)),
        tp("Y", Range::interval(1, 6)),
    ]);
    SearchSpace::generate(&[group])
}

/// Toy objective with a unique optimum at (X=7, Y=3).
fn objective() -> impl CostFunction<Cost = f64> {
    cost_fn(|c: &Config| {
        let x = c.get_u64("X") as f64;
        let y = c.get_u64("Y") as f64;
        (x - 7.0).abs() + (y - 3.0).abs()
    })
}

/// Fast backoff so retry tests don't sleep for real.
fn quick_retry_policy(retries: u32) -> EvalPolicy {
    EvalPolicy {
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(2),
        ..EvalPolicy::default()
    }
    .retries(retries)
}

/// The acceptance-criteria technique list, freshly seeded.
fn techniques(seed: u64) -> Vec<(&'static str, Box<dyn SearchTechnique>)> {
    vec![
        ("exhaustive", Box::new(Exhaustive::new())),
        ("annealing", Box::new(SimulatedAnnealing::with_seed(seed))),
        ("ensemble", Box::new(Ensemble::opentuner_default(seed))),
        ("genetic", Box::new(GeneticAlgorithm::with_seed(seed))),
        ("pattern", Box::new(PatternSearch::with_seed(seed))),
        ("torczon", Box::new(Torczon::with_seed(seed))),
        ("nelder-mead", Box::new(NelderMead::with_seed(seed))),
    ]
}

/// Every technique completes a run under the stressful fault plan (~10 %
/// hangs, ~10 % crashes, ~20 % transients) and still finds a best
/// configuration; across the suite every failure mode is injected at least
/// once and the session's taxonomy counters account for every failure.
#[test]
fn every_technique_survives_a_stressful_fault_schedule() {
    let mut total_injected = (0u64, 0u64, 0u64);
    for (i, (name, technique)) in techniques(11).into_iter().enumerate() {
        let plan = FaultPlan::stressful(100 + i as u64);
        let faulty = FaultyCostFunction::new(objective(), plan);
        let mut cf = RetryCostFunction::new(faulty, quick_retry_policy(3), 5);

        let mut session = TuningSession::<f64>::new(space(), technique)
            .unwrap()
            .abort_condition(abort::evaluations(60))
            .circuit_breaker(30);
        while let Some(config) = session.next_config() {
            let outcome = cf.evaluate(&config);
            session.report(outcome).unwrap();
        }
        let failure_counts = session.status().failure_counts();
        let result = session
            .finish()
            .unwrap_or_else(|e| panic!("technique `{name}` did not survive: {e}"));
        assert!(result.evaluations > 0, "`{name}` evaluated nothing");
        assert!(
            result.valid_evaluations > 0,
            "`{name}` measured nothing successfully"
        );
        let counted: u64 = failure_counts.iter().map(|(_, n)| n).sum();
        assert_eq!(
            counted, result.failed_evaluations,
            "`{name}`: taxonomy counters must account for every failure"
        );
        let (t, c, f, _) = cf.into_inner().injected();
        total_injected = (
            total_injected.0 + t,
            total_injected.1 + c,
            total_injected.2 + f,
        );
    }
    let (timeouts, crashes, transients) = total_injected;
    assert!(
        timeouts > 0 && crashes > 0 && transients > 0,
        "the suite must exercise every failure mode (got {total_injected:?})"
    );
}

/// A dead device (100 % crashes) trips the circuit breaker as a structured
/// error for every technique, instead of burning the whole budget.
#[test]
fn every_technique_trips_the_breaker_on_a_dead_device() {
    for (name, technique) in techniques(23) {
        let plan = FaultPlan {
            crash_rate: 1.0,
            ..FaultPlan::new(9)
        };
        let mut cf = FaultyCostFunction::new(objective(), plan);
        let mut session = TuningSession::<f64>::new(space(), technique)
            .unwrap()
            .abort_condition(abort::evaluations(60))
            .circuit_breaker(5);
        while let Some(config) = session.next_config() {
            let outcome = cf.evaluate(&config);
            session.report(outcome).unwrap();
        }
        match session.finish() {
            Err(TuningError::CircuitBroken {
                consecutive_failures,
                last_failure,
            }) => {
                assert_eq!(consecutive_failures, 5, "`{name}`");
                assert_eq!(last_failure, FailureKind::RunCrash, "`{name}`");
            }
            other => panic!("`{name}` should trip the breaker, got {other:?}"),
        }
    }
}

/// The service layer survives the same schedule end to end over the
/// loopback transport: classified failures travel the wire, the taxonomy
/// shows up in the final response, and a best configuration is found.
#[test]
fn service_session_survives_a_stressful_fault_schedule() {
    use atf_core::spec::{IntervalSpec, ParameterSpec, SearchSpec};
    use std::sync::Arc;

    let manager = Arc::new(atf_service::SessionManager::in_memory());
    let mut client = atf_service::Client::loopback(manager);
    let mut spec = atf_service::SessionSpec::new("faulty-kernel");
    spec.parameters = vec![ParameterSpec {
        name: "X".into(),
        interval: Some(IntervalSpec {
            begin: 1,
            end: 24,
            step: 1,
        }),
        set: None,
        constraint: None,
    }];
    spec.search = Some(SearchSpec {
        technique: "annealing".into(),
        seed: 5,
    });
    spec.breaker = Some(30);

    let faulty = FaultyCostFunction::new(
        cost_fn(|c: &Config| (c.get_u64("X") as f64 - 17.0).abs()),
        FaultPlan::stressful(7),
    );
    let mut cf = RetryCostFunction::new(faulty, quick_retry_policy(3), 5);
    let response = client
        .tune_classified(&spec, |wire| {
            let config =
                Config::from_pairs(wire.iter().map(|(n, v)| (n.as_str(), Value::UInt(*v))));
            cf.evaluate(&config).map_err(|e| e.kind())
        })
        .unwrap();
    assert_eq!(response.best_config.unwrap()["X"], 17);
    assert!(response.valid_evaluations.unwrap() > 0);
    let failures = response.failures.unwrap_or_default();
    let counted: u64 = failures.values().sum();
    assert_eq!(Some(counted), response.failed_evaluations);
    let (t, c, _, _) = cf.into_inner().injected();
    assert!(t + c > 0, "the schedule must have injected failures");
}

fn journal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("atf-ft-{tag}-{}.ndjson", std::process::id()))
}

/// A journaled run killed mid-flight (session dropped without finishing)
/// and resumed from its journal ends in exactly the state of an
/// uninterrupted run — same best configuration, cost, and counters.
#[test]
fn killed_and_resumed_run_matches_the_uninterrupted_run() {
    // Failures keyed purely on the configuration, so the schedule is
    // identical across the reference run and the resumed run.
    let mk_cf = || {
        try_cost_fn(|c: &Config| {
            let x = c.get_u64("X");
            let y = c.get_u64("Y");
            match (x * 7 + y * 3) % 9 {
                0 => Err(CostError::Timeout {
                    limit: Duration::from_secs(1),
                }),
                1 => Err(CostError::Crashed {
                    signal: Some(11),
                    exit: None,
                    stderr: "boom".into(),
                }),
                _ => Ok((x as f64 - 7.0).abs() + (y as f64 - 3.0).abs()),
            }
        })
    };
    let technique = || Box::new(SimulatedAnnealing::with_seed(31)) as Box<dyn SearchTechnique>;

    // Reference: uninterrupted run.
    let mut cf = mk_cf();
    let mut reference = TuningSession::<f64>::new(space(), technique())
        .unwrap()
        .abort_condition(abort::evaluations(50));
    while let Some(config) = reference.next_config() {
        let outcome = cf.evaluate(&config);
        reference.report(outcome).unwrap();
    }
    let reference_counts = reference.status().failure_counts();
    let reference = reference.finish().unwrap();

    // Journaled run, "killed" (dropped) after 17 evaluations.
    let path = journal_path("kill");
    let mut cf = mk_cf();
    let mut interrupted = TuningSession::<f64>::new(space(), technique())
        .unwrap()
        .abort_condition(abort::evaluations(50))
        .journal_to(&path)
        .unwrap();
    for _ in 0..17 {
        let config = interrupted.next_config().expect("budget not exhausted yet");
        let outcome = cf.evaluate(&config);
        interrupted.report(outcome).unwrap();
    }
    drop(interrupted); // crash: no finish, journal left behind

    // Resume from the journal and drive to completion.
    let mut cf = mk_cf();
    let mut resumed = TuningSession::<f64>::new(space(), technique())
        .unwrap()
        .abort_condition(abort::evaluations(50));
    let replayed = resumed.resume_from_journal(&path).unwrap();
    assert_eq!(replayed, 17);
    while let Some(config) = resumed.next_config() {
        let outcome = cf.evaluate(&config);
        resumed.report(outcome).unwrap();
    }
    let resumed_counts = resumed.status().failure_counts();
    let resumed = resumed.finish().unwrap();

    assert_eq!(resumed.best_config, reference.best_config);
    assert_eq!(resumed.best_cost, reference.best_cost);
    assert_eq!(resumed.evaluations, reference.evaluations);
    assert_eq!(resumed.failed_evaluations, reference.failed_evaluations);
    assert_eq!(resumed_counts, reference_counts);

    // The journal now holds the full run and replays in one go.
    let full = LoadedJournal::load(&path).unwrap();
    assert_eq!(full.entries.len() as u64, reference.evaluations);
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: replaying ANY journal prefix, then the rest, reconstructs
    /// the same best configuration and status counters as the uninterrupted
    /// run — across techniques, fault seeds, and cut points.
    #[test]
    fn journal_prefix_replay_reaches_identical_state(
        seed in 0u64..200,
        cut in 0usize..=50,
        technique_idx in 0usize..3,
    ) {
        let technique = || -> Box<dyn SearchTechnique> {
            match technique_idx {
                0 => Box::new(Exhaustive::new()),
                1 => Box::new(SimulatedAnnealing::with_seed(seed)),
                _ => Box::new(GeneticAlgorithm::with_seed(seed)),
            }
        };
        let path = journal_path(&format!("prop-{seed}-{cut}-{technique_idx}"));

        // Uninterrupted journaled run under an injected fault schedule.
        let mut cf = FaultyCostFunction::new(objective(), FaultPlan::stressful(seed));
        let mut session = TuningSession::<f64>::new(space(), technique())
            .unwrap()
            .abort_condition(abort::evaluations(40))
            .journal_to(&path)
            .unwrap();
        while let Some(config) = session.next_config() {
            let outcome = cf.evaluate(&config);
            session.report(outcome).unwrap();
        }
        let reference_counts = session.status().failure_counts();
        let reference = session.finish();

        let entries = LoadedJournal::load(&path).unwrap().entries;
        std::fs::remove_file(&path).ok();
        let k = cut.min(entries.len());

        // Replay the prefix (the journal of the "crashed" run), then the
        // suffix (what the continued run would have measured).
        let mut resumed = TuningSession::<f64>::new(space(), technique())
            .unwrap()
            .abort_condition(abort::evaluations(40));
        let replayed = resumed.resume_from(&entries[..k]).unwrap();
        prop_assert_eq!(replayed as usize, k);
        resumed.resume_from(&entries[k..]).unwrap();
        let resumed_counts = resumed.status().failure_counts();
        let resumed = resumed.finish();

        prop_assert_eq!(resumed_counts, reference_counts);
        match (resumed, reference) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.best_config, b.best_config);
                prop_assert_eq!(a.best_cost, b.best_cost);
                prop_assert_eq!(a.evaluations, b.evaluations);
                prop_assert_eq!(a.failed_evaluations, b.failed_evaluations);
            }
            (a, b) => prop_assert_eq!(a.is_err(), b.is_err()),
        }
    }
}
