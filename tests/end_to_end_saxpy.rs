//! End-to-end integration: the paper's Listing 2 pipeline — saxpy tuned
//! through atf-core + atf-ocl + ocl-sim + clblast.

use atf_core::expr::{cst, param};
use atf_core::prelude::*;
use atf_ocl::{buffer_random_f32, scalar, scalar_random_f32};
use clblast::SaxpyKernel;
use ocl_sim::DeviceModel;

fn saxpy_cf(device: DeviceModel, n: u64, seed: u64) -> atf_ocl::OclCostFunction {
    atf_ocl::ocl_on(device, SaxpyKernel)
        .arg(scalar(ocl_sim::Scalar::U64(n)))
        .arg(scalar_random_f32())
        .arg(buffer_random_f32(n as usize))
        .arg(buffer_random_f32(n as usize))
        .global_size([cst(n) / param("WPT")])
        .local_size([param("LS")])
        .seed(seed)
        .build()
}

#[test]
fn exhaustive_finds_the_true_optimum() {
    // N = 4096 so that some LS values exceed the device's work-group limit
    // of 1024 — those configurations must fail, not crash.
    let n = 1u64 << 12;
    let groups = clblast::saxpy_space(n);
    let mut cf = saxpy_cf(DeviceModel::tesla_k20m(), n, 1);
    let result = Tuner::new()
        .technique(Exhaustive::new())
        .tune(&groups, &mut cf)
        .unwrap();

    // Independently scan the space for the minimum.
    let space = SearchSpace::generate(&groups);
    let mut cf2 = saxpy_cf(DeviceModel::tesla_k20m(), n, 1);
    let mut true_best = f64::INFINITY;
    for cfg in space.iter() {
        if let Ok(t) = cf2.measure(&cfg) {
            true_best = true_best.min(t);
        }
    }
    assert!(
        (result.best_cost - true_best).abs() < 1e-9,
        "exhaustive missed the optimum: {} vs {}",
        result.best_cost,
        true_best
    );
    // Some configurations are invalid on the device (LS > max work-group
    // size); they must be counted as failures, not crash the run.
    assert!(result.failed_evaluations > 0);
    assert_eq!(
        result.evaluations,
        result.valid_evaluations + result.failed_evaluations
    );
}

#[test]
fn annealing_gets_close_to_exhaustive_within_budget() {
    let n = 1u64 << 16;
    let groups = clblast::saxpy_space(n);
    let mut cf = saxpy_cf(DeviceModel::tesla_k20m(), n, 2);
    let exhaustive = Tuner::new()
        .technique(Exhaustive::new())
        .tune(&groups, &mut cf)
        .unwrap();

    let mut cf = saxpy_cf(DeviceModel::tesla_k20m(), n, 2);
    let annealed = Tuner::new()
        .technique(SimulatedAnnealing::with_seed(7))
        .abort_condition(abort::evaluations(300))
        .tune(&groups, &mut cf)
        .unwrap();
    assert!(annealed.evaluations <= 300);
    assert!(
        annealed.best_cost <= exhaustive.best_cost * 3.0,
        "annealing {} vs exhaustive {}",
        annealed.best_cost,
        exhaustive.best_cost
    );
}

#[test]
fn devices_prefer_different_configurations() {
    // The point of auto-tuning: the same kernel wants different parameters
    // on different devices.
    let n = 1u64 << 18;
    let groups = clblast::saxpy_space(n);
    let tune = |device: DeviceModel| {
        let mut cf = saxpy_cf(device, n, 3);
        Tuner::new()
            .technique(Exhaustive::new())
            .tune(&groups, &mut cf)
            .unwrap()
    };
    let gpu = tune(DeviceModel::tesla_k20m());
    let cpu = tune(DeviceModel::xeon_e5_2640v2_dual());
    let gpu_wpt = gpu.best_config.get_u64("WPT");
    let cpu_wpt = cpu.best_config.get_u64("WPT");
    assert!(
        cpu_wpt > gpu_wpt,
        "CPU should prefer larger chunks (got CPU {cpu_wpt}, GPU {gpu_wpt})"
    );
}

#[test]
fn error_checking_validates_every_explored_configuration() {
    let n = 256u64;
    let groups = clblast::saxpy_space(n);
    // Concrete inputs so the verifier can know the expected result.
    let x = vec![1.0f32; n as usize];
    let y = vec![2.0f32; n as usize];
    let a = 3.0f32;
    let mut cf = atf_ocl::ocl("NVIDIA", "Tesla K20c", SaxpyKernel)
        .unwrap()
        .arg(scalar(ocl_sim::Scalar::U64(n)))
        .arg(scalar(a))
        .arg(atf_ocl::buffer(x))
        .arg(atf_ocl::buffer(y))
        .global_size([cst(n) / param("WPT")])
        .local_size([param("LS")])
        .verify_with(move |ctx, args| {
            let ocl_sim::KernelArg::Buffer(yid) = args[3] else {
                return Err("arg 3 should be the y buffer".into());
            };
            let y = ctx.buffer(yid).borrow_f32();
            // y = a*x + y = 3*1 + 2 = 5 everywhere.
            if y.iter().all(|&v| (v - 5.0).abs() < 1e-6) {
                Ok(())
            } else {
                Err("wrong saxpy result".into())
            }
        })
        .build();
    let result = Tuner::new()
        .technique(Exhaustive::new())
        .tune(&groups, &mut cf)
        .unwrap();
    // Every *launchable* configuration verified; the only failures are
    // device-limit rejections, not wrong results.
    assert!(result.valid_evaluations > 0);
}

#[test]
fn fraction_abort_on_real_space() {
    let n = 1u64 << 12;
    let groups = clblast::saxpy_space(n);
    let space_size = SearchSpace::count(&groups).unwrap();
    let mut cf = saxpy_cf(DeviceModel::tesla_k20m(), n, 4);
    let result = Tuner::new()
        .technique(RandomSearch::with_seed(5))
        .abort_condition(abort::fraction(0.1))
        .tune(&groups, &mut cf)
        .unwrap();
    let expected = ((space_size as f64) * 0.1).ceil() as u64;
    assert_eq!(result.evaluations, expected);
}

#[test]
fn cuda_cost_function_tunes_like_opencl() {
    // Section II: the CUDA cost function is used analogously.
    let n = 1u64 << 12;
    let groups = clblast::saxpy_space(n);
    let mut cf = atf_ocl::cuda("Tesla K20m", SaxpyKernel)
        .unwrap()
        .arg(scalar(ocl_sim::Scalar::U64(n)))
        .arg(scalar_random_f32())
        .arg(buffer_random_f32(n as usize))
        .arg(buffer_random_f32(n as usize))
        .global_size([cst(n) / param("WPT")])
        .local_size([param("LS")])
        .build();
    let result = Tuner::new()
        .technique(Exhaustive::new())
        .tune(&groups, &mut cf)
        .unwrap();
    assert!(result.best_cost > 0.0);
}
