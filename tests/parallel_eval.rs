//! Parallel batched evaluation suite: the multi-pending session must keep
//! every technique's search trajectory deterministic under concurrent
//! workers, never lose or double-count a ticket under arbitrary report
//! interleavings, resume an interrupted parallel run from its journal to
//! the exact uninterrupted state, and actually deliver wall-clock speedup.
//!
//! The determinism hinge (see `atf_core::session`): reports are applied in
//! ticket order at forced points, so the technique's view when ticket `t`
//! is issued is a pure function of the handout count and the pending
//! window — never of which worker reported first.

use atf_core::abort;
use atf_core::param::{tp, ParamGroup};
use atf_core::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn space() -> SearchSpace {
    let group = ParamGroup::new(vec![
        tp("X", Range::interval(1, 12)),
        tp("Y", Range::interval(1, 6)),
    ]);
    SearchSpace::generate(&[group])
}

/// Toy objective with a unique optimum at (X=7, Y=3). `Send` so worker
/// threads can own private instances.
fn objective() -> impl CostFunction<Cost = f64> + Send {
    cost_fn(|c: &Config| {
        let x = c.get_u64("X") as f64;
        let y = c.get_u64("Y") as f64;
        (x - 7.0).abs() + (y - 3.0).abs()
    })
}

/// Failures keyed purely on the configuration, so the schedule is
/// identical no matter which worker (or which run) measures it.
fn keyed_faulty() -> impl CostFunction<Cost = f64> + Send {
    try_cost_fn(|c: &Config| {
        let x = c.get_u64("X");
        let y = c.get_u64("Y");
        match (x * 7 + y * 3) % 9 {
            0 => Err(CostError::Timeout {
                limit: Duration::from_secs(1),
            }),
            1 => Err(CostError::Crashed {
                signal: Some(11),
                exit: None,
                stderr: "boom".into(),
            }),
            _ => Ok((x as f64 - 7.0).abs() + (y as f64 - 3.0).abs()),
        }
    })
}

/// The acceptance-criteria technique list (plus random search, which like
/// exhaustive proposes independently of reported costs), freshly seeded.
fn technique_names() -> Vec<&'static str> {
    vec![
        "exhaustive",
        "random",
        "annealing",
        "ensemble",
        "genetic",
        "pattern",
        "torczon",
        "nelder-mead",
    ]
}

fn technique(name: &str, seed: u64) -> Box<dyn SearchTechnique> {
    match name {
        "exhaustive" => Box::new(Exhaustive::new()),
        "random" => Box::new(RandomSearch::with_seed(seed)),
        "annealing" => Box::new(SimulatedAnnealing::with_seed(seed)),
        "ensemble" => Box::new(Ensemble::opentuner_default(seed)),
        "genetic" => Box::new(GeneticAlgorithm::with_seed(seed)),
        "pattern" => Box::new(PatternSearch::with_seed(seed)),
        "torczon" => Box::new(Torczon::with_seed(seed)),
        "nelder-mead" => Box::new(NelderMead::with_seed(seed)),
        other => panic!("unknown technique `{other}`"),
    }
}

fn assert_identical(a: &TuningResult<f64>, b: &TuningResult<f64>, label: &str) {
    assert_eq!(a.best_config, b.best_config, "{label}: best_config");
    assert_eq!(a.best_cost, b.best_cost, "{label}: best_cost");
    assert_eq!(a.evaluations, b.evaluations, "{label}: evaluations");
    assert_eq!(
        a.valid_evaluations, b.valid_evaluations,
        "{label}: valid_evaluations"
    );
    assert_eq!(
        a.failed_evaluations, b.failed_evaluations,
        "{label}: failed_evaluations"
    );
}

/// With one worker the pending window is 1, so `tune_parallel` must equal
/// the serial loop EXACTLY for every technique — same configurations in
/// the same order, hence the same best, cost, and counters.
#[test]
fn one_worker_parallel_equals_serial_for_every_technique() {
    for name in technique_names() {
        let mut serial_tuner = Tuner::new()
            .technique(technique(name, 41))
            .abort_condition(abort::evaluations(60));
        let serial = serial_tuner
            .tune_space(&space(), &mut objective())
            .unwrap_or_else(|e| panic!("`{name}` serial run failed: {e}"));

        let parallel = Tuner::new()
            .technique(technique(name, 41))
            .abort_condition(abort::evaluations(60))
            .tune_space_parallel(&space(), |_| objective(), 1)
            .unwrap_or_else(|e| panic!("`{name}` one-worker run failed: {e}"));

        assert_identical(&serial, &parallel, name);
    }
}

/// Exhaustive and random search propose independently of reported costs,
/// so widening the window to 4 workers changes NOTHING about the visited
/// configurations: the parallel run equals the serial run exactly.
#[test]
fn four_workers_match_serial_exactly_for_order_free_techniques() {
    for name in ["exhaustive", "random"] {
        let mut serial_tuner = Tuner::new()
            .technique(technique(name, 17))
            .abort_condition(abort::evaluations(60));
        let serial = serial_tuner.tune_space(&space(), &mut objective()).unwrap();

        let parallel = Tuner::new()
            .technique(technique(name, 17))
            .abort_condition(abort::evaluations(60))
            .tune_space_parallel(&space(), |_| objective(), 4)
            .unwrap();

        assert_identical(&serial, &parallel, name);
    }
}

/// A seeded 4-worker run is reproducible — running it twice yields the
/// identical result even though worker scheduling differs — and still
/// converges: within a budget the size of the space every technique gets
/// close to the optimum on this unimodal objective.
#[test]
fn four_worker_runs_are_reproducible_and_converge() {
    for name in technique_names() {
        let run = || {
            Tuner::new()
                .technique(technique(name, 59))
                .abort_condition(abort::evaluations(72))
                .tune_space_parallel(&space(), |_| objective(), 4)
                .unwrap_or_else(|e| panic!("`{name}` four-worker run failed: {e}"))
        };
        let first = run();
        let second = run();
        assert_identical(&first, &second, name);
        assert!(
            first.best_cost <= 3.0,
            "`{name}` should get near the optimum within the budget, got {}",
            first.best_cost
        );
        assert_eq!(first.evaluations, 72, "`{name}` should spend the budget");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property: under ARBITRARY interleavings of handouts, out-of-order
    /// reports, and failure reports, the session never loses or
    /// double-counts a ticket — every retired ticket becomes exactly one
    /// evaluation (valid or failed), the window cap holds at every step,
    /// the issued-ticket count respects the abort budget, and `is_done()`
    /// implies nothing is outstanding.
    #[test]
    fn interleaved_reports_never_lose_or_double_count(
        seed in 0u64..100,
        window in 1usize..=6,
        schedule in proptest::collection::vec((0u8..=255, 0u8..=255), 1..160),
    ) {
        let tech: Box<dyn SearchTechnique> = match seed % 3 {
            0 => Box::new(SimulatedAnnealing::with_seed(seed)),
            1 => Box::new(GeneticAlgorithm::with_seed(seed)),
            _ => Box::new(Ensemble::opentuner_default(seed)),
        };
        let mut session = TuningSession::<f64>::new(space(), tech)
            .unwrap()
            .abort_condition(abort::evaluations(40))
            .max_pending(window);
        let mut cf = keyed_faulty();

        let mut outstanding: Vec<Ticket> = Vec::new();
        let mut retired = 0u64;
        for (action, pick) in schedule {
            if action % 2 == 0 {
                match session.next_ticket() {
                    Handout::Next(t, _) => outstanding.push(t),
                    Handout::Wait | Handout::Done => {}
                }
            } else if !outstanding.is_empty() {
                let i = pick as usize % outstanding.len();
                let t = outstanding.swap_remove(i);
                let config = session.pending_config_for(t).unwrap().clone();
                session.report_ticket(t, cf.evaluate(&config)).unwrap();
                retired += 1;
            }
            // Unreported tickets the session tracks == the ones we hold.
            let unreported =
                session.tickets_in_flight() - session.tickets_buffered();
            prop_assert_eq!(unreported, outstanding.len());
            prop_assert!(session.tickets_in_flight() <= window);
            prop_assert!(session.tickets_issued() <= 40);
            if session.is_done() {
                prop_assert!(outstanding.is_empty());
            }
        }

        // Drain: report everything still outstanding, then run the session
        // to completion serially.
        while let Some(t) = outstanding.pop() {
            let config = session.pending_config_for(t).unwrap().clone();
            session.report_ticket(t, cf.evaluate(&config)).unwrap();
            retired += 1;
        }
        loop {
            match session.next_ticket() {
                Handout::Next(t, config) => {
                    session.report_ticket(t, cf.evaluate(&config)).unwrap();
                    retired += 1;
                }
                Handout::Wait => prop_assert!(
                    false,
                    "Wait with nothing outstanding must be impossible"
                ),
                Handout::Done => break,
            }
        }
        prop_assert!(session.is_done());
        prop_assert_eq!(session.tickets_in_flight(), 0);
        prop_assert_eq!(session.tickets_issued(), retired);

        let result = session.finish().unwrap();
        prop_assert_eq!(result.evaluations, retired);
        prop_assert_eq!(
            result.valid_evaluations + result.failed_evaluations,
            retired
        );
    }
}

fn journal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("atf-par-{tag}-{}.ndjson", std::process::id()))
}

/// An 8-worker journaled run under config-keyed faults, "killed" after 20
/// arrivals (journal truncated to a prefix), resumes to the EXACT state of
/// the uninterrupted run: reports land in nondeterministic arrival order,
/// but ticket-order application makes the final state arrival-agnostic.
#[test]
fn eight_worker_journaled_run_resumes_identically() {
    let budget = 50u64;
    let tech = || technique("annealing", 31);

    // Reference: uninterrupted 8-worker journaled run.
    let path = journal_path("kill8");
    let mut reference = TuningSession::<f64>::new(space(), tech())
        .unwrap()
        .abort_condition(abort::evaluations(budget))
        .max_pending(8)
        .journal_to(&path)
        .unwrap();
    drive_session(&mut reference, (0..8).map(|_| keyed_faulty()).collect());
    let reference_counts = reference.status().failure_counts();
    let reference = reference.finish().unwrap();
    assert_eq!(reference.evaluations, budget);

    // "Kill" the run after 20 arrivals: truncate the journal text to the
    // header line plus the first 20 entry lines, exactly what a crashed
    // process would have left behind.
    let text = std::fs::read_to_string(&path).unwrap();
    let prefix: Vec<&str> = text.lines().take(1 + 20).collect();
    let prefix_path = journal_path("kill8-prefix");
    std::fs::write(&prefix_path, prefix.join("\n") + "\n").unwrap();

    // Resume from the prefix (the replay adopts the journal's window of 8)
    // and drive the rest with a fresh 8-worker pool.
    let mut resumed = TuningSession::<f64>::new(space(), tech())
        .unwrap()
        .abort_condition(abort::evaluations(budget));
    let replayed = resumed.resume_from_journal(&prefix_path).unwrap();
    assert_eq!(replayed, 20);
    assert_eq!(
        resumed.window(),
        8,
        "replay must adopt the journal's window"
    );
    drive_session(&mut resumed, (0..8).map(|_| keyed_faulty()).collect());
    let resumed_counts = resumed.status().failure_counts();
    let resumed = resumed.finish().unwrap();

    assert_identical(&reference, &resumed, "kill8");
    assert_eq!(reference_counts, resumed_counts);

    // The prefix journal was appended to: it now holds a full run again.
    let full = LoadedJournal::load(&prefix_path).unwrap();
    assert_eq!(full.entries.len() as u64, budget);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&prefix_path).ok();
}

/// The fault-tolerance acceptance scenario with a 4-worker pool: every
/// technique completes a run where each worker injects its own stressful
/// fault schedule (with retries), and the taxonomy counters still account
/// for every failure.
#[test]
fn every_technique_survives_faults_with_four_workers() {
    let quick = EvalPolicy {
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(2),
        ..EvalPolicy::default()
    }
    .retries(3);
    for (i, name) in technique_names().into_iter().enumerate() {
        let mut session = TuningSession::<f64>::new(space(), technique(name, 11))
            .unwrap()
            .abort_condition(abort::evaluations(60))
            .circuit_breaker(30)
            .max_pending(4);
        let cost_functions: Vec<_> = (0..4)
            .map(|w| {
                RetryCostFunction::new(
                    FaultyCostFunction::new(
                        objective(),
                        FaultPlan::stressful(100 + (i * 4 + w) as u64),
                    ),
                    quick.clone(),
                    w as u64,
                )
            })
            .collect();
        drive_session(&mut session, cost_functions);
        let failure_counts = session.status().failure_counts();
        let result = session
            .finish()
            .unwrap_or_else(|e| panic!("technique `{name}` did not survive: {e}"));
        assert!(result.evaluations > 0, "`{name}` evaluated nothing");
        assert!(
            result.valid_evaluations > 0,
            "`{name}` measured nothing successfully"
        );
        let counted: u64 = failure_counts.iter().map(|(_, n)| n).sum();
        assert_eq!(
            counted, result.failed_evaluations,
            "`{name}`: taxonomy counters must account for every failure"
        );
    }
}

/// The acceptance throughput bar: on a sleep-dominated cost function, 4
/// workers finish the same budget at least twice as fast as 1 worker.
#[test]
fn four_workers_at_least_double_throughput() {
    let sleepy = || {
        cost_fn(|c: &Config| {
            std::thread::sleep(Duration::from_millis(5));
            let x = c.get_u64("X") as f64;
            let y = c.get_u64("Y") as f64;
            (x - 7.0).abs() + (y - 3.0).abs()
        })
    };
    let run = |workers: usize| {
        let start = Instant::now();
        let result = Tuner::new()
            .technique(Exhaustive::new())
            .abort_condition(abort::evaluations(40))
            .tune_space_parallel(&space(), |_| sleepy(), workers)
            .unwrap();
        assert_eq!(result.evaluations, 40);
        (start.elapsed(), result)
    };
    let (serial_time, serial) = run(1);
    let (parallel_time, parallel) = run(4);
    assert_identical(&serial, &parallel, "throughput");
    assert!(
        parallel_time * 2 <= serial_time,
        "4 workers should be at least 2x faster: serial {serial_time:?}, parallel {parallel_time:?}"
    );
}
