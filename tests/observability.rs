//! Observability suite: the structured trace stream and the metrics
//! registry must describe the run faithfully and deterministically.
//!
//! Determinism caveat (see `atf_core::trace`): timing fields (`micros`,
//! `elapsed_ms`) are wall-clock measurements and vary across runs, and
//! report *arrival* order depends on thread scheduling — but the set of
//! (ticket, point, outcome) facts a seeded run emits is a pure function of
//! the seed. These tests canonicalize events down to their deterministic
//! payload before comparing.

use atf_core::abort;
use atf_core::param::{tp, ParamGroup};
use atf_core::prelude::*;
use atf_core::search::Point;
use atf_core::trace::EVENT_KINDS;
use std::sync::Arc;
use std::time::Duration;

fn space() -> SearchSpace {
    let group = ParamGroup::new(vec![
        tp("X", Range::interval(1, 12)),
        tp("Y", Range::interval(1, 6)),
    ]);
    SearchSpace::generate(&[group])
}

/// Failures keyed purely on the configuration, so every run (and every
/// worker) sees the identical failure schedule.
fn keyed_faulty() -> impl CostFunction<Cost = f64> + Send {
    try_cost_fn(|c: &Config| {
        let x = c.get_u64("X");
        let y = c.get_u64("Y");
        match (x * 7 + y * 3) % 9 {
            0 => Err(CostError::Timeout {
                limit: Duration::from_secs(1),
            }),
            1 => Err(CostError::Crashed {
                signal: Some(11),
                exit: None,
                stderr: "boom".into(),
            }),
            _ => Ok((x as f64 - 7.0).abs() + (y as f64 - 3.0).abs()),
        }
    })
}

/// One seeded 4-worker run against an in-memory sink; returns the events
/// and the session's final metrics snapshot.
fn traced_run(seed: u64) -> (Vec<TraceEvent>, MetricsSnapshot) {
    let sink = Arc::new(MemorySink::new());
    let mut session = TuningSession::<f64>::new(space(), Box::new(RandomSearch::with_seed(seed)))
        .unwrap()
        .abort_condition(abort::evaluations(40))
        .max_pending(4)
        .trace_to(sink.clone() as Arc<dyn TraceSink>);
    let metrics = Arc::clone(session.metrics());
    let workers: Vec<_> = (0..4).map(|_| keyed_faulty()).collect();
    drive_session(&mut session, workers);
    session.finish().unwrap();
    (sink.take(), metrics.snapshot())
}

/// Strips an event down to its run-deterministic payload: kind, ticket,
/// point, outcome. Drops wall-clock fields and arrival numbering.
fn canonical(e: &TraceEvent) -> Option<String> {
    match e.event.as_str() {
        "handout" | "report" | "eval" => Some(format!(
            "{}|t={:?}|p={:?}|ok={:?}|f={:?}",
            e.event, e.ticket, e.point, e.ok, e.failure
        )),
        // The abort's `evaluations` stamp counts *applied* reports at the
        // moment the budget projection fired, which depends on arrival
        // timing — only the condition itself is deterministic.
        "abort" => Some(format!("abort|c={:?}", e.condition)),
        _ => None,
    }
}

/// A seeded 4-worker run emits the same multiset of deterministic trace
/// facts every time, no matter how the worker threads interleave.
#[test]
fn trace_event_multiset_is_stable_across_reruns() {
    let (a, snap_a) = traced_run(23);
    let (b, snap_b) = traced_run(23);

    let mut keys_a: Vec<_> = a.iter().filter_map(canonical).collect();
    let mut keys_b: Vec<_> = b.iter().filter_map(canonical).collect();
    assert!(!keys_a.is_empty(), "run emitted no canonical events");
    keys_a.sort();
    keys_b.sort();
    assert_eq!(keys_a, keys_b, "trace facts must not depend on scheduling");

    // Handouts are applied-order-forced, so even their *sequence* (not
    // just the multiset) is identical between runs.
    let handouts = |events: &[TraceEvent]| -> Vec<(Option<u64>, Option<Point>)> {
        events
            .iter()
            .filter(|e| e.event == "handout")
            .map(|e| (e.ticket, e.point.clone()))
            .collect()
    };
    assert_eq!(
        handouts(&a),
        handouts(&b),
        "handout sequence must be seeded"
    );

    assert_eq!(snap_a.evaluations, snap_b.evaluations);
    assert_eq!(snap_a.failures, snap_b.failures);
}

/// Every handed-out ticket gets exactly one report and one eval event,
/// and the stream ends with an abort event naming the fired condition.
#[test]
fn trace_stream_is_complete_and_balanced() {
    let (events, _) = traced_run(7);
    let count = |kind: &str| events.iter().filter(|e| e.event == kind).count();
    assert_eq!(count("handout"), 40);
    assert_eq!(count("report"), 40);
    assert_eq!(count("eval"), 40);
    assert_eq!(count("abort"), 1);
    // 4 workers each announce busy/idle once per evaluation they ran.
    assert_eq!(count("worker_busy"), 40);
    assert_eq!(count("worker_idle"), 40);

    let abort_event = events.iter().find(|e| e.event == "abort").unwrap();
    // The abort fires off the budget *projection* (applied + in-flight),
    // so its applied-evaluations stamp sits within one window of the
    // budget rather than exactly at it.
    let at_abort = abort_event.evaluations.unwrap();
    assert!(
        (36..=40).contains(&at_abort),
        "stamp {at_abort} out of range"
    );
    assert!(
        abort_event
            .condition
            .as_deref()
            .unwrap_or("")
            .contains("40"),
        "abort condition should render the budget: {abort_event:?}"
    );
    for e in &events {
        assert!(
            EVENT_KINDS.contains(&e.event.as_str()),
            "unknown event kind {:?}",
            e.event
        );
    }
}

/// The metrics registry and the session's own status must be two views of
/// the same counters: totals, the failure taxonomy, and the latency
/// histogram's population all agree.
#[test]
fn metrics_snapshot_agrees_with_session_status() {
    let sink = Arc::new(MemorySink::new());
    let mut session =
        TuningSession::<f64>::new(space(), Box::new(SimulatedAnnealing::with_seed(5)))
            .unwrap()
            .abort_condition(abort::evaluations(50))
            .max_pending(4)
            .trace_to(sink.clone() as Arc<dyn TraceSink>);
    let metrics = Arc::clone(session.metrics());
    let workers: Vec<_> = (0..4).map(|_| keyed_faulty()).collect();
    drive_session(&mut session, workers);

    let status = session.status();
    let snap = metrics.snapshot();
    assert_eq!(snap.evaluations, status.evaluations());
    assert_eq!(snap.valid_evaluations, status.valid_evaluations());
    assert_eq!(snap.failed_evaluations, status.failed_evaluations());
    assert!(snap.failed_evaluations > 0, "faulty cost fn must fail some");

    // Failure taxonomy: the registry's label->count map is exactly the
    // status's FailureKind histogram.
    let from_status: std::collections::BTreeMap<String, u64> = status
        .failure_counts()
        .into_iter()
        .map(|(kind, n)| (kind.label().to_string(), n))
        .collect();
    assert_eq!(snap.failures, from_status);

    // Every applied evaluation was observed by the latency histogram, and
    // the gauges describe the configured run shape.
    assert_eq!(snap.eval_latency.count, status.evaluations());
    assert_eq!(snap.window.capacity, 4);
    assert!(snap.window.peak >= 1 && snap.window.peak <= 4);
    assert_eq!(snap.workers.total, 4);
    assert_eq!(snap.workers.busy, 0, "run is over; nobody is evaluating");

    // The trace agrees too: failed eval events == failed_evaluations.
    let failed_evals = sink
        .events()
        .iter()
        .filter(|e| e.event == "eval" && e.ok == Some(false))
        .count() as u64;
    assert_eq!(failed_evals, snap.failed_evaluations);

    session.finish().unwrap();
}

/// The snapshot survives the NDJSON wire format losslessly — the service's
/// `stats` op and the journal-dir stats stream depend on this.
#[test]
fn metrics_snapshot_round_trips_through_json() {
    let (_, snap) = traced_run(11);
    let line = serde_json::to_string(&snap).unwrap();
    let back: MetricsSnapshot = serde_json::from_str(&line).unwrap();
    assert_eq!(back.evaluations, snap.evaluations);
    assert_eq!(back.failures, snap.failures);
    assert_eq!(back.eval_latency.count, snap.eval_latency.count);
    assert_eq!(back.window.capacity, snap.window.capacity);
    assert_eq!(back.workers.total, snap.workers.total);
    // The human summary renders without panicking and mentions the counts.
    let summary = snap.summary();
    assert!(summary.contains(&snap.evaluations.to_string()));
}
