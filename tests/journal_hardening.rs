//! Journal storage hardening: checkpoint compaction must be observably
//! invisible (checkpoint + tail replays bit-identically to the full
//! journal), a kill at any point of the compaction sequence must still
//! resume correctly, pre-checksum v1–v3 journals (and mixed-version files
//! they become after a v4 writer appends to them) must keep loading, and a
//! full disk must degrade the session to in-memory tuning instead of
//! killing it.

use atf_core::abort;
use atf_core::journal::{checkpoint_path, JournalHeader, LoadedJournal};
use atf_core::param::{tp, ParamGroup};
use atf_core::prelude::*;
use std::io::Write as _;
use std::path::{Path, PathBuf};

fn space() -> SearchSpace {
    let group = ParamGroup::new(vec![
        tp("X", Range::interval(1, 12)),
        tp("Y", Range::interval(1, 6)),
    ]);
    SearchSpace::generate(&[group])
}

/// Toy objective with a unique optimum at (X=7, Y=3).
fn objective() -> impl CostFunction<Cost = f64> {
    cost_fn(|c: &Config| {
        let x = c.get_u64("X") as f64;
        let y = c.get_u64("Y") as f64;
        (x - 7.0).abs() + (y - 3.0).abs()
    })
}

fn technique() -> Box<dyn SearchTechnique> {
    Box::new(SimulatedAnnealing::with_seed(41))
}

fn journal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("atf-jh-{tag}-{}.ndjson", std::process::id()))
}

fn cleanup(path: &Path) {
    std::fs::remove_file(path).ok();
    std::fs::remove_file(checkpoint_path(path)).ok();
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".ckpt.tmp");
    std::fs::remove_file(PathBuf::from(tmp)).ok();
}

/// Drives a session to completion, reporting the toy objective.
fn drive(session: &mut TuningSession<f64>) {
    let mut cf = objective();
    while let Some(config) = session.next_config() {
        let outcome = cf.evaluate(&config);
        session.report(outcome).unwrap();
    }
}

fn journaled_session(path: &Path, checkpoint_every: Option<usize>) -> TuningSession<f64> {
    let mut session = TuningSession::<f64>::new(space(), technique())
        .unwrap()
        .abort_condition(abort::evaluations(50));
    if let Some(every) = checkpoint_every {
        session = session.journal_checkpoint_every(every);
    }
    session.journal_to(path).unwrap()
}

fn fresh_session() -> TuningSession<f64> {
    TuningSession::<f64>::new(space(), technique())
        .unwrap()
        .abort_condition(abort::evaluations(50))
}

/// Checkpoint compaction is observably invisible: a run compacted every 8
/// entries loads (checkpoint + live tail) to exactly the entry sequence of
/// the same run journaled without compaction, and both resume to the same
/// final result.
#[test]
fn checkpoint_plus_tail_replays_bit_identically_to_the_full_journal() {
    let compacted = journal_path("ckpt-equiv-compacted");
    let plain = journal_path("ckpt-equiv-plain");
    cleanup(&compacted);
    cleanup(&plain);

    let mut a = journaled_session(&compacted, Some(8));
    drive(&mut a);
    let reference = a.finish().unwrap();
    let mut b = journaled_session(&plain, None);
    drive(&mut b);
    b.finish().unwrap();

    // Compaction actually happened: a checkpoint file exists and the live
    // tail is shorter than the uncompacted journal.
    assert!(checkpoint_path(&compacted).exists());
    assert!(
        std::fs::metadata(&compacted).unwrap().len() < std::fs::metadata(&plain).unwrap().len()
    );

    let merged = LoadedJournal::load_with_checkpoint(&compacted).unwrap();
    let full = LoadedJournal::load(&plain).unwrap();
    // `elapsed_ms` is real wall-clock and legitimately differs between two
    // separate runs; everything that determines the replayed search state
    // must be bit-identical.
    let strip_clock = |entries: &[atf_core::journal::JournalEntry]| {
        entries
            .iter()
            .cloned()
            .map(|mut e| {
                e.elapsed_ms = None;
                e
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(
        strip_clock(&merged.entries),
        strip_clock(&full.entries),
        "replay streams must be bit-identical"
    );
    assert_eq!(merged.entries.len() as u64, reference.evaluations);

    // And both journals resume a fresh session to the same state.
    let mut from_merged = fresh_session();
    let replayed = from_merged.resume_from_journal(&compacted).unwrap();
    assert_eq!(replayed, reference.evaluations);
    let mut from_full = fresh_session();
    from_full.resume_from_journal(&plain).unwrap();
    let (r1, r2) = (from_merged.finish().unwrap(), from_full.finish().unwrap());
    assert_eq!(r1.best_config, r2.best_config);
    assert_eq!(r1.best_cost, r2.best_cost);
    assert_eq!(r1.evaluations, r2.evaluations);
    assert_eq!(r1.best_config, reference.best_config);

    cleanup(&compacted);
    cleanup(&plain);
}

/// Kill mid-compaction, *after* the checkpoint rename but *before* the
/// tail was rewritten: checkpoint and tail then hold the same entries, and
/// resume must deduplicate instead of double-replaying.
#[test]
fn kill_after_checkpoint_rename_does_not_double_replay() {
    let path = journal_path("kill-post-rename");
    cleanup(&path);

    let mut session = journaled_session(&path, None);
    let mut cf = objective();
    for _ in 0..17 {
        let config = session.next_config().expect("budget not exhausted yet");
        let outcome = cf.evaluate(&config);
        session.report(outcome).unwrap();
    }
    drop(session); // crash: 17 entries on disk, no finish

    // The checkpoint file format is the journal file format, so copying
    // the journal over the checkpoint path simulates the crash window
    // between `rename(tmp, ckpt)` and the tail rewrite exactly.
    std::fs::copy(&path, checkpoint_path(&path)).unwrap();

    let mut resumed = fresh_session();
    let replayed = resumed.resume_from_journal(&path).unwrap();
    assert_eq!(
        replayed, 17,
        "every entry exactly once despite the duplicate tail"
    );
    drive(&mut resumed);
    let resumed = resumed.finish().unwrap();

    // Reference: the same run uninterrupted.
    let mut reference = fresh_session();
    drive(&mut reference);
    let reference = reference.finish().unwrap();
    assert_eq!(resumed.best_config, reference.best_config);
    assert_eq!(resumed.best_cost, reference.best_cost);
    assert_eq!(resumed.evaluations, reference.evaluations);

    cleanup(&path);
}

/// Kill mid-compaction *before* the atomic rename: a leftover `.ckpt.tmp`
/// must be ignored entirely.
#[test]
fn kill_before_checkpoint_rename_ignores_the_tmp_file() {
    let path = journal_path("kill-pre-rename");
    cleanup(&path);

    let mut session = journaled_session(&path, None);
    let mut cf = objective();
    for _ in 0..17 {
        let config = session.next_config().expect("budget not exhausted yet");
        let outcome = cf.evaluate(&config);
        session.report(outcome).unwrap();
    }
    drop(session);

    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".ckpt.tmp");
    std::fs::copy(&path, PathBuf::from(tmp)).unwrap();

    let mut resumed = fresh_session();
    assert_eq!(resumed.resume_from_journal(&path).unwrap(), 17);

    cleanup(&path);
}

/// Rewrites a genuine journal into the pre-checksum on-disk format of an
/// older version: v1 (no ticket, no elapsed, no header window), v2 (ticket
/// and window, no elapsed), or v3 (everything, bare unchecksummed lines).
fn strip_keys(value: &mut serde_json::Value, keys: &[&str]) {
    if let serde_json::Value::Object(fields) = value {
        fields.retain(|(k, _)| !keys.contains(&k.as_str()));
    }
}

fn downgrade_journal(from: &Path, to: &Path, version: u32) {
    let loaded = LoadedJournal::load(from).unwrap();
    let mut out = String::new();
    let header = JournalHeader {
        version,
        ..loaded.header.clone()
    };
    let mut header_json = serde_json::to_value(&header);
    if version < 2 {
        strip_keys(&mut header_json, &["window"]);
    }
    out.push_str(&serde_json::to_string(&header_json).unwrap());
    out.push('\n');
    for entry in &loaded.entries {
        let mut line = serde_json::to_value(entry);
        if version < 2 {
            strip_keys(&mut line, &["ticket"]);
        }
        if version < 3 {
            strip_keys(&mut line, &["elapsed_ms"]);
        }
        out.push_str(&serde_json::to_string(&line).unwrap());
        out.push('\n');
    }
    std::fs::write(to, out).unwrap();
}

/// v1/v2/v3 journals (bare entry lines, no checksums) with a torn tail
/// resume exactly like the v4 original; the resumed run then appends v4
/// checksummed lines to the same file, and that mixed-version file still
/// loads and resumes.
#[test]
fn old_version_journals_with_torn_tails_resume_identically() {
    let v4 = journal_path("mixed-v4");
    cleanup(&v4);
    let mut session = journaled_session(&v4, None);
    let mut cf = objective();
    for _ in 0..17 {
        let config = session.next_config().expect("budget not exhausted yet");
        let outcome = cf.evaluate(&config);
        session.report(outcome).unwrap();
    }
    drop(session);

    // Downgrade the 17-entry journal for every old version *before* the
    // reference resume appends the rest of the run to the v4 file.
    let old_paths: Vec<(u32, PathBuf)> = [1u32, 2, 3]
        .into_iter()
        .map(|version| {
            let old = journal_path(&format!("mixed-v{version}"));
            cleanup(&old);
            downgrade_journal(&v4, &old, version);
            (version, old)
        })
        .collect();

    // The v4 reference resume, driven to completion.
    let mut reference = fresh_session();
    assert_eq!(reference.resume_from_journal(&v4).unwrap(), 17);
    drive(&mut reference);
    let reference = reference.finish().unwrap();

    for (version, old) in old_paths {
        // A crash tore the last line mid-write.
        let mut f = std::fs::OpenOptions::new().append(true).open(&old).unwrap();
        f.write_all(b"{\"evaluation\":99,\"point\":[3").unwrap();
        drop(f);

        let mut resumed = fresh_session();
        let replayed = resumed
            .resume_from_journal(&old)
            .unwrap_or_else(|e| panic!("v{version} journal failed to resume: {e}"));
        assert_eq!(
            replayed, 17,
            "v{version}: torn tail must cost zero intact entries"
        );
        drive(&mut resumed);
        let resumed = resumed.finish().unwrap();
        assert_eq!(resumed.best_config, reference.best_config, "v{version}");
        assert_eq!(resumed.best_cost, reference.best_cost, "v{version}");
        assert_eq!(resumed.evaluations, reference.evaluations, "v{version}");

        // The file now starts with v1–v3 bare lines and ends with v4
        // checksummed lines written by the resumed run: the mixed file
        // must load whole and resume once more.
        let mixed = LoadedJournal::load(&old).unwrap();
        assert_eq!(
            mixed.entries.len() as u64,
            reference.evaluations,
            "v{version}"
        );
        let mut again = fresh_session();
        assert_eq!(
            again.resume_from_journal(&old).unwrap(),
            reference.evaluations,
            "v{version}"
        );
        cleanup(&old);
    }
    cleanup(&v4);
}

/// A full disk mid-run degrades journaling instead of killing the session:
/// the run continues in-memory, reports the degradation through
/// `journal_degraded()` and the metrics registry, and still finds the
/// optimum. Under `--strict-journal` semantics the same failure is fatal.
#[test]
fn journal_write_failure_degrades_without_killing_the_run() {
    let path = journal_path("disk-full");
    cleanup(&path);

    let mut session = journaled_session(&path, None);
    let mut cf = objective();
    for _ in 0..5 {
        let config = session.next_config().expect("budget not exhausted yet");
        let outcome = cf.evaluate(&config);
        session.report(outcome).unwrap();
    }
    session.inject_journal_failures(1); // the disk "fills up" here
    drive(&mut session);

    assert!(
        session.journal_degraded().is_some(),
        "the session must remember why journaling stopped"
    );
    assert!(session.metrics().snapshot().journal_errors >= 1);
    let result = session.finish().unwrap();
    assert_eq!(result.evaluations, 50, "the run itself must be unharmed");

    // The journal holds exactly the pre-failure prefix — intact, loadable.
    let loaded = LoadedJournal::load(&path).unwrap();
    assert_eq!(loaded.entries.len(), 5);
    cleanup(&path);

    // Strict mode: the same injected failure is fatal at the report.
    let strict_path = journal_path("disk-full-strict");
    cleanup(&strict_path);
    let mut strict = journaled_session(&strict_path, None).strict_journal(true);
    strict.inject_journal_failures(1);
    let mut cf = objective();
    let config = strict.next_config().unwrap();
    let outcome = cf.evaluate(&config);
    assert!(
        strict.report(outcome).is_err(),
        "strict journaling must fail the report on a write error"
    );
    cleanup(&strict_path);
}

/// Regression fence: appending after a torn tail must truncate the torn
/// line first. Gluing the new entry onto the torn bytes would make the
/// *next* resume drop both — losing every post-resume evaluation.
#[test]
fn resume_after_torn_tail_keeps_post_resume_entries_loadable() {
    let path = journal_path("torn-then-append");
    cleanup(&path);

    let mut session = journaled_session(&path, None);
    let mut cf = objective();
    for _ in 0..10 {
        let config = session.next_config().expect("budget not exhausted yet");
        let outcome = cf.evaluate(&config);
        session.report(outcome).unwrap();
    }
    drop(session);

    // Crash mid-write: half an entry line at the tail.
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    f.write_all(b"{\"crc\":\"dead\",\"entry\":{\"evaluation\":11,\"point\":[2")
        .unwrap();
    drop(f);

    // First resume: 10 intact entries; continue for 10 more, crash again.
    let mut resumed = fresh_session();
    assert_eq!(resumed.resume_from_journal(&path).unwrap(), 10);
    let mut cf = objective();
    for _ in 0..10 {
        let config = resumed.next_config().expect("budget not exhausted yet");
        let outcome = cf.evaluate(&config);
        resumed.report(outcome).unwrap();
    }
    drop(resumed);

    // Second resume sees all 20 entries — nothing was glued to torn bytes.
    let mut again = fresh_session();
    assert_eq!(again.resume_from_journal(&path).unwrap(), 20);
    drive(&mut again);
    let finished = again.finish().unwrap();
    assert_eq!(finished.evaluations, 50);
    cleanup(&path);
}
