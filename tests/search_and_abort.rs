//! Integration tests for search techniques and abort conditions against a
//! real (simulated) kernel cost function.

use atf_core::expr::{cst, param};
use atf_core::prelude::*;
use atf_ocl::{buffer_random_f32, scalar, scalar_random_f32};
use clblast::SaxpyKernel;
use ocl_sim::DeviceModel;
use std::time::Duration;

fn saxpy_cf(n: u64) -> atf_ocl::OclCostFunction {
    atf_ocl::ocl_on(DeviceModel::tesla_k20m(), SaxpyKernel)
        .arg(scalar(ocl_sim::Scalar::U64(n)))
        .arg(scalar_random_f32())
        .arg(buffer_random_f32(n as usize))
        .arg(buffer_random_f32(n as usize))
        .global_size([cst(n) / param("WPT")])
        .local_size([param("LS")])
        .build()
}

/// Every built-in technique must finish a real tuning run within budget and
/// return a valid best configuration.
#[test]
fn all_techniques_complete_on_real_cost_function() {
    let n = 1u64 << 14;
    let groups = clblast::saxpy_space(n);
    let techniques: Vec<(&str, Box<dyn SearchTechnique>)> = vec![
        ("exhaustive", Box::new(Exhaustive::new())),
        ("random", Box::new(RandomSearch::with_seed(1))),
        ("annealing", Box::new(SimulatedAnnealing::with_seed(1))),
        ("nelder-mead", Box::new(NelderMead::with_seed(1))),
        ("torczon", Box::new(Torczon::with_seed(1))),
        ("pattern", Box::new(PatternSearch::with_seed(1))),
        ("mutation", Box::new(GreedyMutation::with_seed(1))),
        (
            "differential-evolution",
            Box::new(DifferentialEvolution::with_seed(1)),
        ),
        ("particle-swarm", Box::new(ParticleSwarm::with_seed(1))),
        (
            "genetic-algorithm",
            Box::new(GeneticAlgorithm::with_seed(1)),
        ),
        ("ensemble", Box::new(Ensemble::opentuner_default(1))),
        ("ensemble-extended", Box::new(Ensemble::extended(1))),
    ];
    for (name, tech) in techniques {
        let mut cf = saxpy_cf(n);
        let result = Tuner::new()
            .technique(tech)
            .abort_condition(abort::evaluations(150))
            .tune(&groups, &mut cf)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(result.evaluations <= 150, "{name} overspent");
        let wpt = result.best_config.get_u64("WPT");
        let ls = result.best_config.get_u64("LS");
        assert_eq!(n % wpt, 0, "{name} returned invalid WPT");
        assert_eq!((n / wpt) % ls, 0, "{name} returned invalid LS");
        assert!(result.best_cost.is_finite(), "{name} returned no cost");
    }
}

#[test]
fn duration_abort_stops_promptly() {
    let n = 1u64 << 20;
    let groups = clblast::saxpy_space(n);
    let mut cf = saxpy_cf(n);
    let start = std::time::Instant::now();
    let result = Tuner::new()
        .technique(RandomSearch::with_seed(2))
        .abort_condition(abort::duration(Duration::from_millis(300)))
        .tune(&groups, &mut cf)
        .unwrap();
    // Wall clock: generation + exploration; exploration itself must stop
    // within a small multiple of the budget.
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "took {:?}",
        start.elapsed()
    );
    assert!(result.elapsed >= Duration::from_millis(300));
}

#[test]
fn cost_abort_stops_on_target() {
    let n = 1u64 << 18;
    let groups = clblast::saxpy_space(n);
    // First learn a reachable target from a quick random probe.
    let mut cf = saxpy_cf(n);
    let probe = Tuner::new()
        .technique(RandomSearch::with_seed(3))
        .abort_condition(abort::evaluations(50))
        .tune(&groups, &mut cf)
        .unwrap();
    let target = probe.best_cost * 1.5;
    let mut cf = saxpy_cf(n);
    let result = Tuner::new()
        .technique(RandomSearch::with_seed(4))
        .abort_condition(abort::cost(target) | abort::evaluations(5000))
        .tune(&groups, &mut cf)
        .unwrap();
    assert!(result.best_cost <= target || result.evaluations == 5000);
}

#[test]
fn speedup_abort_ends_stagnating_runs() {
    let n = 1u64 << 16;
    let groups = clblast::saxpy_space(n);
    let mut cf = saxpy_cf(n);
    let result = Tuner::new()
        .technique(RandomSearch::with_seed(5))
        // Stop when 60 consecutive evaluations did not improve the best by
        // ≥ 5%; never run longer than 5000.
        .abort_condition(abort::speedup_over_evaluations(1.05, 60) | abort::evaluations(5000))
        .tune(&groups, &mut cf)
        .unwrap();
    assert!(
        result.evaluations < 5000,
        "stagnation abort never fired ({} evaluations)",
        result.evaluations
    );
    assert!(result.evaluations >= 60);
}

#[test]
fn combined_and_condition_requires_both() {
    let n = 1u64 << 12;
    let groups = clblast::saxpy_space(n);
    let mut cf = saxpy_cf(n);
    // evaluations(10) && evaluations(30) ≡ evaluations(30).
    let result = Tuner::new()
        .technique(RandomSearch::with_seed(6))
        .abort_condition(abort::evaluations(10) & abort::evaluations(30))
        .tune(&groups, &mut cf)
        .unwrap();
    assert_eq!(result.evaluations, 30);
}

#[test]
fn default_abort_is_space_size() {
    let n = 64u64;
    let groups = clblast::saxpy_space(n);
    let space_size = SearchSpace::count(&groups).unwrap();
    let mut cf = saxpy_cf(n);
    let result = Tuner::new()
        .technique(RandomSearch::with_seed(7)) // never exhausts on its own
        .tune(&groups, &mut cf)
        .unwrap();
    assert_eq!(result.evaluations as u128, space_size);
}

#[test]
fn grouped_parameters_tune_end_to_end() {
    // Two independent groups (Fig. 1 style) tuned with parallel generation:
    // saxpy's WPT/LS plus an independent dummy "BATCH" parameter that the
    // cost function folds in.
    let n = 1u64 << 12;
    let g1 = ParamGroup::new(vec![
        tp_c("WPT", Range::interval(1, n), divides(cst(n))),
        tp_c("LS", Range::interval(1, n), divides(cst(n) / param("WPT"))),
    ]);
    let g2 = ParamGroup::new(vec![tp("BATCH", Range::set([1u64, 2, 4, 8]))]);
    let mut ocl = saxpy_cf(n);
    let mut cf = try_cost_fn(move |cfg: &Config| {
        let t = ocl.measure(cfg)?;
        let batch = cfg.get_u64("BATCH") as f64;
        // Prefer BATCH = 4.
        Ok(t * (1.0 + (batch.log2() - 2.0).abs()))
    });
    let result = Tuner::new()
        .technique(Ensemble::opentuner_default(8))
        .abort_condition(abort::evaluations(500))
        .parallel_generation(true)
        .tune(&[g1, g2], &mut cf)
        .unwrap();
    assert_eq!(result.best_config.get_u64("BATCH"), 4);
}

#[test]
fn auto_grouping_matches_manual_grouping() {
    // The saxpy parameters plus an independent BATCH parameter: auto_group
    // must find the same partition a careful user would declare, and tuning
    // over it must produce the same space size.
    let n = 1u64 << 10;
    let params = vec![
        tp_c("WPT", Range::interval(1, n), divides(cst(n))),
        tp_c("LS", Range::interval(1, n), divides(cst(n) / param("WPT"))),
        tp("BATCH", Range::set([1u64, 2, 4])),
    ];
    let auto = atf_core::param::auto_group(params);
    assert_eq!(auto.len(), 2);
    let auto_space = SearchSpace::count(&auto).unwrap();

    let manual = vec![
        ParamGroup::new(vec![
            tp_c("WPT", Range::interval(1, n), divides(cst(n))),
            tp_c("LS", Range::interval(1, n), divides(cst(n) / param("WPT"))),
        ]),
        ParamGroup::new(vec![tp("BATCH", Range::set([1u64, 2, 4]))]),
    ];
    assert_eq!(auto_space, SearchSpace::count(&manual).unwrap());

    // And tune_auto drives the whole pipeline.
    let mut cf = cost_fn(|c: &Config| {
        c.get_u64("WPT") as f64 + c.get_u64("LS") as f64 + c.get_u64("BATCH") as f64
    });
    let r = Tuner::new()
        .technique(Ensemble::opentuner_default(12))
        .abort_condition(abort::evaluations(200))
        .tune_auto(
            vec![
                tp_c("WPT", Range::interval(1, n), divides(cst(n))),
                tp_c("LS", Range::interval(1, n), divides(cst(n) / param("WPT"))),
                tp("BATCH", Range::set([1u64, 2, 4])),
            ],
            &mut cf,
        )
        .unwrap();
    assert_eq!(r.best_cost, 3.0); // WPT=1, LS=1, BATCH=1
}

#[test]
fn tuning_database_round_trip_through_real_run() {
    let n = 1u64 << 12;
    let groups = clblast::saxpy_space(n);
    let mut cf = saxpy_cf(n);
    let result = Tuner::new()
        .technique(RandomSearch::with_seed(8))
        .abort_condition(abort::evaluations(100))
        .tune(&groups, &mut cf)
        .unwrap();

    let mut db = TuningDatabase::new();
    assert!(db.store(
        "saxpy",
        "Tesla K20m",
        &format!("n{n}"),
        &result.best_config,
        result.best_cost,
        result.evaluations,
        result.space_size,
    ));
    let path = std::env::temp_dir().join(format!("atf-int-db-{}.json", std::process::id()));
    db.save(&path).unwrap();
    let loaded = TuningDatabase::load(&path).unwrap();
    let stored = loaded
        .lookup_config("saxpy", "Tesla K20m", &format!("n{n}"))
        .unwrap();
    assert_eq!(stored, result.best_config);

    // The stored configuration must still measure at (nearly) the recorded
    // cost — the database is a usable production artifact.
    let mut cf = saxpy_cf(n);
    let re_measured = cf.measure(&stored).unwrap();
    assert!((re_measured - result.best_cost).abs() / result.best_cost < 1e-9);
    std::fs::remove_file(path).ok();
}
