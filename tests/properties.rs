//! Property-based tests over the core invariants, with randomly generated
//! parameter systems.

use atf_core::constraint::{divides, greater_than, is_multiple_of, less_than};
use atf_core::expr::{cst, param};
use atf_core::param::{tp, tp_c, Param, ParamGroup};
use atf_core::prelude::*;
use atf_core::space::cross_product_filter;
use proptest::prelude::*;

/// Strategy: a random small parameter group with chained constraints, where
/// each parameter optionally depends on the previous one.
fn small_group() -> impl Strategy<Value = ParamGroup> {
    let names = ["P0", "P1", "P2", "P3"];
    (
        2usize..=4,                          // number of parameters
        prop::collection::vec(1u64..=12, 4), // range ends
        prop::collection::vec(0u8..4, 4),    // constraint selector per param
    )
        .prop_map(move |(n, ends, kinds)| {
            let mut params: Vec<Param> = Vec::new();
            for i in 0..n {
                let name = names[i];
                let range = Range::interval(1, ends[i].max(1));
                let p = if i == 0 {
                    tp(name, range)
                } else {
                    let prev = names[i - 1];
                    match kinds[i] {
                        0 => tp(name, range),
                        1 => tp_c(name, range, divides(param(prev))),
                        2 => tp_c(name, range, is_multiple_of(param(prev))),
                        _ => tp_c(
                            name,
                            range,
                            less_than(param(prev) * 2u64) & greater_than(cst(0u64)),
                        ),
                    }
                };
                params.push(p);
            }
            ParamGroup::new(params)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The constrained-range DFS produces exactly the same set of valid
    /// configurations as the brute-force cross-product-then-filter oracle.
    #[test]
    fn generation_matches_cross_product_oracle(group in small_group()) {
        let groups = vec![group];
        let fast = SearchSpace::generate(&groups);
        let slow = cross_product_filter(&groups, u64::MAX, None).unwrap();
        prop_assert_eq!(fast.len(), slow.len() as u128);
        let fast_all: Vec<Config> = fast.iter().collect();
        for cfg in &slow {
            prop_assert!(fast_all.contains(cfg), "missing {:?}", cfg);
        }
    }

    /// Counting without materialization agrees with generation.
    #[test]
    fn count_equals_generate(group in small_group()) {
        let groups = vec![group];
        prop_assert_eq!(
            SearchSpace::count(&groups).unwrap(),
            SearchSpace::generate(&groups).len()
        );
    }

    /// Parallel generation is equivalent to sequential generation.
    #[test]
    fn parallel_equals_sequential(g1 in small_group(), g2 in small_group()) {
        // Rename the second group's parameters to avoid collisions.
        // Constraints of g2 reference its old names, which are absent after
        // renaming; drop them (this property is about the generation
        // machinery, not the constraints).
        let renamed: Vec<Param> = g2
            .params()
            .iter()
            .map(|p| Param::new(format!("Q{}", p.name()), p.range().clone()))
            .collect();
        let g2 = ParamGroup::new(renamed);
        let groups = vec![g1, g2];
        let seq = SearchSpace::generate(&groups);
        let par = SearchSpace::generate_parallel(&groups);
        prop_assert_eq!(seq.len(), par.len());
        if !seq.is_empty() {
            let step = (seq.len() / 17).max(1);
            let mut i = 0u128;
            while i < seq.len() {
                prop_assert_eq!(seq.get(i), par.get(i));
                i += step;
            }
        }
    }

    /// Flat-index decompose/compose is a bijection and consistent with
    /// coordinate access.
    #[test]
    fn index_bijection(g1 in small_group(), g2 in small_group()) {
        let renamed: Vec<Param> = g2
            .params()
            .iter()
            .map(|p| Param::new(format!("Q{}", p.name()), p.range().clone()))
            .collect();
        let groups = vec![g1, ParamGroup::new(renamed)];
        let space = SearchSpace::generate(&groups);
        if space.is_empty() {
            return Ok(());
        }
        let step = (space.len() / 29).max(1);
        let mut i = 0u128;
        while i < space.len() {
            let coords = space.decompose(i);
            prop_assert_eq!(space.compose(&coords), i);
            prop_assert_eq!(space.get(i), space.get_by_coords(&coords));
            i += step;
        }
    }

    /// Every generated configuration satisfies its declared constraints.
    #[test]
    fn generated_configs_satisfy_constraints(group in small_group()) {
        let groups = vec![group.clone()];
        let space = SearchSpace::generate(&groups);
        for cfg in space.iter() {
            // Re-check each constraint against the *prefix* configuration,
            // mirroring generation semantics.
            let mut prefix = Config::new();
            for p in group.params() {
                let v = cfg[p.name()].clone();
                if let Some(c) = p.constraint() {
                    prop_assert!(c.check(&v, &prefix), "{:?} violates {:?}", cfg, c);
                }
                prefix.push(p.name().into(), v);
            }
        }
    }

    /// Range laws: get(i) enumerates exactly len() elements, iter agrees
    /// with get, and contains agrees with enumeration.
    #[test]
    fn range_laws(begin in 0u64..50, span in 0u64..40, step in 1u64..7) {
        let end = begin + span;
        let r = Range::interval_step(begin, end, step);
        let items: Vec<Value> = r.iter().collect();
        prop_assert_eq!(items.len() as u64, r.len());
        for (i, v) in items.iter().enumerate() {
            prop_assert_eq!(&r.get(i as u64), v);
            prop_assert!(r.contains(v));
        }
        // A value between grid points is not contained.
        if step > 1 && !r.is_empty() {
            let off = Value::from(begin + 1);
            prop_assert_eq!(r.contains(&off), (1 % step) == 0);
        }
    }

    /// Lexicographic cost pairs: ordering by pair == ordering by first then
    /// second component.
    #[test]
    fn lexicographic_pair_order(a1 in 0.0f64..10.0, a2 in 0.0f64..10.0,
                                b1 in 0.0f64..10.0, b2 in 0.0f64..10.0) {
        let p = (a1, a2);
        let q = (b1, b2);
        let expected = if a1 == b1 { a2 < b2 } else { a1 < b1 };
        prop_assert_eq!(p < q, expected);
    }

    /// Simulated annealing acceptance: always accepts improvements, and for
    /// regressions the probability is within (0, 1] and monotone in T.
    #[test]
    fn annealing_acceptance_laws(t in 0.1f64..10.0, delta in 0.0f64..5.0) {
        use atf_core::search::annealing::SimulatedAnnealing;
        let p_better = SimulatedAnnealing::acceptance_probability(t + delta, t, 4.0, t);
        prop_assert_eq!(p_better, 1.0);
        let p_worse = SimulatedAnnealing::acceptance_probability(t, t + delta, 4.0, t);
        prop_assert!(p_worse > 0.0 && p_worse <= 1.0);
        let p_hotter = SimulatedAnnealing::acceptance_probability(t, t + delta, 8.0, t);
        prop_assert!(p_hotter >= p_worse - 1e-12);
    }

    /// The exhaustive technique visits a space of size |dims| exactly once,
    /// regardless of shape.
    #[test]
    fn exhaustive_visits_once(sizes in prop::collection::vec(1u64..6, 1..4)) {
        use atf_core::search::{Exhaustive, SearchTechnique, SpaceDims};
        let total: u64 = sizes.iter().product();
        let mut t = Exhaustive::new();
        t.initialize(SpaceDims::new(sizes));
        let mut seen = std::collections::HashSet::new();
        while let Some(p) = t.get_next_point() {
            prop_assert!(seen.insert(p));
            t.report_cost(0.0);
        }
        prop_assert_eq!(seen.len() as u64, total);
    }

    /// The preprocessor substitutes exactly whole identifiers: substituting
    /// then scanning finds no remaining defined names.
    #[test]
    fn preprocessor_total_substitution(v1 in 1u64..1000, v2 in 1u64..1000) {
        use ocl_sim::preprocessor::{substitute, DefineMap};
        let src = "a WPT b LS c WPT_X dWPT WPT;LS(WPT)";
        let defs = DefineMap::new()
            .with("WPT", v1.to_string())
            .with("LS", v2.to_string());
        let out = substitute(src, &defs);
        // Remaining "WPT" occurrences may only be inside longer identifiers.
        for (i, _) in out.match_indices("WPT") {
            let before = out[..i].chars().next_back();
            let after = out[i + 3..].chars().next();
            let glued = before.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
                || after.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
            prop_assert!(glued, "bare WPT left in `{}`", out);
        }
    }
}

#[test]
fn xgemm_space_sample_against_kernel_validation() {
    // Every configuration of the generated XgemmDirect space must pass the
    // kernel's own interdependency validation (declarative constraints ==
    // kernel requirements).
    assert!(clblast::xgemm_space::space_is_sound(
        &clblast::xgemm_space::atf_space_wgd_max(20),
        500,
    ));
}

/// A deterministic synthetic cost for a configuration (FNV-style mix of
/// names and values), with ~1 in 6 configurations "failing to measure" so
/// failure accounting is exercised too.
fn synthetic_cost(config: &Config) -> Option<f64> {
    let mut h: u64 = 0xcbf29ce484222325;
    for (name, value) in config.iter() {
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        h = (h ^ value.as_u64().unwrap_or(0)).wrapping_mul(0x100000001b3);
    }
    (!h.is_multiple_of(6)).then(|| 1.0 + (h % 10_000) as f64 / 7.0)
}

static DB_CASE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Driving exhaustive search step by step through a `TuningSession`
    /// yields the identical `TuningResult` as `Tuner::tune` on the same
    /// space — the tentpole refactor changes no observable behavior.
    #[test]
    fn session_equals_tuner_on_random_spaces(group in small_group()) {
        let groups = vec![group];
        let space = SearchSpace::generate(&groups);
        if space.is_empty() {
            return Ok(());
        }

        let mut cf = try_cost_fn(|c: &Config| {
            synthetic_cost(c).ok_or(CostError::RunFailed("synthetic failure".into()))
        });
        let reference = Tuner::new()
            .technique(Exhaustive::new())
            .tune_space(&space, &mut cf);

        let mut session =
            TuningSession::<f64>::new(space.clone(), Box::new(Exhaustive::new())).unwrap();
        while let Some(config) = session.next_config() {
            session.report_cost(synthetic_cost(&config)).unwrap();
        }
        let stepped = session.finish();

        match (reference, stepped) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.best_config, b.best_config);
                prop_assert_eq!(a.best_cost, b.best_cost);
                prop_assert_eq!(a.evaluations, b.evaluations);
                prop_assert_eq!(a.valid_evaluations, b.valid_evaluations);
                prop_assert_eq!(a.failed_evaluations, b.failed_evaluations);
                prop_assert_eq!(a.space_size, b.space_size);
                prop_assert_eq!(a.improvements.len(), b.improvements.len());
            }
            (Err(_), Err(_)) => {} // both saw only failing measurements
            (a, b) => prop_assert!(false, "tuner {:?} vs session {:?}", a, b),
        }
    }

    /// `TuningDatabase::merge` is monotone: after merging, every key holds
    /// the cheapest record either side ever stored, and no existing record
    /// got costlier.
    #[test]
    fn db_merge_is_monotone(
        left in prop::collection::vec((0u8..3, 0u8..2, 1u64..1000), 0..12),
        right in prop::collection::vec((0u8..3, 0u8..2, 1u64..1000), 0..12),
    ) {
        let kernels = ["gemm", "conv", "saxpy"];
        let devices = ["cpu", "gpu"];
        let config = Config::from_pairs([("X", Value::UInt(1))]);
        let fill = |stores: &[(u8, u8, u64)]| {
            let mut db = TuningDatabase::new();
            let mut cheapest = std::collections::BTreeMap::new();
            for &(k, d, c) in stores {
                let (kernel, device) = (kernels[k as usize], devices[d as usize]);
                let cost = c as f64;
                db.store(kernel, device, "w", &config, cost, 1, 2);
                cheapest
                    .entry((kernel, device))
                    .and_modify(|best: &mut f64| *best = best.min(cost))
                    .or_insert(cost);
            }
            (db, cheapest)
        };
        let (mut a, best_a) = fill(&left);
        let (b, best_b) = fill(&right);

        a.merge(&b);

        let mut expected = best_a.clone();
        for (key, cost) in &best_b {
            expected
                .entry(*key)
                .and_modify(|best| *best = best.min(*cost))
                .or_insert(*cost);
        }
        prop_assert_eq!(a.len(), expected.len());
        for ((kernel, device), cost) in &expected {
            let record = a.lookup(kernel, device, "w").unwrap();
            prop_assert_eq!(record.cost, *cost);
            // Monotone: never costlier than what either side held.
            if let Some(before) = best_a.get(&(*kernel, *device)) {
                prop_assert!(record.cost <= *before);
            }
        }
    }

    /// A database round-trips unchanged through its JSON file format.
    #[test]
    fn db_round_trips_through_file(
        stores in prop::collection::vec((0u8..3, 0u8..2, 1u64..1000), 1..10),
        value in 1u64..64,
    ) {
        let kernels = ["gemm", "conv", "saxpy"];
        let devices = ["cpu", "gpu"];
        let config = Config::from_pairs([
            ("X", Value::UInt(value)),
            ("MODE", Value::Symbol("vec4".into())),
            ("PAD", Value::Bool(value % 2 == 0)),
        ]);
        let mut db = TuningDatabase::new();
        for &(k, d, c) in &stores {
            db.store(kernels[k as usize], devices[d as usize], "w", &config, c as f64, c, 99);
        }

        let case = DB_CASE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let path = std::env::temp_dir()
            .join(format!("atf-prop-db-{}-{case}.json", std::process::id()));
        db.save(&path).unwrap();
        let loaded = TuningDatabase::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(loaded.len(), db.len());
        for record in db.records() {
            let found = loaded
                .lookup(&record.kernel, &record.device, &record.workload)
                .unwrap();
            prop_assert_eq!(found, record);
        }
    }
}
