//! Integration tests for the search-space construction engine
//! (`atf_core::spacegen`): compiled-constraint generation must be
//! bit-identical to the reference predicate walk on randomized specs,
//! chunked parallel generation must be bit-identical at any thread count,
//! lazy spaces must agree with materialized ones through the whole
//! indexable-space interface, oversized counts must fail structurally,
//! and the service's spec-keyed space cache must survive a restart.

use atf_core::constraint::{divides, equal, greater_than, is_multiple_of, less_than, unequal};
use atf_core::expr::{cst, param};
use atf_core::param::{tp, tp_c, Param, ParamGroup};
use atf_core::prelude::*;
use atf_core::spacegen::generate_group_chunked;
use atf_core::trace::NullSink;
use proptest::prelude::*;

/// Strategy: a random constrained group mixing every compilable alias
/// atom plus unconstrained parameters — the shapes the constraint
/// compiler must reproduce exactly.
fn random_group() -> impl Strategy<Value = ParamGroup> {
    let names = ["Q0", "Q1", "Q2", "Q3", "Q4"];
    (
        2usize..=5,                          // number of parameters
        prop::collection::vec(1u64..=14, 5), // range ends
        prop::collection::vec(0u8..9, 5),    // constraint selector per param
    )
        .prop_map(move |(n, ends, kinds)| {
            let mut params: Vec<Param> = Vec::new();
            for i in 0..n {
                let name = names[i];
                let range = Range::interval(1, ends[i].max(1));
                let p = if i == 0 {
                    tp(name, range)
                } else {
                    let prev = names[i - 1];
                    match kinds[i] {
                        0 => tp(name, range),
                        1 => tp_c(name, range, divides(param(prev))),
                        2 => tp_c(name, range, is_multiple_of(param(prev))),
                        3 => tp_c(name, range, divides(param(prev)) & unequal(param(prev))),
                        4 => tp_c(
                            name,
                            range,
                            less_than(param(prev) * 2u64) | greater_than(cst(6u64)),
                        ),
                        5 => tp_c(name, range, less_than(param(prev)).not()),
                        // Comparison conjuncts: the interval-tightening
                        // paths (dynamic and constant thresholds, both
                        // cut directions, exact equality).
                        6 => tp_c(name, range, greater_than(param(prev)) & divides(cst(12u64))),
                        7 => tp_c(name, range, equal(param(prev))),
                        _ => tp_c(name, range, greater_than(cst(3u64)) & less_than(cst(11u64))),
                    }
                };
                params.push(p);
            }
            ParamGroup::new(params)
        })
}

fn flatten(gs: &GroupSpace) -> Vec<Vec<Value>> {
    (0..gs.len()).map(|i| gs.values(i).to_vec()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The compiled generator and the per-candidate reference walk agree
    /// exactly — same configurations, same order.
    #[test]
    fn compiled_equals_reference(group in random_group()) {
        let reference = GroupSpace::generate_reference(&group);
        let compiled = GroupSpace::generate(&group);
        prop_assert_eq!(reference.names(), compiled.names());
        prop_assert_eq!(flatten(&reference), flatten(&compiled));
    }

    /// Chunked generation is bit-identical to sequential output at 1, 2,
    /// and 8 threads.
    #[test]
    fn chunked_is_bit_identical_at_any_thread_count(group in random_group()) {
        let sequential = flatten(&GroupSpace::generate(&group));
        for threads in [1usize, 2, 8] {
            let chunked = generate_group_chunked(&group, threads, u64::MAX, None, &NullSink, 0)
                .expect("unlimited generation cannot fail");
            prop_assert_eq!(&sequential, &flatten(&chunked), "threads = {}", threads);
        }
    }

    /// A lazy space agrees with the materialized space through the whole
    /// indexable interface: len, dims, get, and decompose/compose
    /// round-trips.
    #[test]
    fn lazy_space_equals_materialized(group in random_group()) {
        let groups = vec![group];
        let eager = SearchSpace::generate(&groups);
        let lazy = LazySpace::generate_with_block(&groups, 16).expect("lazy build");
        prop_assert_eq!(eager.len(), lazy.len());
        prop_assert_eq!(eager.dims(), lazy.dims());
        for i in 0..eager.len() {
            prop_assert_eq!(eager.get(i), lazy.get(i));
            let coords = lazy.decompose(i);
            prop_assert_eq!(&coords, &eager.decompose(i));
            prop_assert_eq!(lazy.compose(&coords), i);
        }
    }
}

/// Comparison atoms *tighten* the scan window instead of filtering their
/// way through it: with `X > K` the compiled generator must never probe
/// the below-threshold prefix (previously it checked every candidate from
/// the window's start).
#[test]
fn comparison_atoms_tighten_the_scan_window() {
    use atf_core::constraint::predicate;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let probes = Arc::new(AtomicU64::new(0));
    let p = Arc::clone(&probes);
    let group = ParamGroup::new(vec![tp_c(
        "X",
        Range::interval(1, 10_000),
        greater_than(cst(9_900u64))
            & predicate("even", move |v, _| {
                p.fetch_add(1, Ordering::Relaxed);
                v.as_u64().is_some_and(|x| x % 2 == 0)
            }),
    )]);
    let space = GroupSpace::generate(&group);
    assert_eq!(space.len(), 50, "even values in 9901..=10000");
    let probed = probes.load(Ordering::Relaxed);
    assert!(
        probed <= 100,
        "tightened scan probed {probed} candidates (bound admits 100 of 10000)"
    );
}

/// An equality atom collapses the scan window to a single position.
#[test]
fn equality_atoms_collapse_the_scan_window() {
    use atf_core::constraint::predicate;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let probes = Arc::new(AtomicU64::new(0));
    let p = Arc::clone(&probes);
    let group = ParamGroup::new(vec![tp_c(
        "X",
        Range::interval(1, 100_000),
        equal(cst(777u64))
            & predicate("probe", move |v, _| {
                p.fetch_add(1, Ordering::Relaxed);
                v.as_u64().is_some()
            }),
    )]);
    let space = GroupSpace::generate(&group);
    assert_eq!(space.len(), 1);
    assert_eq!(
        probes.load(Ordering::Relaxed),
        1,
        "equality must pinpoint exactly one candidate position"
    );
}

/// A search space too large for `u64`/`u128` counting reports
/// `SpaceError::Overflow` instead of panicking or spinning — and does so
/// fast, via the unconstrained-suffix product shortcut.
#[test]
fn oversized_count_is_a_structured_error() {
    let groups = vec![ParamGroup::new(vec![
        tp("A", Range::interval(1, u64::MAX)),
        tp("B", Range::interval(1, u64::MAX)),
        tp("C", Range::interval(1, u64::MAX)),
    ])];
    let started = std::time::Instant::now();
    assert_eq!(SearchSpace::count(&groups), Err(SpaceError::Overflow));
    assert!(
        started.elapsed().as_secs() < 5,
        "overflow must be detected without enumeration"
    );
}

/// A lazy-backed `SearchSpace` can stand in for a materialized one.
#[test]
fn lazy_space_backs_the_search_space_interface() {
    let groups = vec![ParamGroup::new(vec![
        tp_c("WPT", Range::interval(1, 32), divides(cst(32u64))),
        tp_c("LS", Range::interval(1, 32), divides(param("WPT"))),
    ])];
    let eager = SearchSpace::generate(&groups);
    let lazy: SearchSpace = LazySpace::generate(&groups).expect("lazy build").into();
    assert_eq!(eager.len(), lazy.len());
    for i in 0..eager.len() {
        assert_eq!(eager.get(i), lazy.get(i));
    }
}

/// The service's spec-keyed space cache: a second manager lifetime with
/// the same parameter spec must hit the entry persisted by the first,
/// observable through the session's metrics counters.
#[test]
fn service_space_cache_survives_a_restart() {
    use atf_service::{ManagerConfig, Request, SessionManager};

    let dir = std::env::temp_dir().join(format!("atf-it-spacecache-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = ManagerConfig {
        space_cache: Some(dir.clone()),
        ..ManagerConfig::default()
    };

    let open = || {
        let mut req = Request::new("open");
        req.kernel = Some("restart-cache".into());
        req.parameters = Some(vec![ParameterSpec {
            name: "X".into(),
            interval: Some(IntervalSpec {
                begin: 1,
                end: 24,
                step: 1,
            }),
            set: None,
            constraint: Some("divides(24)".into()),
        }]);
        req.search = Some(SearchSpec {
            technique: "exhaustive".into(),
            seed: 0,
        });
        req
    };
    let cache_stats = |m: &SessionManager, id: &str| {
        let snap = m
            .handle(&Request::new("stats").with_session(id))
            .stats
            .expect("stats snapshot");
        (snap.space_cache_hits, snap.space_cache_misses)
    };

    // First lifetime: miss, generate, persist.
    let manager = SessionManager::new(config.clone()).unwrap();
    let opened = manager.handle(&open());
    assert!(opened.ok, "{opened:?}");
    let id = opened.session.unwrap();
    assert_eq!(cache_stats(&manager, &id), (0, 1));
    drop(manager);

    // Second lifetime (restart): same spec hits the persisted entry and
    // serves an identical space.
    let manager = SessionManager::new(config).unwrap();
    let reopened = manager.handle(&open());
    assert!(reopened.ok, "{reopened:?}");
    assert_eq!(reopened.space_size, opened.space_size);
    let id = reopened.session.unwrap();
    assert_eq!(cache_stats(&manager, &id), (1, 0));
    std::fs::remove_dir_all(&dir).ok();
}
