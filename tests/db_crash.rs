//! Crash-equivalence for the log-structured tuning database: a simulated
//! kill at every byte boundary of the compaction sequence (tmp write →
//! rename → log truncate) must load back bit-identical to the in-memory
//! database, torn append tails lose at most the final partial record, and
//! legacy whole-file JSON databases load and migrate transparently on
//! their first compaction.

use atf_core::config::Config;
use atf_core::db::{DatabaseLog, TuningDatabase};
use atf_core::value::Value;
use std::path::{Path, PathBuf};

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("atf-dbcrash-{}-{}.json", tag, std::process::id()))
}

fn ckpt_path(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".ckpt");
    PathBuf::from(s)
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".ckpt.tmp");
    PathBuf::from(s)
}

fn cleanup(path: &Path) {
    std::fs::remove_file(path).ok();
    std::fs::remove_file(ckpt_path(path)).ok();
    std::fs::remove_file(tmp_path(path)).ok();
}

fn config(i: u64) -> Config {
    Config::from_pairs([
        ("WG", Value::UInt(i * 2 + 1)),
        ("VEC", Value::Bool(i.is_multiple_of(2))),
        ("MODE", Value::Symbol(format!("m{i}").into())),
    ])
}

/// A database of `n` distinct records with deterministic contents.
fn sample_db(n: u64) -> TuningDatabase {
    let mut db = TuningDatabase::new();
    for i in 0..n {
        db.store(
            &format!("kernel{i}"),
            "devX",
            &format!("w{}", i % 3),
            &config(i),
            100.0 - i as f64,
            i + 1,
            1000,
        );
    }
    db
}

/// Writes a directory state (live log, checkpoint, tmp — `None` = absent)
/// and loads it back.
fn load_state(
    path: &Path,
    log: Option<&[u8]>,
    ckpt: Option<&[u8]>,
    tmp: Option<&[u8]>,
) -> TuningDatabase {
    cleanup(path);
    if let Some(bytes) = log {
        std::fs::write(path, bytes).unwrap();
    }
    if let Some(bytes) = ckpt {
        std::fs::write(ckpt_path(path), bytes).unwrap();
    }
    if let Some(bytes) = tmp {
        std::fs::write(tmp_path(path), bytes).unwrap();
    }
    let (db, _log) = DatabaseLog::open(path).unwrap();
    db
}

/// A kill at every byte boundary of the checkpoint-tmp write — the first
/// phase of a compaction — leaves the previous checkpoint and the full
/// log authoritative: the load is bit-identical to the in-memory db no
/// matter how much of the tmp file made it to disk.
#[test]
fn kill_at_every_byte_of_the_tmp_write_loses_nothing() {
    let path = temp_path("tmp-write");
    let db = sample_db(8);
    // On-disk precondition: an older checkpoint holding half the records,
    // a log holding all of them (superset — the monotone merge makes the
    // overlap idempotent).
    let old_ckpt = sample_db(4).to_ndjson().into_bytes();
    let log = db.to_ndjson().into_bytes();
    let new_ckpt = db.to_ndjson().into_bytes();
    for cut in 0..=new_ckpt.len() {
        let loaded = load_state(&path, Some(&log), Some(&old_ckpt), Some(&new_ckpt[..cut]));
        assert_eq!(
            loaded,
            db,
            "divergence with {cut}/{} tmp bytes on disk",
            new_ckpt.len()
        );
    }
    cleanup(&path);
}

/// A kill between the checkpoint rename and the log truncate leaves the
/// new checkpoint plus the (now redundant) full log: the double replay
/// must merge to the identical database.
#[test]
fn kill_between_rename_and_truncate_merges_idempotently() {
    let path = temp_path("post-rename");
    let db = sample_db(8);
    let log = db.to_ndjson().into_bytes();
    let new_ckpt = db.to_ndjson().into_bytes();
    // Full log + committed checkpoint (rename done, truncate not).
    let loaded = load_state(&path, Some(&log), Some(&new_ckpt), None);
    assert_eq!(loaded, db);
    // And a partially truncated log (kill mid-truncate): any log prefix
    // plus the committed checkpoint still loads the full database.
    for cut in [0, 1, log.len() / 2, log.len() - 1] {
        let loaded = load_state(&path, Some(&log[..cut]), Some(&new_ckpt), None);
        assert_eq!(loaded, db, "divergence with {cut} log bytes left");
    }
    cleanup(&path);
}

/// A torn append tail (kill mid-append, no compaction in flight) loses at
/// most the final partial record; every complete line survives.
#[test]
fn torn_append_tail_loses_at_most_the_last_record() {
    let path = temp_path("torn-tail");
    let db = sample_db(6);
    let log = db.to_ndjson();
    let bytes = log.as_bytes();
    for cut in 0..=bytes.len() {
        let Ok(prefix) = std::str::from_utf8(&bytes[..cut]) else {
            continue; // mid-UTF-8 cuts are covered by the byte loader path
        };
        let mut expected = TuningDatabase::new();
        expected.merge_ndjson(prefix);
        let loaded = load_state(&path, Some(&bytes[..cut]), None, None);
        assert_eq!(
            loaded,
            expected,
            "divergence at {cut}/{} bytes",
            bytes.len()
        );
        // Never more than one record lost relative to the lines fully on
        // disk at the cut.
        let complete_lines = prefix.matches('\n').count();
        assert!(loaded.len() >= complete_lines.min(db.len()));
    }
    cleanup(&path);
}

/// An actual compaction driven through `DatabaseLog` round-trips: after
/// compacting, the live log is empty, the checkpoint is authoritative,
/// and appends keep landing durably.
#[test]
fn real_compaction_is_bit_identical_and_keeps_appending() {
    let path = temp_path("real-compact");
    cleanup(&path);
    let (mut db, mut log) = DatabaseLog::open(&path).unwrap();
    for i in 0..10u64 {
        let kernel = format!("kernel{i}");
        db.store(&kernel, "devX", "w", &config(i), i as f64, 1, 100);
        log.append(&db.record(&kernel, "devX", "w").unwrap())
            .unwrap();
    }
    log.compact(&db).unwrap();
    assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
    let (reloaded, _h) = DatabaseLog::open(&path).unwrap();
    assert_eq!(reloaded, db);

    // Improvements after the compaction append to the fresh log and win
    // over the checkpointed record on load (monotone merge).
    db.store("kernel3", "devX", "w", &config(99), 0.25, 2, 100);
    log.append(&db.record("kernel3", "devX", "w").unwrap())
        .unwrap();
    let (reloaded, _h) = DatabaseLog::open(&path).unwrap();
    assert_eq!(reloaded, db);
    assert_eq!(reloaded.lookup("kernel3", "devX", "w").unwrap().cost, 0.25);
    cleanup(&path);
}

/// Old-format whole-file JSON databases still load — both through
/// `TuningDatabase::load` and `DatabaseLog::open` — and the first
/// compaction migrates them to log + checkpoint without changing a single
/// record.
#[test]
fn legacy_json_loads_and_migrates_on_first_compaction() {
    let path = temp_path("legacy");
    cleanup(&path);
    let legacy = sample_db(7);
    legacy.save(&path).unwrap();

    // Plain load of the legacy format is unchanged behavior.
    assert_eq!(TuningDatabase::load(&path).unwrap(), legacy);

    // The log handle loads it too and flags the pending migration.
    let (db, mut log) = DatabaseLog::open(&path).unwrap();
    assert_eq!(db, legacy);
    assert!(log.should_compact(), "legacy file must request migration");
    log.compact(&db).unwrap();

    // Post-migration: live file is an empty log, checkpoint carries the
    // records, and both readers agree bit-for-bit with the original.
    assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
    assert_eq!(TuningDatabase::load(&path).unwrap(), legacy);
    let (reloaded, _h) = DatabaseLog::open(&path).unwrap();
    assert_eq!(reloaded, legacy);

    // A kill mid-migration (tmp partially written, legacy file intact)
    // still loads the legacy records untouched.
    let legacy_bytes = std::fs::read(&path).ok(); // empty post-migration log
    drop(legacy_bytes);
    cleanup(&path);
    legacy.save(&path).unwrap();
    let ckpt = legacy.to_ndjson().into_bytes();
    for cut in [0, 1, ckpt.len() / 2, ckpt.len() - 1] {
        std::fs::write(tmp_path(&path), &ckpt[..cut]).unwrap();
        assert_eq!(TuningDatabase::load(&path).unwrap(), legacy);
        let (reloaded, _h) = DatabaseLog::open(&path).unwrap();
        assert_eq!(reloaded, legacy, "divergence with {cut} tmp bytes");
    }
    cleanup(&path);
}
