//! Integration tests for the generic process cost function: ATF driving a
//! real external program (a shell script) end-to-end.

#![cfg(unix)]

use atf_core::expr::param;
use atf_core::prelude::*;
use std::io::Write;
use std::path::{Path, PathBuf};

fn write_executable(path: &Path, body: &str) {
    let mut f = std::fs::File::create(path).unwrap();
    writeln!(f, "#!/bin/sh\n{body}").unwrap();
    use std::os::unix::fs::PermissionsExt;
    std::fs::set_permissions(path, std::fs::Permissions::from_mode(0o755)).unwrap();
}

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "atf-int-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn tunes_external_program_via_log_file() {
    let dir = fresh_dir("log");
    let log = dir.join("cost.log");
    let source = dir.join("prog.sh");
    write_executable(
        &source,
        &format!(
            "T=$ATF_TP_THREADS\nD=$((T - 6)); [ $D -lt 0 ] && D=$((-D))\necho $((10 + D)) > {}",
            log.display()
        ),
    );
    let run = dir.join("run.sh");
    write_executable(&run, "sh \"$ATF_SOURCE\"");

    let mut cf = ProcessCostFunction::new(&source, &run).log_file(&log);
    let groups = vec![ParamGroup::new(vec![tp("THREADS", Range::interval(1, 16))])];
    let result = Tuner::new()
        .technique(Exhaustive::new())
        .tune(&groups, &mut cf)
        .unwrap();
    assert_eq!(result.best_config.get_u64("THREADS"), 6);
    assert_eq!(result.best_cost, vec![10.0]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compile_failures_become_penalties_not_crashes() {
    let dir = fresh_dir("cfail");
    let log = dir.join("cost.log");
    let source = dir.join("prog.sh");
    write_executable(
        &source,
        &format!("echo $((100 - ATF_TP_X)) > {}", log.display()),
    );
    // The compile script rejects odd X values.
    let compile = dir.join("compile.sh");
    write_executable(&compile, "[ $((ATF_TP_X % 2)) -eq 0 ] || exit 1");
    let run = dir.join("run.sh");
    write_executable(
        &run,
        &format!(
            "X=$ATF_TP_X\nD=$((X - 8)); [ $D -lt 0 ] && D=$((-D))\necho $D > {}",
            log.display()
        ),
    );
    let mut cf = ProcessCostFunction::new(&source, &run)
        .compile_script(&compile)
        .log_file(&log);
    let groups = vec![ParamGroup::new(vec![tp("X", Range::interval(1, 12))])];
    let result = Tuner::new()
        .technique(Exhaustive::new())
        .tune(&groups, &mut cf)
        .unwrap();
    assert_eq!(result.best_config.get_u64("X"), 8);
    assert_eq!(result.failed_evaluations, 6); // the six odd values
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn multi_objective_log_is_ordered_lexicographically() {
    let dir = fresh_dir("multi");
    let log = dir.join("cost.log");
    let source = dir.join("prog.sh");
    // Runtime is constant; energy decreases with X: the tuner must pick the
    // highest X purely on the secondary objective.
    write_executable(
        &source,
        &format!("echo \"5,$((100 - ATF_TP_X))\" > {}", log.display()),
    );
    let run = dir.join("run.sh");
    write_executable(&run, "sh \"$ATF_SOURCE\"");
    let mut cf = ProcessCostFunction::new(&source, &run).log_file(&log);
    let groups = vec![ParamGroup::new(vec![tp("X", Range::interval(1, 9))])];
    let result = Tuner::new()
        .technique(Exhaustive::new())
        .tune(&groups, &mut cf)
        .unwrap();
    assert_eq!(result.best_config.get_u64("X"), 9);
    assert_eq!(result.best_cost, vec![5.0, 91.0]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wall_clock_mode_without_log_file() {
    let dir = fresh_dir("wall");
    let source = dir.join("prog.sh");
    write_executable(&source, "exit 0");
    let run = dir.join("run.sh");
    write_executable(&run, "sh \"$ATF_SOURCE\"");
    let mut cf = ProcessCostFunction::new(&source, &run);
    let groups = vec![ParamGroup::new(vec![tp("X", Range::interval(1, 3))])];
    let result = Tuner::new()
        .technique(Exhaustive::new())
        .tune(&groups, &mut cf)
        .unwrap();
    assert_eq!(result.evaluations, 3);
    assert!(result.best_cost[0] >= 0.0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn constraint_dependencies_work_with_external_programs() {
    // Interdependent parameters driving an external program: TILE must
    // divide SIZE.
    let dir = fresh_dir("dep");
    let log = dir.join("cost.log");
    let source = dir.join("prog.sh");
    write_executable(
        &source,
        &format!(
            "S=$ATF_TP_SIZE\nT=$ATF_TP_TILE\necho $((S / T)) > {}",
            log.display()
        ),
    );
    let run = dir.join("run.sh");
    write_executable(&run, "sh \"$ATF_SOURCE\"");
    let mut cf = ProcessCostFunction::new(&source, &run).log_file(&log);
    let groups = vec![ParamGroup::new(vec![
        tp("SIZE", Range::set([24u64, 36])),
        tp_c(
            "TILE",
            Range::interval(1, 36),
            atf_core::constraint::divides(param("SIZE")),
        ),
    ])];
    let result = Tuner::new()
        .technique(Exhaustive::new())
        .tune(&groups, &mut cf)
        .unwrap();
    // Minimal S/T → SIZE=24, TILE=24 or SIZE=36, TILE=36 (cost 1 each); the
    // first found in declaration order wins ties.
    assert_eq!(result.best_cost, vec![1.0]);
    let s = result.best_config.get_u64("SIZE");
    let t = result.best_config.get_u64("TILE");
    assert_eq!(s, t);
    assert_eq!(result.failed_evaluations, 0);
    std::fs::remove_dir_all(&dir).ok();
}
