//! Crash-safe campaign orchestration (`atf_core::campaign`): validation
//! must reject malformed campaigns with structured errors before anything
//! runs, scheduling must be deterministic, failure policies must retry /
//! skip dependents / cancel in-flight nodes as declared, the shared budget
//! must never overspend by more than the in-flight window, and killing the
//! campaign at *any* point — any campaign-journal append boundary, or
//! mid-node after any number of evaluations — must resume to a final
//! report bit-identical to an uninterrupted run with zero re-execution of
//! completed nodes.

use atf_core::abort;
use atf_core::campaign::{
    load_campaign_journal, outcome, run_campaign, validate, BudgetSpec, CampaignError,
    CampaignSpec, ConfigValue, NodeContext, NodeError, NodeExecutor, NodeRun, NodeSpec, PolicySpec,
    RunConfig,
};
use atf_core::journal::checkpoint_path;
use atf_core::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "atf-it-campaign-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn node(name: &str, after: &[&str]) -> NodeSpec {
    NodeSpec {
        name: name.into(),
        spec: format!("{name}.json"),
        after: after.iter().map(|s| s.to_string()).collect(),
        on_failure: None,
    }
}

fn policy_node(name: &str, after: &[&str], policy: &str, retries: Option<u32>) -> NodeSpec {
    NodeSpec {
        on_failure: Some(PolicySpec {
            policy: policy.into(),
            retries,
            backoff_ms: Some(0),
        }),
        ..node(name, after)
    }
}

fn spec(campaign: &str, nodes: Vec<NodeSpec>) -> CampaignSpec {
    CampaignSpec {
        campaign: campaign.into(),
        nodes,
        budget: None,
        concurrency: Some(1),
    }
}

fn run_cfg(dir: &Path, resume: bool, kill_after_appends: Option<u64>) -> RunConfig {
    RunConfig {
        journal: Some(dir.join("campaign.journal")),
        resume,
        spec_hash: "test-spec-hash".into(),
        trace: Arc::new(NullSink),
        kill_after_appends,
    }
}

/// Synthetic node executor running *real* journaled tuning sessions: each
/// node exhaustively tunes an 8-point space (cost deterministic per node)
/// with a per-node run journal under the campaign's directory, honoring
/// the context's resume flag and campaign hooks exactly like the CLI's
/// local executor. Instrumented with execution and fresh-evaluation
/// counters, injectable attempt failures, and a mid-node kill hook.
struct TestExecutor {
    dir: PathBuf,
    space_end: u64,
    executions: Mutex<HashMap<String, u32>>,
    fresh_evals: AtomicU64,
    fail_attempts: HashMap<String, u32>,
    kill_in_node: Option<(String, u64)>,
    eval_delay_ms: HashMap<String, u64>,
    wait_for: HashMap<String, Arc<AtomicBool>>,
    signal_on_start: HashMap<String, Arc<AtomicBool>>,
}

impl TestExecutor {
    fn new(dir: &Path) -> Self {
        TestExecutor {
            dir: dir.to_path_buf(),
            space_end: 8,
            executions: Mutex::new(HashMap::new()),
            fresh_evals: AtomicU64::new(0),
            fail_attempts: HashMap::new(),
            kill_in_node: None,
            eval_delay_ms: HashMap::new(),
            wait_for: HashMap::new(),
            signal_on_start: HashMap::new(),
        }
    }

    fn executions_of(&self, node: &str) -> u32 {
        self.executions
            .lock()
            .unwrap()
            .get(node)
            .copied()
            .unwrap_or(0)
    }

    fn fresh_evals(&self) -> u64 {
        self.fresh_evals.load(Ordering::Relaxed)
    }
}

fn sorted_config(config: &Config) -> Vec<ConfigValue> {
    let mut out: Vec<ConfigValue> = config
        .iter()
        .map(|(name, value)| ConfigValue {
            name: name.to_string(),
            value: value.to_string(),
        })
        .collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

impl NodeExecutor for TestExecutor {
    fn execute(&self, node: &NodeSpec, ctx: &NodeContext) -> Result<NodeRun, NodeError> {
        *self
            .executions
            .lock()
            .unwrap()
            .entry(node.name.clone())
            .or_default() += 1;
        if let Some(flag) = self.wait_for.get(&node.name) {
            while !flag.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        if let Some(&k) = self.fail_attempts.get(&node.name) {
            if ctx.attempt <= k {
                return Err(NodeError::Failed(format!(
                    "injected failure (attempt {})",
                    ctx.attempt
                )));
            }
        }

        let journal = self.dir.join(format!("{}.run.journal", node.name));
        if !ctx.resume {
            std::fs::remove_file(&journal).ok();
            std::fs::remove_file(checkpoint_path(&journal)).ok();
        }
        let group = ParamGroup::new(vec![tp("X", Range::interval(1, self.space_end))]);
        let space = SearchSpace::generate(&[group]);
        let base = abort::evaluations(self.space_end);
        let mut session = TuningSession::<f64>::new(space, Box::new(Exhaustive::new()))
            .map_err(|e| NodeError::Failed(e.to_string()))?
            .abort_condition(ctx.hooks.wrap_abort(base));
        if ctx.resume && journal.exists() {
            session
                .resume_from_journal(&journal)
                .map_err(|e| NodeError::Failed(e.to_string()))?;
        } else {
            session = session
                .journal_to(&journal)
                .map_err(|e| NodeError::Failed(e.to_string()))?;
        }

        let kill_at = self
            .kill_in_node
            .as_ref()
            .filter(|(n, _)| *n == node.name)
            .map(|(_, evals)| *evals);
        if kill_at == Some(0) {
            return Err(NodeError::Fatal(
                "injected kill before first evaluation".into(),
            ));
        }
        let salt = node.name.bytes().map(u64::from).sum::<u64>() % 5;
        let mut cf = cost_fn(move |c: &Config| {
            let x = c.get_u64("X");
            ((x * 7 + salt) % 13) as f64
        });
        let delay = self.eval_delay_ms.get(&node.name).copied();
        let mut fresh = 0u64;
        while let Some(config) = session.next_config() {
            if let Some(flag) = self.signal_on_start.get(&node.name) {
                flag.store(true, Ordering::Relaxed);
            }
            if let Some(ms) = delay {
                std::thread::sleep(Duration::from_millis(ms));
            }
            let outcome = cf.evaluate(&config);
            session
                .report(outcome)
                .map_err(|e| NodeError::Failed(e.to_string()))?;
            self.fresh_evals.fetch_add(1, Ordering::Relaxed);
            fresh += 1;
            if kill_at == Some(fresh) {
                return Err(NodeError::Fatal(format!(
                    "injected kill after {fresh} fresh evaluations"
                )));
            }
        }
        match session.finish() {
            Ok(r) => Ok(NodeRun {
                evaluations: r.evaluations,
                best_cost: Some(r.best_cost),
                best_config: sorted_config(&r.best_config),
            }),
            Err(TuningError::NoValidConfiguration { evaluations })
                if ctx.hooks.budget_fired() || ctx.hooks.cancel_fired() =>
            {
                Ok(NodeRun {
                    evaluations,
                    best_cost: None,
                    best_config: Vec::new(),
                })
            }
            Err(e) => Err(NodeError::Failed(e.to_string())),
        }
    }
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

/// `validate` rejects cyclic and malformed campaigns with structured
/// errors naming the offending nodes — and, taking no executor at all,
/// cannot spawn a single evaluation doing so.
#[test]
fn validation_rejects_malformed_campaigns_with_structured_errors() {
    let cyclic = spec("c", vec![node("a", &["b"]), node("b", &["a"])]);
    match validate(&cyclic) {
        Err(CampaignError::Cycle(names)) => {
            assert!(names.contains(&"a".to_string()) && names.contains(&"b".to_string()));
        }
        other => panic!("expected Cycle, got {other:?}"),
    }

    let unknown = spec("c", vec![node("a", &["ghost"])]);
    match validate(&unknown) {
        Err(CampaignError::UnknownDependency { node, dependency }) => {
            assert_eq!(node, "a");
            assert_eq!(dependency, "ghost");
        }
        other => panic!("expected UnknownDependency, got {other:?}"),
    }

    // A self-reference is an unknown dependency, not a 1-cycle surprise.
    let selfref = spec("c", vec![node("a", &["a"])]);
    assert!(matches!(
        validate(&selfref),
        Err(CampaignError::UnknownDependency { .. })
    ));

    let dup = spec("c", vec![node("a", &[]), node("a", &[])]);
    match validate(&dup) {
        Err(CampaignError::DuplicateNode(name)) => assert_eq!(name, "a"),
        other => panic!("expected DuplicateNode, got {other:?}"),
    }

    let bad_policy = spec("c", vec![policy_node("a", &[], "explode", None)]);
    match validate(&bad_policy) {
        Err(CampaignError::Policy { node, message }) => {
            assert_eq!(node, "a");
            assert!(message.contains("explode"));
        }
        other => panic!("expected Policy, got {other:?}"),
    }

    let mut zero_budget = spec("c", vec![node("a", &[])]);
    zero_budget.budget = Some(BudgetSpec {
        evaluations: Some(0),
        wall_clock_secs: None,
    });
    assert!(matches!(
        validate(&zero_budget),
        Err(CampaignError::Spec(_))
    ));

    let mut zero_workers = spec("c", vec![node("a", &[])]);
    zero_workers.concurrency = Some(0);
    assert!(matches!(
        validate(&zero_workers),
        Err(CampaignError::Spec(_))
    ));

    assert!(matches!(
        CampaignSpec::from_json("{ not json"),
        Err(CampaignError::Spec(_))
    ));
    assert!(matches!(
        validate(&spec("c", vec![])),
        Err(CampaignError::Spec(_))
    ));
}

// ---------------------------------------------------------------------------
// Scheduling and policies
// ---------------------------------------------------------------------------

/// A diamond DAG with two concurrent middle nodes completes with every
/// node run exactly once, and two independent invocations produce
/// bit-identical reports.
#[test]
fn a_diamond_campaign_completes_deterministically() {
    let mut diamond = spec(
        "diamond",
        vec![
            node("a", &[]),
            node("b", &["a"]),
            node("c", &["a"]),
            node("d", &["b", "c"]),
        ],
    );
    diamond.concurrency = Some(2);
    let plan = validate(&diamond).unwrap();

    let run = || {
        let dir = fresh_dir("diamond");
        let exec = TestExecutor::new(&dir);
        let report = run_campaign(&plan, &exec, &run_cfg(&dir, false, None)).unwrap();
        for name in ["a", "b", "c", "d"] {
            assert_eq!(
                exec.executions_of(name),
                1,
                "node `{name}` runs exactly once"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
        report
    };
    let first = run();
    let second = run();
    assert_eq!(first.to_json(), second.to_json());
    assert!(first.nodes.iter().all(|n| n.outcome == outcome::COMPLETED));
    assert_eq!(first.total_evaluations, 32);
    assert!(!first.budget_exhausted);
    // Best cost/config survive into the report for every completed node.
    assert!(first.nodes.iter().all(|n| n.best_cost.is_some()));
    assert!(first.nodes.iter().all(|n| n.best_config.len() == 1));
}

/// A failing node under `continue` skips its dependents transitively,
/// each with a reason naming the dependency that sank it — and the
/// skipped nodes are never executed.
#[test]
fn failed_dependencies_skip_dependents_transitively() {
    let chain = spec(
        "skip",
        vec![
            policy_node("a", &[], "continue", None),
            node("b", &["a"]),
            node("c", &["b"]),
            node("d", &[]),
        ],
    );
    let plan = validate(&chain).unwrap();
    let dir = fresh_dir("skip");
    let mut exec = TestExecutor::new(&dir);
    exec.fail_attempts.insert("a".into(), u32::MAX);
    let report = run_campaign(&plan, &exec, &run_cfg(&dir, false, None)).unwrap();

    assert_eq!(report.nodes[0].outcome, outcome::FAILED);
    assert_eq!(report.nodes[0].attempts, 1);
    assert_eq!(report.nodes[1].outcome, outcome::SKIPPED);
    assert_eq!(
        report.nodes[1].reason.as_deref(),
        Some("dependency `a` failed")
    );
    assert_eq!(report.nodes[2].outcome, outcome::SKIPPED);
    assert_eq!(
        report.nodes[2].reason.as_deref(),
        Some("dependency `b` skipped")
    );
    assert_eq!(report.nodes[3].outcome, outcome::COMPLETED);
    assert_eq!(exec.executions_of("b"), 0);
    assert_eq!(exec.executions_of("c"), 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// `retry` re-runs a flaky node (recording the attempts consumed) and,
/// once retries are exhausted, records the failure and continues.
#[test]
fn retry_policy_reruns_flaky_nodes_and_records_attempts() {
    let flaky = spec(
        "retry",
        vec![
            policy_node("heals", &[], "retry", Some(3)),
            policy_node("hopeless", &[], "retry", Some(1)),
        ],
    );
    let plan = validate(&flaky).unwrap();
    let dir = fresh_dir("retry");
    let mut exec = TestExecutor::new(&dir);
    exec.fail_attempts.insert("heals".into(), 2);
    exec.fail_attempts.insert("hopeless".into(), u32::MAX);
    let report = run_campaign(&plan, &exec, &run_cfg(&dir, false, None)).unwrap();

    assert_eq!(report.nodes[0].outcome, outcome::COMPLETED);
    assert_eq!(report.nodes[0].attempts, 3);
    assert_eq!(exec.executions_of("heals"), 3);
    assert_eq!(report.nodes[1].outcome, outcome::FAILED);
    assert_eq!(report.nodes[1].attempts, 2, "1 try + 1 retry");
    assert!(report.nodes[1]
        .reason
        .as_deref()
        .is_some_and(|r| r.contains("injected failure")));
    std::fs::remove_dir_all(&dir).ok();
}

/// An `abort` failure cancels an in-flight node at its next handout: the
/// cancelled node lands as `skipped` with the aborting node named in its
/// reason, partway through its space.
#[test]
fn abort_policy_cancels_inflight_nodes_at_the_next_handout() {
    let started = Arc::new(AtomicBool::new(false));
    let mut racing = spec("abort", vec![node("slow", &[]), node("boom", &[])]);
    racing.concurrency = Some(2);
    let plan = validate(&racing).unwrap();
    let dir = fresh_dir("abort");
    let mut exec = TestExecutor::new(&dir);
    exec.space_end = 50;
    exec.eval_delay_ms.insert("slow".into(), 2);
    exec.signal_on_start
        .insert("slow".into(), Arc::clone(&started));
    exec.wait_for.insert("boom".into(), started);
    exec.fail_attempts.insert("boom".into(), u32::MAX);
    let report = run_campaign(&plan, &exec, &run_cfg(&dir, false, None)).unwrap();

    let slow = &report.nodes[0];
    assert_eq!(slow.outcome, outcome::SKIPPED);
    assert_eq!(slow.reason.as_deref(), Some("campaign aborted by `boom`"));
    assert!(
        slow.evaluations > 0 && slow.evaluations < 50,
        "cancel must cut the run mid-space, got {} evaluations",
        slow.evaluations
    );
    assert_eq!(report.nodes[1].outcome, outcome::FAILED);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Budget
// ---------------------------------------------------------------------------

fn budget_spec() -> CampaignSpec {
    let mut s = spec(
        "budget",
        vec![node("a", &[]), node("b", &[]), node("c", &[])],
    );
    s.budget = Some(BudgetSpec {
        evaluations: Some(10),
        wall_clock_secs: None,
    });
    s
}

/// A serial campaign with evaluation budget B admits exactly B handouts:
/// the node caught mid-run is cut and recorded `budget_exhausted` (not an
/// error), nodes behind it are denied without running, and the overall
/// report carries the exhaustion flag.
#[test]
fn budget_is_enforced_at_handout_granularity() {
    let plan = validate(&budget_spec()).unwrap();
    let dir = fresh_dir("budget");
    let exec = TestExecutor::new(&dir);
    let report = run_campaign(&plan, &exec, &run_cfg(&dir, false, None)).unwrap();

    assert_eq!(report.nodes[0].outcome, outcome::COMPLETED);
    assert_eq!(report.nodes[0].evaluations, 8);
    assert_eq!(report.nodes[1].outcome, outcome::BUDGET_EXHAUSTED);
    assert_eq!(report.nodes[1].evaluations, 2);
    assert_eq!(
        report.nodes[1].reason.as_deref(),
        Some("campaign budget exhausted")
    );
    assert_eq!(report.nodes[2].outcome, outcome::BUDGET_EXHAUSTED);
    assert_eq!(report.nodes[2].evaluations, 0);
    assert_eq!(report.nodes[2].attempts, 0);
    assert_eq!(
        report.nodes[2].reason.as_deref(),
        Some("campaign budget exhausted before start")
    );
    assert_eq!(report.total_evaluations, 10);
    assert!(report.budget_exhausted);
    assert_eq!(exec.fresh_evals(), 10, "a serial campaign admits exactly B");
    std::fs::remove_dir_all(&dir).ok();
}

/// With C nodes in flight (window W = 1 each), total spend never exceeds
/// B + C·W, and every node terminal-izes as completed or budget_exhausted.
#[test]
fn concurrent_budget_overspend_is_bounded_by_the_inflight_window() {
    let mut wide = spec(
        "budget-wide",
        vec![
            node("n1", &[]),
            node("n2", &[]),
            node("n3", &[]),
            node("n4", &[]),
        ],
    );
    wide.concurrency = Some(4);
    wide.budget = Some(BudgetSpec {
        evaluations: Some(10),
        wall_clock_secs: None,
    });
    let plan = validate(&wide).unwrap();
    let dir = fresh_dir("budget-wide");
    let exec = TestExecutor::new(&dir);
    let report = run_campaign(&plan, &exec, &run_cfg(&dir, false, None)).unwrap();

    assert!(
        exec.fresh_evals() <= 10 + 4,
        "spent {} evaluations against a budget of 10 with 4 single-slot nodes in flight",
        exec.fresh_evals()
    );
    assert!(report.budget_exhausted);
    assert!(report
        .nodes
        .iter()
        .all(|n| { n.outcome == outcome::COMPLETED || n.outcome == outcome::BUDGET_EXHAUSTED }));
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Kill -9 and resume
// ---------------------------------------------------------------------------

/// The reference campaign for crash testing: a chain with a flaky middle
/// node (fails its first attempt, succeeds on retry) so kills land on
/// every interesting journal event — starts, attempt failures, finishes.
fn chain_spec() -> CampaignSpec {
    spec(
        "chain",
        vec![
            node("a", &[]),
            policy_node("b", &["a"], "retry", Some(2)),
            node("c", &["b"]),
        ],
    )
}

fn chain_executor(dir: &Path) -> TestExecutor {
    let mut exec = TestExecutor::new(dir);
    exec.fail_attempts.insert("b".into(), 1);
    exec
}

/// Uninterrupted reference: report JSON + total fresh evaluations.
fn chain_baseline() -> &'static (String, u64) {
    static BASELINE: OnceLock<(String, u64)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let dir = fresh_dir("chain-baseline");
        let exec = chain_executor(&dir);
        let plan = validate(&chain_spec()).unwrap();
        let report = run_campaign(&plan, &exec, &run_cfg(&dir, false, None)).unwrap();
        let evals = exec.fresh_evals();
        assert_eq!(
            evals, 24,
            "3 nodes × 8 evaluations (the failed attempt measures none)"
        );
        std::fs::remove_dir_all(&dir).ok();
        (report.to_json(), evals)
    })
}

#[derive(Clone, Debug)]
enum Kill {
    /// Die at the n-th campaign-journal append boundary (nothing written).
    Journal(u64),
    /// Die inside node #i after that many fresh evaluations.
    MidNode(usize, u64),
}

fn kill_points() -> impl Strategy<Value = Kill> {
    // selector 3 = journal-append kill; 0..3 = mid-node kill in that node.
    (0usize..=3, 0u64..=8).prop_map(|(selector, evals)| match selector {
        3 => Kill::Journal(evals),
        node => Kill::MidNode(node, evals),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Kill the campaign at a randomized point — any campaign-journal
    /// append boundary, or mid-node after any number of evaluations — then
    /// resume: the final report is bit-identical to the uninterrupted
    /// run's, completed nodes are not re-executed (execution counters stay
    /// zero), and the two runs together measure exactly the baseline's
    /// evaluation count (exactly-once across the crash).
    #[test]
    fn killed_campaigns_resume_bit_identically(kill in kill_points()) {
        let (baseline_json, baseline_evals) = chain_baseline().clone();
        let plan = validate(&chain_spec()).unwrap();
        let dir = fresh_dir("kill");
        let mut exec = chain_executor(&dir);
        let cfg = match &kill {
            Kill::Journal(k) => run_cfg(&dir, false, Some(*k)),
            Kill::MidNode(i, evals) => {
                let name = chain_spec().nodes[*i].name.clone();
                exec.kill_in_node = Some((name, *evals));
                run_cfg(&dir, false, None)
            }
        };
        let first = run_campaign(&plan, &exec, &cfg);
        let first_evals = exec.fresh_evals();

        let report = match first {
            // The kill point lies beyond the campaign's lifetime: the run
            // completed. Resuming the finished journal must be a pure
            // no-op replay.
            Ok(report) => {
                let resume_exec = chain_executor(&dir);
                let resumed =
                    run_campaign(&plan, &resume_exec, &run_cfg(&dir, true, None)).unwrap();
                prop_assert_eq!(&resumed.to_json(), &report.to_json());
                prop_assert_eq!(resume_exec.fresh_evals(), 0);
                report
            }
            Err(CampaignError::Fatal(_)) => {
                let journal = load_campaign_journal(dir.join("campaign.journal")).unwrap();
                let completed: Vec<String> = journal
                    .entries
                    .iter()
                    .filter(|e| {
                        e.event == "finished"
                            && e.outcome.as_deref() == Some(outcome::COMPLETED)
                    })
                    .map(|e| e.node.clone())
                    .collect();
                let resume_exec = chain_executor(&dir);
                let resumed =
                    run_campaign(&plan, &resume_exec, &run_cfg(&dir, true, None)).unwrap();
                for name in &completed {
                    prop_assert_eq!(
                        resume_exec.executions_of(name),
                        0,
                        "completed node `{}` was re-executed after resume",
                        name
                    );
                }
                prop_assert_eq!(
                    first_evals + resume_exec.fresh_evals(),
                    baseline_evals,
                    "evaluations must happen exactly once across the kill"
                );
                resumed
            }
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error: {other}"))),
        };
        prop_assert_eq!(report.to_json(), baseline_json);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A budget-bound campaign killed at *every* journal append boundary
/// resumes bit-identically: restored nodes are pre-charged, the in-flight
/// node recharges itself during replay, and the budget cuts the resumed
/// run at exactly the same evaluation as the uninterrupted one.
#[test]
fn budget_campaigns_resume_with_spend_restored() {
    let plan = validate(&budget_spec()).unwrap();
    let baseline = {
        let dir = fresh_dir("budget-base");
        let exec = TestExecutor::new(&dir);
        let report = run_campaign(&plan, &exec, &run_cfg(&dir, false, None)).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        report.to_json()
    };
    // The uninterrupted run writes 5 entries (started/finished a,
    // started/finished b, finished c); kill at every boundary, plus one
    // past the end (no kill at all).
    for kill in 0..=5u64 {
        let dir = fresh_dir("budget-kill");
        let exec = TestExecutor::new(&dir);
        match run_campaign(&plan, &exec, &run_cfg(&dir, false, Some(kill))) {
            Ok(report) => assert_eq!(report.to_json(), baseline, "kill point {kill}"),
            Err(CampaignError::Fatal(_)) => {
                let resume_exec = TestExecutor::new(&dir);
                let resumed =
                    run_campaign(&plan, &resume_exec, &run_cfg(&dir, true, None)).unwrap();
                assert_eq!(resumed.to_json(), baseline, "kill point {kill}");
            }
            Err(other) => panic!("kill point {kill}: unexpected error {other}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A torn tail on the campaign journal (garbage after the kill point) is
/// truncated on resume, and the resumed report still matches the
/// uninterrupted run.
#[test]
fn a_torn_campaign_journal_tail_resumes_cleanly() {
    let (baseline_json, _) = chain_baseline().clone();
    let plan = validate(&chain_spec()).unwrap();
    let dir = fresh_dir("torn");
    let exec = chain_executor(&dir);
    let err = run_campaign(&plan, &exec, &run_cfg(&dir, false, Some(4))).unwrap_err();
    assert!(matches!(err, CampaignError::Fatal(_)));

    let journal = dir.join("campaign.journal");
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&journal)
        .unwrap();
    f.write_all(b"{\"crc\":\"dead\",\"entry\":{\"torn garbage with no newline")
        .unwrap();
    drop(f);

    let resume_exec = chain_executor(&dir);
    let resumed = run_campaign(&plan, &resume_exec, &run_cfg(&dir, true, None)).unwrap();
    assert_eq!(resumed.to_json(), baseline_json);
    // The garbage was truncated before appending: the journal now loads
    // end to end.
    let reloaded = load_campaign_journal(&journal).unwrap();
    assert_eq!(
        reloaded.intact_len,
        std::fs::metadata(&journal).unwrap().len()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Resuming against a different campaign (edited file → different spec
/// hash) is rejected with a structured mismatch instead of silently
/// diverging.
#[test]
fn resume_rejects_a_different_campaign_spec() {
    let plan = validate(&chain_spec()).unwrap();
    let dir = fresh_dir("mismatch");
    let exec = chain_executor(&dir);
    run_campaign(&plan, &exec, &run_cfg(&dir, false, None)).unwrap();

    let mut cfg = run_cfg(&dir, true, None);
    cfg.spec_hash = "a-different-hash".into();
    let resume_exec = chain_executor(&dir);
    match run_campaign(&plan, &resume_exec, &cfg) {
        Err(CampaignError::SpecMismatch { journal, expected }) => {
            assert!(journal.contains("test-spec-hash"));
            assert!(expected.contains("a-different-hash"));
        }
        other => panic!("expected SpecMismatch, got {other:?}"),
    }
    assert_eq!(
        resume_exec.fresh_evals(),
        0,
        "a rejected resume runs nothing"
    );
    std::fs::remove_dir_all(&dir).ok();
}
